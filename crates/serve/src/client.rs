//! Minimal blocking clients for both wire protocols.
//!
//! [`Client`] speaks the legacy newline-delimited JSON protocol;
//! [`BinClient`] speaks the length-prefixed binary protocol
//! ([`crate::protocol::wire`]) and supports pipelining — many requests
//! in flight on one connection, answers matched by request id. Both are
//! used by the probe mode of the `gdcm-serve` binary, the CI smoke
//! jobs, and the `bench_serve` load generator; library users get typed
//! request/response calls without hand-rolling framing.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use crate::protocol::wire;
use crate::protocol::{Request, Response, ResponseEnvelope};
use crate::ServeError;

/// A connected protocol client. One request/response in flight at a
/// time, in order — exactly the server's per-connection contract.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a serving endpoint.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        // One small JSON line per direction per request: Nagle's
        // algorithm would add a delayed-ACK round trip to every call.
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Connects, retrying until `timeout` elapses — for scripted
    /// clients racing a server that is still binding its listener.
    ///
    /// # Errors
    ///
    /// Returns the last connection error once the deadline passes.
    pub fn connect_with_retry(
        addr: impl ToSocketAddrs + Copy,
        timeout: Duration,
    ) -> std::io::Result<Self> {
        let deadline = Instant::now() + timeout;
        loop {
            match Self::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }

    /// Sends one request and reads its response.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, unparsable responses, or a server that
    /// closed the connection without answering.
    pub fn request(&mut self, request: &Request) -> Result<Response, ServeError> {
        let json = serde_json::to_string(request).map_err(|e| ServeError::Json(e.to_string()))?;
        self.writer.write_all(json.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut line = String::new();
        let read = self.reader.read_line(&mut line)?;
        if read == 0 {
            return Err(ServeError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before answering",
            )));
        }
        serde_json::from_str(&line).map_err(|e| ServeError::Json(e.to_string()))
    }

    /// Sends one request wrapped in a trace envelope and reads its
    /// enveloped response, returning `(echoed_trace_id, response)`.
    /// The server echoes the id bit-stably on success and error
    /// responses alike; a legacy server answering bare yields
    /// `(None, response)`.
    ///
    /// # Errors
    ///
    /// Same contract as [`Client::request`].
    pub fn request_traced(
        &mut self,
        request: &Request,
        trace_id: u64,
    ) -> Result<(Option<u64>, Response), ServeError> {
        let req_json =
            serde_json::to_string(request).map_err(|e| ServeError::Json(e.to_string()))?;
        // Envelope by hand around the serialized request — same bytes
        // as serializing a RequestEnvelope, without cloning `request`.
        let line = format!("{{\"trace_id\":{trace_id},\"req\":{req_json}}}");
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut line = String::new();
        let read = self.reader.read_line(&mut line)?;
        if read == 0 {
            return Err(ServeError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before answering",
            )));
        }
        if let Ok(envelope) = serde_json::from_str::<ResponseEnvelope>(&line) {
            return Ok((envelope.trace_id, envelope.resp));
        }
        serde_json::from_str::<Response>(&line)
            .map(|resp| (None, resp))
            .map_err(|e| ServeError::Json(e.to_string()))
    }
}

/// A connected client for the length-prefixed binary protocol
/// (`binary-v1`). Unlike [`Client`], requests may be *pipelined*: any
/// number sent before the first response is read, each answer matched
/// to its request by the echoed id. Response values are bit-identical
/// to the sequential path — the server processes one connection's
/// requests in order.
#[derive(Debug)]
pub struct BinClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
    frame: Vec<u8>,
}

impl BinClient {
    /// Connects and sends the binary preamble. Request ids start at 1
    /// and increment per request; [`BinClient::send`] returns each one.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        // Sized so a half-window pipeline refill of multi-kilobyte
        // request frames coalesces into one write syscall.
        let mut writer = BufWriter::with_capacity(256 * 1024, stream);
        writer.write_all(&wire::preamble())?;
        writer.flush()?;
        Ok(Self {
            reader,
            writer,
            next_id: 1,
            frame: Vec::with_capacity(4096),
        })
    }

    /// Connects, retrying until `timeout` elapses (see
    /// [`Client::connect_with_retry`]).
    ///
    /// # Errors
    ///
    /// Returns the last connection error once the deadline passes.
    pub fn connect_with_retry(
        addr: impl ToSocketAddrs + Copy,
        timeout: Duration,
    ) -> std::io::Result<Self> {
        let deadline = Instant::now() + timeout;
        loop {
            match Self::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }

    /// Frames and buffers one request without flushing, returning its
    /// id — the pipelining primitive. Call [`BinClient::flush`] (or
    /// [`BinClient::recv`], which flushes first) to put it on the wire.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or a request that encodes above the frame
    /// cap.
    pub fn send(&mut self, request: &Request) -> Result<u64, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        self.frame.clear();
        wire::fast::append_request_frame(&mut self.frame, id, request)?;
        self.writer.write_all(&self.frame)?;
        Ok(id)
    }

    /// Flushes all buffered request frames to the socket.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.writer.flush()
    }

    /// Reads the next response frame, returning `(request_id, response)`.
    /// Flushes buffered requests first so a bare `send` + `recv` pair
    /// can never deadlock.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, undecodable frames, or a closed connection.
    pub fn recv(&mut self) -> Result<(u64, Response), ServeError> {
        self.flush()?;
        let mut header = [0u8; wire::FRAME_HEADER_LEN];
        self.reader.read_exact(&mut header)?;
        let header = wire::decode_frame_header(&header)?;
        if header.payload_len > wire::MAX_PAYLOAD {
            return Err(ServeError::Wire(
                wire::WireError::FrameTooLarge {
                    declared: header.payload_len,
                }
                .to_string(),
            ));
        }
        let mut payload = vec![0u8; header.payload_len];
        self.reader.read_exact(&mut payload)?;
        let response = wire::decode_value::<Response>(&payload)?;
        Ok((header.request_id, response))
    }

    /// Sends one request and reads its response — the sequential
    /// convenience over [`BinClient::send`] / [`BinClient::recv`].
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, undecodable frames, or an answer tagged
    /// with a different request id (protocol violation).
    pub fn request(&mut self, request: &Request) -> Result<Response, ServeError> {
        let id = self.send(request)?;
        let (echoed, response) = self.recv()?;
        if echoed != id {
            return Err(ServeError::Wire(format!(
                "response tagged id {echoed}, expected {id}"
            )));
        }
        Ok(response)
    }

    /// Pipelines `requests` with up to `depth` in flight and returns
    /// the responses in request order (matched by id, so a server
    /// answering out of order would still slot correctly).
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, undecodable frames, or an answer tagged
    /// with an id this call never sent.
    pub fn pipeline(
        &mut self,
        requests: &[Request],
        depth: usize,
    ) -> Result<Vec<Response>, ServeError> {
        let depth = depth.max(1);
        let mut pending: HashMap<u64, usize> = HashMap::with_capacity(depth);
        let mut responses: Vec<Option<Response>> = Vec::with_capacity(requests.len());
        responses.resize_with(requests.len(), || None);
        let mut sent = 0usize;
        let mut received = 0usize;
        while received < requests.len() {
            // Refill the window in half-depth batches (rather than one
            // request per response drained) so frames coalesce into few
            // large writes; `recv`'s own flush then finds an empty
            // buffer and costs nothing.
            if sent < requests.len() && pending.len() <= depth / 2 {
                while sent < requests.len() && pending.len() < depth {
                    let id = self.send(&requests[sent])?;
                    pending.insert(id, sent);
                    sent += 1;
                }
                self.flush()?;
            }
            let (id, response) = self.recv()?;
            let slot = pending.remove(&id).ok_or_else(|| {
                ServeError::Wire(format!("response tagged unknown request id {id}"))
            })?;
            responses[slot] = Some(response);
            received += 1;
        }
        // Every slot was filled exactly once by the loop above.
        Ok(responses.into_iter().flatten().collect())
    }
}

/// A connected client for the ops endpoint (`health` / `metrics` /
/// `slowlog` / `quiesce`): one verb line out, one JSON line back.
#[derive(Debug)]
pub struct OpsClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl OpsClient {
    /// Connects to a server's ops listener.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Connects, retrying until `timeout` elapses (see
    /// [`Client::connect_with_retry`]).
    ///
    /// # Errors
    ///
    /// Returns the last connection error once the deadline passes.
    pub fn connect_with_retry(
        addr: impl ToSocketAddrs + Copy,
        timeout: Duration,
    ) -> std::io::Result<Self> {
        let deadline = Instant::now() + timeout;
        loop {
            match Self::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }

    /// Sends one ops verb and returns the raw JSON reply line.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or a closed connection.
    pub fn query(&mut self, verb: &str) -> std::io::Result<String> {
        self.writer.write_all(verb.trim().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut line = String::new();
        let read = self.reader.read_line(&mut line)?;
        if read == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "ops endpoint closed the connection before answering",
            ));
        }
        Ok(line.trim().to_string())
    }
}
