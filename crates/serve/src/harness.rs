//! A socket-free driver for the server's per-connection state machine.
//!
//! The production [`crate::server`] event loop is generic over a
//! byte-stream `Transport` seam; this module substitutes a *scripted*
//! in-memory transport so conformance tooling (`gdcm-wirecheck`) can
//! drive the **identical** connection code — same sniffing, framing,
//! backpressure, and drain logic — through exhaustively enumerated
//! event schedules: bytes arriving in arbitrary chunk splits, partial
//! or stalled writes, mid-frame disconnects.
//!
//! Nothing here is stubbed or simplified: [`ConnHarness::pump`] calls
//! the same `Conn::pump` a live TCP connection runs, against a real
//! [`ServingRepository`], with real shared counters. The only
//! difference is where the bytes come from and go to.

use std::collections::VecDeque;
use std::io::{Error, ErrorKind};
use std::sync::atomic::Ordering;

use crate::server::{Conn, Scratch, ServerShared, Transport};
use crate::serving::ServingRepository;

/// Unprocessed-input cap per connection, re-exported for invariant
/// checks (`Conn` drops the connection above it).
pub const MAX_BUFFERED_INPUT: usize = crate::server::MAX_BUFFERED_INPUT;

/// Pending-output level above which a connection stops consuming new
/// requests, re-exported for invariant checks.
pub const WRITE_HIGH_WATER: usize = crate::server::WRITE_HIGH_WATER;

/// Bytes the sweep reads per `read` call, re-exported so schedule
/// enumerations can reason about read granularity.
pub const READ_CHUNK: usize = crate::server::READ_CHUNK;

/// A scripted byte-stream endpoint with non-blocking socket semantics:
/// queued chunks are handed to the server one `read` at a time,
/// written bytes are captured, and an optional per-call write quota
/// models a peer that drains slowly (or not at all).
#[derive(Debug, Default)]
pub struct ScriptedTransport {
    incoming: VecDeque<Vec<u8>>,
    eof: bool,
    captured: Vec<u8>,
    /// `None` — unlimited; `Some(n)` — at most `n` bytes accepted per
    /// `write` call (`Some(0)` stalls the peer: every write would
    /// block).
    write_quota: Option<usize>,
}

impl ScriptedTransport {
    /// An open transport with nothing queued.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues a chunk the server's next `read` calls will see. Each
    /// queued chunk is delivered by at least one distinct `read`, so a
    /// k-way split of a byte sequence exercises k read boundaries.
    pub fn deliver(&mut self, bytes: &[u8]) {
        if !bytes.is_empty() {
            self.incoming.push_back(bytes.to_vec());
        }
    }

    /// Marks end-of-stream: once the queue drains, reads return EOF
    /// (`Ok(0)`) exactly like a closed socket.
    pub fn close_write(&mut self) {
        self.eof = true;
    }

    /// Sets the per-call write quota (see [`ScriptedTransport`]).
    pub fn set_write_quota(&mut self, quota: Option<usize>) {
        self.write_quota = quota;
    }

    /// Takes everything the server has written so far.
    pub fn take_captured(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.captured)
    }

    /// Bytes written by the server and not yet taken.
    #[must_use]
    pub fn captured_len(&self) -> usize {
        self.captured.len()
    }

    /// Whether undelivered input chunks remain queued.
    #[must_use]
    pub fn has_pending_input(&self) -> bool {
        !self.incoming.is_empty()
    }
}

impl Transport for ScriptedTransport {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self.incoming.pop_front() {
            Some(mut chunk) => {
                let n = chunk.len().min(buf.len());
                buf[..n].copy_from_slice(&chunk[..n]);
                if n < chunk.len() {
                    chunk.drain(..n);
                    self.incoming.push_front(chunk);
                }
                Ok(n)
            }
            None if self.eof => Ok(0),
            None => Err(Error::from(ErrorKind::WouldBlock)),
        }
    }

    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = match self.write_quota {
            Some(0) => return Err(Error::from(ErrorKind::WouldBlock)),
            Some(quota) => quota.min(buf.len()),
            None => buf.len(),
        };
        self.captured.extend_from_slice(&buf[..n]);
        Ok(n)
    }
}

/// One in-memory connection against a live [`ServingRepository`]:
/// scripted input in, captured output out, full state-machine
/// introspection in between.
pub struct ConnHarness<'a> {
    shared: ServerShared<'a>,
    conn: Conn<ScriptedTransport>,
    scratch: Scratch,
}

impl<'a> ConnHarness<'a> {
    /// A fresh connection in the sniffing state.
    #[must_use]
    pub fn new(serving: &'a ServingRepository) -> Self {
        let shared = ServerShared::for_harness(serving);
        let conn = Conn::new(&shared, ScriptedTransport::new());
        Self {
            shared,
            conn,
            scratch: Scratch::new(),
        }
    }

    /// Queues bytes for the server's next reads (one chunk — one read
    /// boundary).
    pub fn deliver(&mut self, bytes: &[u8]) {
        self.conn.transport_mut().deliver(bytes);
    }

    /// Half-closes the client side: the server sees EOF after the
    /// queued chunks drain.
    pub fn eof(&mut self) {
        self.conn.transport_mut().close_write();
    }

    /// Sets the peer's per-call write quota (`Some(0)` = stalled peer).
    pub fn set_write_quota(&mut self, quota: Option<usize>) {
        self.conn.transport_mut().set_write_quota(quota);
    }

    /// One readiness sweep: read, process, flush — the production
    /// `Conn::pump`. Returns whether anything moved.
    pub fn pump(&mut self) -> bool {
        self.conn.pump(&self.shared, &mut self.scratch)
    }

    /// Pumps until a sweep makes no progress or `max_sweeps` is spent.
    /// Returns the number of sweeps that made progress; a return of
    /// `max_sweeps` means the drain budget was exhausted, which the
    /// model check treats as a stuck connection.
    pub fn pump_until_quiet(&mut self, max_sweeps: usize) -> usize {
        let mut spent = 0;
        while spent < max_sweeps {
            if !self.pump() {
                return spent;
            }
            spent += 1;
        }
        spent
    }

    /// Takes everything the server has flushed so far.
    pub fn take_output(&mut self) -> Vec<u8> {
        self.conn.transport_mut().take_captured()
    }

    /// Whether the connection has been reaped (broken framing, EOF
    /// drain complete, or transport failure).
    #[must_use]
    pub fn is_dead(&self) -> bool {
        self.conn.dead
    }

    /// Whether the connection stopped reading and will close once its
    /// output flushes.
    #[must_use]
    pub fn is_closing(&self) -> bool {
        self.conn.closing
    }

    /// Unprocessed input currently buffered (must stay under
    /// [`MAX_BUFFERED_INPUT`]).
    #[must_use]
    pub fn buffered_input(&self) -> usize {
        self.conn.buf.len() - self.conn.consumed
    }

    /// Output enqueued but not yet accepted by the peer.
    #[must_use]
    pub fn pending_output(&self) -> usize {
        self.conn.out.len() - self.conn.written
    }

    /// Whether a `Shutdown` request flipped the server's stop flag.
    #[must_use]
    pub fn shutdown_triggered(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }

    /// Requests answered on this connection (errors included).
    #[must_use]
    pub fn requests(&self) -> u64 {
        self.shared.requests.load(Ordering::SeqCst)
    }

    /// Requests answered with an error response.
    #[must_use]
    pub fn request_errors(&self) -> u64 {
        self.shared.request_errors.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{wire, Request, Response};
    use crate::serving::{ServeConfig, ServingRepository};
    use gdcm_core::{CollaborativeRepository, CostDataset, RepositoryConfig};
    use gdcm_ml::GbdtParams;

    fn tiny_serving() -> ServingRepository {
        let data = CostDataset::tiny(7, 4, 4);
        let repo = CollaborativeRepository::new(
            data.encoder.clone(),
            2,
            RepositoryConfig {
                gbdt: GbdtParams {
                    n_estimators: 4,
                    ..GbdtParams::default()
                },
                min_rows: 1,
            },
        );
        ServingRepository::new(repo, ServeConfig::default())
    }

    fn frame(id: u64, req: &Request) -> Vec<u8> {
        let mut buf = Vec::new();
        wire::append_frame(&mut buf, id, req).expect("frames");
        buf
    }

    #[test]
    fn scripted_ping_answers_in_memory() {
        let serving = tiny_serving();
        let mut h = ConnHarness::new(&serving);
        h.deliver(&wire::preamble());
        h.deliver(&frame(42, &Request::Ping));
        h.pump_until_quiet(16);
        let out = h.take_output();
        let header = wire::decode_frame_header(&out).expect("header");
        assert_eq!(header.request_id, 42);
        let resp: Response =
            wire::decode_value(&out[wire::FRAME_HEADER_LEN..]).expect("payload decodes");
        assert_eq!(resp, Response::Pong);
        assert_eq!(h.requests(), 1);
        assert!(!h.is_dead());
    }

    #[test]
    fn byte_at_a_time_delivery_matches_batch() {
        let serving = tiny_serving();
        let mut whole = ConnHarness::new(&serving);
        let mut split = ConnHarness::new(&serving);
        let mut bytes = wire::preamble().to_vec();
        bytes.extend_from_slice(&frame(7, &Request::Ping));
        whole.deliver(&bytes);
        whole.pump_until_quiet(16);
        for b in &bytes {
            split.deliver(&[*b]);
            split.pump();
        }
        split.pump_until_quiet(16);
        assert_eq!(whole.take_output(), split.take_output());
    }

    #[test]
    fn stalled_peer_blocks_flush_until_quota_returns() {
        let serving = tiny_serving();
        let mut h = ConnHarness::new(&serving);
        h.set_write_quota(Some(0));
        h.deliver(&wire::preamble());
        h.deliver(&frame(1, &Request::Ping));
        h.pump_until_quiet(16);
        assert!(h.pending_output() > 0, "response parked in the out buffer");
        assert_eq!(h.take_output(), Vec::<u8>::new());
        h.set_write_quota(None);
        h.pump_until_quiet(16);
        assert_eq!(h.pending_output(), 0);
        let out = h.take_output();
        assert_eq!(
            wire::decode_frame_header(&out).expect("header").request_id,
            1
        );
    }

    #[test]
    fn eof_mid_frame_closes_without_answering() {
        let serving = tiny_serving();
        let mut h = ConnHarness::new(&serving);
        let framed = frame(9, &Request::Ping);
        h.deliver(&wire::preamble());
        h.deliver(&framed[..framed.len() / 2]);
        h.eof();
        h.pump_until_quiet(16);
        assert!(h.is_dead());
        assert_eq!(h.requests(), 0);
        assert_eq!(h.take_output(), Vec::<u8>::new());
    }
}
