//! # gdcm-serve — cached, persistent serving over the collaborative repository
//!
//! The paper's end state is a *collaborative characterization repository*
//! any device can query for any network's latency — a service, not a
//! batch script. [`gdcm_core::CollaborativeRepository`] is that service's
//! kernel; this crate wraps it in the serving machinery the kernel
//! deliberately does not carry:
//!
//! * [`ServingRepository`] — a thread-safe façade adding a
//!   content-hash-keyed LRU cache for network encodings (the repository
//!   used to re-encode the network on every `predict`), a
//!   `(device, network-hash)` LRU for finished predictions, and a
//!   [`ServingRepository::predict_batch`] path routed through the
//!   `gdcm-par` chunked batch predictor instead of per-row calls.
//!   Cached and batched answers are **bit-identical** to the uncached
//!   single-row path — the caches only skip work, never change it.
//! * [`snapshot`] — versioned serde persistence of the full repository
//!   state (encoder config, devices, training rows, fitted
//!   [`gdcm_ml::GbdtRegressor`]). Loading replays `gdcm-core` ingestion
//!   validation **and** the `gdcm-audit` ensemble + dataset passes, so a
//!   corrupted or poisoned snapshot is rejected before it can serve.
//! * [`server`] — a dual-protocol TCP server (`std::net::TcpListener`,
//!   safe Rust only): a non-blocking event loop sharded by the
//!   `gdcm-par` budget serves the legacy newline-JSON protocol and the
//!   length-prefixed, pipelined binary protocol
//!   ([`protocol::wire`]) on one listener, with per-request latency
//!   histograms, open-connection gauges, and graceful drain-then-exit
//!   shutdown.
//! * [`wal`] + [`refresh`] — streaming ingestion: a checksummed,
//!   fsync-before-ack write-ahead log for mutating requests, replayed
//!   over the latest snapshot on startup, and a background refresh
//!   controller that refits after `GDCM_SERVE_REFRESH_ROWS` new
//!   contributions (warm-starting from the previous model's trees),
//!   gates the result through the audit + flatcheck passes, atomically
//!   swaps it in without blocking readers, and compacts the log into a
//!   fresh snapshot.
//!
//! Environment knobs: `GDCM_SERVE_ENC_CACHE` / `GDCM_SERVE_PRED_CACHE`
//! (cache capacities in entries, 0 disables),
//! `GDCM_SERVE_REFRESH_ROWS` / `GDCM_SERVE_REFRESH_BOOST` (background
//! refresh threshold and warm residual rounds), `GDCM_THREADS` (worker
//! budget, via `gdcm-par`), `GDCM_OBS` (event sinks, via `gdcm-obs`).
//! Unparsable `GDCM_SERVE_*` values fall back to their defaults with a
//! structured `config_warning` event.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![warn(missing_docs)]

pub mod client;
pub mod harness;
pub mod lru;
pub mod ops;
pub mod protocol;
pub mod refresh;
pub mod server;
pub mod serving;
pub mod snapshot;
pub mod wal;

pub use client::{BinClient, Client, OpsClient};
pub use lru::LruCache;
pub use protocol::{Request, RequestEnvelope, Response, ResponseEnvelope};
pub use refresh::{IngestPipeline, RefreshConfig};
pub use server::{serve, serve_with_ingest, serve_with_ops, ServerConfig, ServerSummary};
pub use serving::{network_hash, CacheStats, ServeConfig, ServingRepository};
pub use snapshot::{
    load_repository, save_repository, RepositorySnapshot, SNAPSHOT_FORMAT, SNAPSHOT_VERSION,
};
pub use wal::{replay_record, WalMark, WalRecord, WalRecovery, WriteAheadLog};

use gdcm_core::RepositoryError;
use std::fmt;

/// Errors surfaced by the serving layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// The wrapped repository rejected the operation.
    Repository(RepositoryError),
    /// Filesystem I/O failed.
    Io(std::io::Error),
    /// (De)serialization failed.
    Json(String),
    /// Binary wire (de)serialization or framing failed client-side.
    Wire(String),
    /// The snapshot envelope is not one this build can read.
    BadSnapshot {
        /// What was wrong with the envelope.
        reason: String,
    },
    /// The snapshot deserialized but the `gdcm-audit` passes found
    /// errors in the trained model or its dataset.
    AuditRejected {
        /// Rendered diagnostics, one per finding.
        diagnostics: Vec<String>,
    },
}

impl ServeError {
    /// Stable machine-readable code for this error, as carried by
    /// [`protocol::Response::Error`] on the wire (see
    /// [`protocol::codes`]). Codes never change once shipped; messages
    /// may.
    pub fn code(&self) -> &'static str {
        use crate::protocol::codes;
        match self {
            ServeError::Repository(e) => match e {
                RepositoryError::UnknownDevice(_) => codes::UNKNOWN_DEVICE,
                RepositoryError::AlreadyEnrolled(_) => codes::ALREADY_ENROLLED,
                RepositoryError::SignatureLength { .. } => codes::SIGNATURE_LENGTH,
                RepositoryError::InvalidLatency { .. } => codes::INVALID_LATENCY,
                RepositoryError::NotEnoughData { .. } => codes::NOT_ENOUGH_DATA,
                RepositoryError::NotFitted => codes::NOT_FITTED,
                RepositoryError::CorruptParts { .. } => codes::CORRUPT_PARTS,
                // RepositoryError is non_exhaustive: future variants
                // map to the generic repository code until classified.
                _ => codes::REPOSITORY,
            },
            ServeError::Io(_) => codes::IO,
            ServeError::Json(_) => codes::JSON,
            ServeError::Wire(_) => codes::WIRE,
            ServeError::BadSnapshot { .. } => codes::BAD_SNAPSHOT,
            ServeError::AuditRejected { .. } => codes::AUDIT_REJECTED,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Repository(e) => write!(f, "repository: {e}"),
            ServeError::Io(e) => write!(f, "io: {e}"),
            ServeError::Json(e) => write!(f, "json: {e}"),
            ServeError::Wire(e) => write!(f, "wire: {e}"),
            ServeError::BadSnapshot { reason } => write!(f, "bad snapshot: {reason}"),
            ServeError::AuditRejected { diagnostics } => write!(
                f,
                "snapshot rejected by audit ({} finding(s)): {}",
                diagnostics.len(),
                diagnostics.join("; ")
            ),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<RepositoryError> for ServeError {
    fn from(e: RepositoryError) -> Self {
        ServeError::Repository(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<protocol::wire::WireError> for ServeError {
    fn from(e: protocol::wire::WireError) -> Self {
        ServeError::Wire(e.to_string())
    }
}
