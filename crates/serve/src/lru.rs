//! A minimal O(1) least-recently-used cache.
//!
//! Implemented as a slab-backed doubly-linked recency list plus a
//! `HashMap` from key to slab slot — no unsafe, no external crates, and
//! fully deterministic: the eviction order is a pure function of the
//! call sequence, so cached serving stays reproducible across runs.

use std::collections::HashMap;
use std::hash::Hash;

/// Sentinel slot index meaning "no link".
const NONE: usize = usize::MAX;

#[derive(Debug)]
struct Entry<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A fixed-capacity LRU cache. A capacity of 0 disables the cache
/// entirely (every `get` misses, every `insert` is a no-op), which is
/// how the serving layer implements its "cache off" knobs.
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    map: HashMap<K, usize>,
    slab: Vec<Entry<K, V>>,
    /// Most recently used slot.
    head: usize,
    /// Least recently used slot.
    tail: usize,
}

impl<K: Hash + Eq + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 16)),
            slab: Vec::new(),
            head: NONE,
            tail: NONE,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity (0 = disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Unlinks `slot` from the recency list.
    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.slab[slot].prev, self.slab[slot].next);
        if prev != NONE {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NONE {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    /// Links `slot` at the head (most recently used).
    fn link_front(&mut self, slot: usize) {
        self.slab[slot].prev = NONE;
        self.slab[slot].next = self.head;
        if self.head != NONE {
            self.slab[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NONE {
            self.tail = slot;
        }
    }

    /// Looks up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let slot = *self.map.get(key)?;
        if slot != self.head {
            self.unlink(slot);
            self.link_front(slot);
        }
        Some(&self.slab[slot].value)
    }

    /// Inserts (or replaces) `key`, evicting the least recently used
    /// entry if the cache is full. Returns the evicted `(key, value)`
    /// pair, if any. No-op at capacity 0.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if self.capacity == 0 {
            return None;
        }
        if let Some(&slot) = self.map.get(&key) {
            self.slab[slot].value = value;
            if slot != self.head {
                self.unlink(slot);
                self.link_front(slot);
            }
            return None;
        }
        if self.map.len() >= self.capacity {
            // Full: reuse the least-recent slot in place.
            let victim = self.tail;
            self.unlink(victim);
            let old_key = std::mem::replace(&mut self.slab[victim].key, key.clone());
            let old_value = std::mem::replace(&mut self.slab[victim].value, value);
            self.map.remove(&old_key);
            self.map.insert(key, victim);
            self.link_front(victim);
            return Some((old_key, old_value));
        }
        self.slab.push(Entry {
            key: key.clone(),
            value,
            prev: NONE,
            next: NONE,
        });
        let slot = self.slab.len() - 1;
        self.map.insert(key, slot);
        self.link_front(slot);
        None
    }

    /// Drops every entry (capacity is kept).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.head = NONE;
        self.tail = NONE;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_and_evict_in_lru_order() {
        let mut cache = LruCache::new(2);
        assert!(cache.insert("a", 1).is_none());
        assert!(cache.insert("b", 2).is_none());
        assert_eq!(cache.get(&"a"), Some(&1)); // a is now most recent
        let evicted = cache.insert("c", 3);
        assert_eq!(evicted, Some(("b", 2)));
        assert_eq!(cache.get(&"b"), None);
        assert_eq!(cache.get(&"a"), Some(&1));
        assert_eq!(cache.get(&"c"), Some(&3));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn replacement_updates_value_and_recency() {
        let mut cache = LruCache::new(2);
        cache.insert("a", 1);
        cache.insert("b", 2);
        cache.insert("a", 10);
        assert_eq!(cache.insert("c", 3), Some(("b", 2)));
        assert_eq!(cache.get(&"a"), Some(&10));
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let mut cache = LruCache::new(0);
        assert!(cache.insert("a", 1).is_none());
        assert_eq!(cache.get(&"a"), None);
        assert!(cache.is_empty());
    }

    #[test]
    fn clear_empties_but_keeps_capacity() {
        let mut cache = LruCache::new(3);
        cache.insert(1, "x");
        cache.insert(2, "y");
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.capacity(), 3);
        cache.insert(3, "z");
        assert_eq!(cache.get(&3), Some(&"z"));
    }

    #[test]
    fn long_churn_stays_bounded_and_consistent() {
        let mut cache = LruCache::new(8);
        for i in 0..1000usize {
            cache.insert(i % 13, i);
            assert!(cache.len() <= 8);
            let recent = i % 13;
            assert_eq!(cache.get(&recent), Some(&i));
        }
    }
}
