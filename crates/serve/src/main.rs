//! `gdcm-serve` — build, serve, and probe repository snapshots.
//!
//! ```text
//! gdcm-serve --build-zoo PATH [--devices N] [--seed S] [--random K]
//! gdcm-serve --snapshot PATH --addr HOST:PORT [--workers W] [--ops-addr HOST:PORT]
//!            [--wal PATH]
//! gdcm-serve --probe HOST:PORT --snapshot PATH [--seed S] [--random K]
//!            [--ops HOST:PORT [--ops-out PATH]] [--refresh N]
//! ```
//!
//! * `--build-zoo` trains a collaborative repository on the simulated
//!   zoo-plus-random benchmark suite (deterministic in `--seed`) and
//!   writes a versioned snapshot.
//! * `--snapshot --addr` loads the snapshot **under audit** and serves
//!   it over newline-delimited JSON TCP until a client sends
//!   `Shutdown`. Prints `LISTENING <addr>` once the listener is bound
//!   so scripts can synchronize. With `--ops-addr` a second listener
//!   serves the ops endpoint (`health` / `metrics` / `slowlog` /
//!   `quiesce`) and per-request telemetry records; it prints
//!   `OPS LISTENING <addr>` too. With `--wal` mutating requests are
//!   write-ahead logged (fsync before ack) at the given path; any
//!   records already in the log are replayed over the snapshot before
//!   serving starts (`WAL REPLAY ...` is printed), and — when
//!   `GDCM_SERVE_REFRESH_ROWS` is set — a background refresher refits
//!   after that many new contributions, swaps the audited model in
//!   without blocking readers, and compacts the log back into the
//!   snapshot file.
//! * `--probe` is the scripted client the CI smoke job runs: it loads
//!   the same snapshot locally, queries the server (ping / predict /
//!   batch / cached re-predict / stats), asserts every prediction is
//!   bit-identical to the local uncached path — with every prediction
//!   wrapped in a trace envelope whose u64 id must echo back unchanged
//!   on success *and* error responses — then re-runs the predictions
//!   over the binary wire protocol (sequential and pipelined, asserting
//!   frame-id echo and the same bits) before asking the server to shut
//!   down. With `--ops` it additionally drives the ops endpoint,
//!   asserts the windowed metrics saw its own load, and writes the
//!   `metrics` snapshot to `--ops-out` (default
//!   `target/reports/ops_metrics.json`). With `--refresh N` (requires
//!   `--ops`) it additionally streams `N` contributions at the server
//!   and polls `health` until the model epoch advances and the
//!   write-ahead log compacts to empty — proving a live refresh swapped
//!   a new model in while the connection kept answering. Exits non-zero
//!   on any mismatch.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

use gdcm_core::signature::{MutualInfoSelector, SignatureSelector};
use gdcm_core::{CollaborativeRepository, CostDataset, RepositoryConfig};
use gdcm_gen::{benchmark_suite_with, SearchSpace};
use gdcm_ml::GbdtParams;
use gdcm_serve::protocol::{codes, Request, Response};
use gdcm_serve::{
    load_repository, replay_record, serve, serve_with_ingest, serve_with_ops, BinClient, Client,
    IngestPipeline, OpsClient, RefreshConfig, ServeConfig, ServerConfig, ServingRepository,
    WriteAheadLog,
};

const USAGE: &str = "usage:
  gdcm-serve --build-zoo PATH [--devices N] [--seed S] [--random K]
  gdcm-serve --snapshot PATH --addr HOST:PORT [--workers W] [--ops-addr HOST:PORT]
             [--wal PATH]
  gdcm-serve --probe HOST:PORT --snapshot PATH [--seed S] [--random K]
             [--ops HOST:PORT [--ops-out PATH]] [--refresh N]

  --build-zoo PATH  train on the simulated zoo suite and write a snapshot
  --snapshot PATH   snapshot to serve (audited on load) or to probe against
  --addr HOST:PORT  listen address for serving
  --ops-addr ADDR   also serve the ops endpoint (health/metrics/slowlog/quiesce)
  --wal PATH        write-ahead log mutating requests here (replayed on start;
                    GDCM_SERVE_REFRESH_ROWS enables background refresh)
  --workers W       connection worker threads (default: GDCM_THREADS budget)
  --probe ADDR      act as the scripted smoke client against ADDR
  --ops ADDR        probe the server's ops endpoint at ADDR too
  --ops-out PATH    where the probe writes the metrics snapshot
                    (default target/reports/ops_metrics.json)
  --refresh N       probe only, needs --ops: stream N contributions and wait
                    for a background refresh to swap a new model in
  --devices N       devices to enroll when building (default 16)
  --seed S          dataset seed (default 42); probe must match build
  --random K        random networks beside the zoo (default 8); probe must match build";

struct Args {
    build_zoo: Option<PathBuf>,
    snapshot: Option<PathBuf>,
    addr: Option<String>,
    ops_addr: Option<String>,
    wal: Option<PathBuf>,
    probe: Option<String>,
    ops: Option<String>,
    ops_out: Option<PathBuf>,
    refresh: Option<usize>,
    workers: Option<usize>,
    devices: usize,
    seed: u64,
    random: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        build_zoo: None,
        snapshot: None,
        addr: None,
        ops_addr: None,
        wal: None,
        probe: None,
        ops: None,
        ops_out: None,
        refresh: None,
        workers: None,
        devices: 16,
        seed: 42,
        random: 8,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--build-zoo" => args.build_zoo = Some(PathBuf::from(value("--build-zoo")?)),
            "--snapshot" => args.snapshot = Some(PathBuf::from(value("--snapshot")?)),
            "--addr" => args.addr = Some(value("--addr")?),
            "--ops-addr" => args.ops_addr = Some(value("--ops-addr")?),
            "--wal" => args.wal = Some(PathBuf::from(value("--wal")?)),
            "--probe" => args.probe = Some(value("--probe")?),
            "--ops" => args.ops = Some(value("--ops")?),
            "--ops-out" => args.ops_out = Some(PathBuf::from(value("--ops-out")?)),
            "--refresh" => {
                args.refresh = Some(
                    value("--refresh")?
                        .parse()
                        .map_err(|e| format!("--refresh: {e}"))?,
                );
            }
            "--workers" => {
                args.workers = Some(
                    value("--workers")?
                        .parse()
                        .map_err(|e| format!("--workers: {e}"))?,
                );
            }
            "--devices" => {
                args.devices = value("--devices")?
                    .parse()
                    .map_err(|e| format!("--devices: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--random" => {
                args.random = value("--random")?
                    .parse()
                    .map_err(|e| format!("--random: {e}"))?;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other:?}\n\n{USAGE}")),
        }
    }
    Ok(args)
}

/// Trains a repository on the simulated suite — every enrolled device
/// measures the signature set and contributes a rotating share of the
/// open networks — and returns it fitted.
fn build_repository(seed: u64, random: usize, devices: usize) -> CollaborativeRepository {
    let data = CostDataset::tiny(seed, random, devices.max(4));
    let all: Vec<usize> = (0..data.n_devices()).collect();
    let signature = MutualInfoSelector::default().select(&data.db, &all, 4);
    let mut repo = CollaborativeRepository::new(
        data.encoder.clone(),
        signature.len(),
        RepositoryConfig {
            gbdt: GbdtParams {
                n_estimators: 40,
                ..GbdtParams::default()
            },
            min_rows: 10,
        },
    );
    let open: Vec<usize> = (0..data.n_networks())
        .filter(|n| !signature.contains(n))
        .collect();
    for d in 0..devices.min(data.n_devices()) {
        let lat: Vec<f64> = signature.iter().map(|&n| data.db.latency(d, n)).collect();
        let name = data.devices[d].model.clone();
        repo.onboard_device(name.clone(), &lat)
            .expect("fresh dataset devices have unique names and finite signatures");
        for &n in open.iter().cycle().skip(d % open.len().max(1)).take(12) {
            repo.contribute(&name, &data.suite[n].network, data.db.latency(d, n))
                .expect("device was onboarded above with simulator-finite latencies");
        }
    }
    repo.fit().expect("every device contributed 12 rows");
    repo
}

fn build_mode(args: &Args, out: &Path) -> Result<(), String> {
    let repo = build_repository(args.seed, args.random, args.devices);
    if let Some(parent) = out.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent).map_err(|e| format!("create {parent:?}: {e}"))?;
    }
    gdcm_serve::save_repository(&repo, out).map_err(|e| e.to_string())?;
    println!(
        "wrote snapshot {} ({} devices, {} rows, fitted={})",
        out.display(),
        repo.n_devices(),
        repo.n_rows(),
        repo.is_fitted()
    );
    Ok(())
}

fn serve_mode(args: &Args, snapshot: &Path, addr: &str) -> Result<(), String> {
    // With a WAL, records already on disk (acked by a previous process
    // that never compacted) are replayed over the snapshot before the
    // listener binds — an acknowledged mutation is never lost.
    let (serving, wal) = match &args.wal {
        None => (
            ServingRepository::from_snapshot_path(snapshot).map_err(|e| e.to_string())?,
            None,
        ),
        Some(wal_path) => {
            let mut repo = load_repository(snapshot).map_err(|e| e.to_string())?;
            let (wal, records, recovery) =
                WriteAheadLog::open(wal_path).map_err(|e| e.to_string())?;
            let mut applied = 0usize;
            let mut skipped = 0usize;
            for record in &records {
                match replay_record(&mut repo, record) {
                    true => applied += 1,
                    false => skipped += 1,
                }
            }
            println!(
                "WAL REPLAY {} applied, {skipped} skipped, {} torn byte(s) dropped",
                applied, recovery.truncated_bytes
            );
            (
                ServingRepository::new(repo, ServeConfig::from_env()),
                Some(wal),
            )
        }
    };
    let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
    let local = listener.local_addr().map_err(|e| e.to_string())?;
    println!("LISTENING {local}");
    let ops_listener = match &args.ops_addr {
        Some(ops_addr) => {
            let ops = TcpListener::bind(ops_addr).map_err(|e| format!("bind {ops_addr}: {e}"))?;
            let ops_local = ops.local_addr().map_err(|e| e.to_string())?;
            println!("OPS LISTENING {ops_local}");
            Some(ops)
        }
        None => None,
    };
    let config = ServerConfig {
        workers: args
            .workers
            .unwrap_or_else(|| ServerConfig::default().workers),
    };
    let ingest =
        wal.map(|wal| IngestPipeline::with_wal(&serving, wal, snapshot, RefreshConfig::from_env()));
    let summary = match (&ingest, ops_listener) {
        (Some(pipeline), ops) => serve_with_ingest(listener, ops, &serving, Some(pipeline), config),
        (None, Some(ops)) => serve_with_ops(listener, Some(ops), &serving, config),
        (None, None) => serve(listener, &serving, config),
    }
    .map_err(|e| e.to_string())?;
    println!(
        "served {} request(s) over {} connection(s), {} error(s); shut down cleanly",
        summary.requests, summary.connections, summary.request_errors
    );
    let mut report = gdcm_obs::RunReport::new("gdcm-serve");
    report.set_dim("requests", summary.requests);
    report.set_dim("connections", summary.connections);
    report.set_dim("request_errors", summary.request_errors);
    report.collect();
    let _ = report.finalize_and_write();
    Ok(())
}

fn probe_mode(args: &Args, addr: &str, snapshot: &Path) -> Result<(), String> {
    // The local, audited copy provides the ground truth the server must
    // match bit for bit.
    let local = ServingRepository::from_snapshot_path(snapshot).map_err(|e| e.to_string())?;
    let devices = local.device_names();
    let device = devices.first().ok_or("snapshot has no enrolled devices")?;
    let suite = benchmark_suite_with(args.seed, SearchSpace::tiny(), args.random);
    let probe_nets: Vec<_> = suite.iter().take(6).map(|n| n.network.clone()).collect();

    let mut client = Client::connect_with_retry(addr, Duration::from_secs(30))
        .map_err(|e| format!("connect {addr}: {e}"))?;

    match client.request(&Request::Ping).map_err(|e| e.to_string())? {
        Response::Pong => {}
        other => return Err(format!("ping answered {other:?}")),
    }

    // Single-row predictions: bit-identical to the local uncached path,
    // each wrapped in a trace envelope whose id must echo back exactly.
    // Ids above 2^53 would corrupt in any float-typed decode path, so
    // round-tripping them proves the wire keeps u64 precision.
    for (i, net) in probe_nets.iter().enumerate() {
        let expected = local
            .with_repository(|r| r.predict(device, net))
            .map_err(|e| e.to_string())?;
        let trace_id = (1u64 << 60) | (i as u64 + 1);
        let (echo, resp) = client
            .request_traced(
                &Request::Predict {
                    device: device.clone(),
                    network: net.clone(),
                },
                trace_id,
            )
            .map_err(|e| e.to_string())?;
        if echo != Some(trace_id) {
            return Err(format!("trace id {trace_id} echoed back as {echo:?}"));
        }
        match resp {
            Response::Prediction { latency_ms } if latency_ms.to_bits() == expected.to_bits() => {}
            other => return Err(format!("predict mismatch: {other:?} vs {expected}")),
        }
    }

    // Error responses carry the trace id too, plus a stable error code.
    let (echo, resp) = client
        .request_traced(
            &Request::Predict {
                device: "no-such-device".to_string(),
                network: probe_nets[0].clone(),
            },
            u64::MAX,
        )
        .map_err(|e| e.to_string())?;
    if echo != Some(u64::MAX) {
        return Err(format!("error trace id u64::MAX echoed back as {echo:?}"));
    }
    match resp {
        Response::Error { ref code, .. } if code == codes::UNKNOWN_DEVICE => {}
        other => {
            return Err(format!(
                "unknown-device probe answered {other:?}, wanted code {:?}",
                codes::UNKNOWN_DEVICE
            ))
        }
    }

    let mut ask = |req: &Request| client.request(req).map_err(|e| e.to_string());

    // Batch path: same bits, in order.
    let expected: Vec<f64> = probe_nets
        .iter()
        .map(|n| local.with_repository(|r| r.predict(device, n)))
        .collect::<Result<_, _>>()
        .map_err(|e| e.to_string())?;
    match ask(&Request::PredictBatch {
        device: device.clone(),
        networks: probe_nets.clone(),
    })? {
        Response::Predictions { latency_ms }
            if latency_ms.len() == expected.len()
                && latency_ms
                    .iter()
                    .zip(&expected)
                    .all(|(a, b)| a.to_bits() == b.to_bits()) => {}
        other => return Err(format!("batch mismatch: {other:?} vs {expected:?}")),
    }

    // Cached re-ask: still the same bits.
    match ask(&Request::Predict {
        device: device.clone(),
        network: probe_nets[0].clone(),
    })? {
        Response::Prediction { latency_ms } if latency_ms.to_bits() == expected[0].to_bits() => {}
        other => return Err(format!("cached predict mismatch: {other:?}")),
    }

    match ask(&Request::Stats)? {
        Response::Stats {
            fitted: true,
            devices,
            rows,
            prediction_hits,
            ..
        } => {
            if devices == 0 || rows == 0 {
                return Err(format!(
                    "stats report an empty repository: {devices}/{rows}"
                ));
            }
            if prediction_hits == 0 {
                return Err("cached re-ask did not hit the prediction cache".into());
            }
        }
        other => return Err(format!("stats answered {other:?}")),
    }

    // The binary protocol on the same listener: sequential, pipelined,
    // and error paths must all answer the exact bits of the local path.
    probe_binary(addr, device, &probe_nets, &expected)?;

    // With an ops endpoint to talk to, verify the server's telemetry
    // actually saw the load this probe just generated.
    if let Some(ops_addr) = &args.ops {
        probe_ops(ops_addr, args.ops_out.as_deref())?;
    }

    // Stream contributions past the refresh threshold and wait for the
    // background refresher to swap a new model in and compact the WAL.
    if let Some(n) = args.refresh {
        let ops_addr = args
            .ops
            .as_deref()
            .ok_or("--refresh needs --ops to watch the model epoch")?;
        probe_refresh(&mut client, ops_addr, device, &probe_nets, n)?;
    }

    match client
        .request(&Request::Shutdown)
        .map_err(|e| e.to_string())?
    {
        Response::ShuttingDown => {}
        other => return Err(format!("shutdown answered {other:?}")),
    }
    println!(
        "probe OK: ping, {} traced predictions, traced error echo, batch, cache hit, stats, binary ping/predict/pipeline/error/hardening{}{}, shutdown",
        probe_nets.len(),
        if args.ops.is_some() { ", ops" } else { "" },
        if args.refresh.is_some() {
            ", refresh"
        } else {
            ""
        }
    );
    Ok(())
}

/// Streams `n` contributions at the server, then polls ops `health`
/// until the model epoch advances past its pre-contribution value *and*
/// the write-ahead log drains to empty — i.e. the background refresher
/// fitted, audited, swapped, and compacted — and finally asserts the
/// just-swapped model still answers predictions.
fn probe_refresh(
    client: &mut Client,
    ops_addr: &str,
    device: &str,
    probe_nets: &[gdcm_dnn::Network],
    n: usize,
) -> Result<(), String> {
    let mut ops = OpsClient::connect_with_retry(ops_addr, Duration::from_secs(30))
        .map_err(|e| format!("connect ops {ops_addr}: {e}"))?;
    let health = |ops: &mut OpsClient| -> Result<serde_json::Value, String> {
        let line = ops
            .query("health")
            .map_err(|e| format!("ops health: {e}"))?;
        serde_json::from_str(&line).map_err(|e| format!("ops health reply unparsable: {e}"))
    };
    let before = health(&mut ops)?;
    let epoch0 = json_u64(&before, "epoch")?;

    for i in 0..n {
        let net = &probe_nets[i % probe_nets.len()];
        // Synthetic but valid measurements; the value only needs to be
        // finite and positive for ingestion to accept it.
        let latency_ms = 5.0 + (i as f64) * 0.25;
        match client
            .request(&Request::Contribute {
                device: device.to_string(),
                network: net.clone(),
                latency_ms,
            })
            .map_err(|e| e.to_string())?
        {
            Response::Ok => {}
            other => return Err(format!("contribute {i} answered {other:?}")),
        }
    }

    let deadline = std::time::Instant::now() + Duration::from_secs(120);
    loop {
        let now = health(&mut ops)?;
        let epoch = json_u64(&now, "epoch")?;
        let wal_records = json_u64(&now, "wal_records")?;
        let refreshes = json_u64(&now, "refreshes")?;
        if epoch > epoch0 && wal_records == 0 && refreshes > 0 {
            println!(
                "refresh OK: epoch {epoch0} -> {epoch}, {refreshes} refresh(es), WAL compacted"
            );
            break;
        }
        if std::time::Instant::now() > deadline {
            return Err(format!(
                "refresh did not land in 120s: epoch {epoch0} -> {epoch}, \
                 {wal_records} WAL record(s) pending, {refreshes} refresh(es)"
            ));
        }
        std::thread::sleep(Duration::from_millis(100));
    }

    // The swapped-in model must keep answering on the same connection.
    match client
        .request(&Request::Predict {
            device: device.to_string(),
            network: probe_nets[0].clone(),
        })
        .map_err(|e| e.to_string())?
    {
        Response::Prediction { latency_ms } if latency_ms.is_finite() => Ok(()),
        other => Err(format!("post-refresh predict answered {other:?}")),
    }
}

/// Drives the binary protocol against the same listener: framed ids
/// must echo exactly (including u64 extremes), sequential and pipelined
/// predictions must both match the local path bit for bit, and errors
/// must answer in-band with stable codes.
fn probe_binary(
    addr: &str,
    device: &str,
    probe_nets: &[gdcm_dnn::Network],
    expected: &[f64],
) -> Result<(), String> {
    let mut bin = BinClient::connect_with_retry(addr, Duration::from_secs(30))
        .map_err(|e| format!("binary connect {addr}: {e}"))?;
    match bin.request(&Request::Ping).map_err(|e| e.to_string())? {
        Response::Pong => {}
        other => return Err(format!("binary ping answered {other:?}")),
    }

    // Sequential predictions, checking each frame's id echo by hand.
    for (net, want) in probe_nets.iter().zip(expected) {
        let id = bin
            .send(&Request::Predict {
                device: device.to_string(),
                network: net.clone(),
            })
            .map_err(|e| e.to_string())?;
        let (echoed, resp) = bin.recv().map_err(|e| e.to_string())?;
        if echoed != id {
            return Err(format!("binary response tagged id {echoed}, wanted {id}"));
        }
        match resp {
            Response::Prediction { latency_ms } if latency_ms.to_bits() == want.to_bits() => {}
            other => return Err(format!("binary predict mismatch: {other:?} vs {want}")),
        }
    }

    // The full set pipelined: same bits, matched by id.
    let requests: Vec<Request> = probe_nets
        .iter()
        .map(|net| Request::Predict {
            device: device.to_string(),
            network: net.clone(),
        })
        .collect();
    let responses = bin.pipeline(&requests, 4).map_err(|e| e.to_string())?;
    for (resp, want) in responses.iter().zip(expected) {
        match resp {
            Response::Prediction { latency_ms } if latency_ms.to_bits() == want.to_bits() => {}
            other => {
                return Err(format!(
                    "binary pipelined predict mismatch: {other:?} vs {want}"
                ))
            }
        }
    }

    // Errors stay in-band with stable codes, connection intact.
    match bin
        .request(&Request::Predict {
            device: "no-such-device".to_string(),
            network: probe_nets[0].clone(),
        })
        .map_err(|e| e.to_string())?
    {
        Response::Error { ref code, .. } if code == codes::UNKNOWN_DEVICE => {}
        other => {
            return Err(format!(
                "binary unknown-device probe answered {other:?}, wanted code {:?}",
                codes::UNKNOWN_DEVICE
            ))
        }
    }
    match bin.request(&Request::Ping).map_err(|e| e.to_string())? {
        Response::Pong => {}
        other => return Err(format!("binary post-error ping answered {other:?}")),
    }

    probe_wire_hardening(addr)?;
    Ok(())
}

/// Wire-hardening smoke: a well-formed frame carrying a payload the
/// strict decoder must refuse — `"Ping"` spelled with a non-canonical
/// (zero-padded) varint string length — answers an in-band
/// `parse_error` on the same id, and a follow-up `Ping` still answers
/// `Pong`, proving the connection survives hostile payloads. The
/// exhaustive version of this check is `gdcm-wirecheck`; this is the
/// one-frame smoke the CI probe runs against a real server.
fn probe_wire_hardening(addr: &str) -> Result<(), String> {
    use gdcm_serve::protocol::wire;
    use std::io::{Read, Write};

    let mut stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("hardening connect {addr}: {e}"))?;
    stream.set_nodelay(true).map_err(|e| e.to_string())?;
    stream
        .write_all(&wire::preamble())
        .map_err(|e| e.to_string())?;

    // Tag STR, length 4 encoded as the over-long varint [0x84, 0x00].
    let hostile = [wire::tags::STR, 0x84, 0x00, b'P', b'i', b'n', b'g'];
    let mut burst = Vec::new();
    wire::append_raw_frame(&mut burst, 7, &hostile).map_err(|e| e.to_string())?;
    wire::append_frame(&mut burst, 8, &Request::Ping).map_err(|e| e.to_string())?;
    stream.write_all(&burst).map_err(|e| e.to_string())?;
    stream.flush().map_err(|e| e.to_string())?;

    let mut read_frame = |want_id: u64| -> Result<Response, String> {
        let mut header = [0u8; wire::FRAME_HEADER_LEN];
        stream.read_exact(&mut header).map_err(|e| e.to_string())?;
        let header = wire::decode_frame_header(&header).map_err(|e| format!("{e:?}"))?;
        let mut payload = vec![0u8; header.payload_len];
        stream.read_exact(&mut payload).map_err(|e| e.to_string())?;
        if header.request_id != want_id {
            return Err(format!(
                "hardening frame tagged id {}, wanted {want_id}",
                header.request_id
            ));
        }
        wire::decode_value(&payload).map_err(|e| format!("{e:?}"))
    };

    match read_frame(7)? {
        Response::Error { ref code, .. } if code == codes::PARSE_ERROR => {}
        other => {
            return Err(format!(
                "non-canonical varint payload answered {other:?}, wanted code {:?}",
                codes::PARSE_ERROR
            ))
        }
    }
    match read_frame(8)? {
        Response::Pong => {}
        other => {
            return Err(format!(
                "ping behind the hostile frame answered {other:?} — connection did not survive"
            ))
        }
    }
    Ok(())
}

/// Reads a `u64` out of a parsed ops reply at `path` (dot-separated).
fn json_u64(value: &serde_json::Value, path: &str) -> Result<u64, String> {
    let mut cur = value;
    for key in path.split('.') {
        cur = cur.get(key).ok_or(format!("ops reply missing {path}"))?;
    }
    cur.as_u64().ok_or(format!("ops reply {path} is not a u64"))
}

/// Drives the ops endpoint after the load above: health must be `ok`,
/// the windowed metrics must have seen this probe's requests and cache
/// hits, the slow log must hold traced entries, and `quiesce` must flip
/// health to `draining`. Writes the raw metrics line to `out` for the
/// CI artifact.
fn probe_ops(ops_addr: &str, out: Option<&Path>) -> Result<(), String> {
    let mut ops = OpsClient::connect_with_retry(ops_addr, Duration::from_secs(30))
        .map_err(|e| format!("connect ops {ops_addr}: {e}"))?;
    fn query(ops: &mut OpsClient, verb: &str) -> Result<serde_json::Value, String> {
        let line = ops.query(verb).map_err(|e| format!("ops {verb}: {e}"))?;
        serde_json::from_str(&line).map_err(|e| format!("ops {verb} reply unparsable: {e}"))
    }

    let health = query(&mut ops, "health")?;
    match health.get("status").and_then(|s| s.as_str()) {
        Some("ok") => {}
        other => return Err(format!("ops health status {other:?}, wanted \"ok\"")),
    }
    if health.get("fitted").and_then(|f| f.as_bool()) != Some(true) {
        return Err("ops health reports an unfitted model".into());
    }
    if json_u64(&health, "requests_total")? == 0 {
        return Err("ops health saw zero requests after the probe load".into());
    }

    let metrics_line = ops
        .query("metrics")
        .map_err(|e| format!("ops metrics: {e}"))?;
    let metrics: serde_json::Value = serde_json::from_str(&metrics_line)
        .map_err(|e| format!("ops metrics reply unparsable: {e}"))?;
    let win_requests = json_u64(&metrics, "windowed.requests")?;
    if win_requests == 0 {
        return Err("windowed metrics saw zero requests inside the window".into());
    }
    if json_u64(&metrics, "windowed.latency.count")? == 0 {
        return Err("windowed latency histogram is empty after the probe load".into());
    }
    if json_u64(&metrics, "windowed.prediction_cache.hits")? == 0 {
        return Err("windowed metrics saw no prediction-cache hits".into());
    }
    for path in [
        "windowed.qps",
        "windowed.latency.p50_ms",
        "windowed.latency.p99_ms",
    ] {
        let mut cur = &metrics;
        for key in path.split('.') {
            cur = cur.get(key).ok_or(format!("ops metrics missing {path}"))?;
        }
        let v = cur
            .as_f64()
            .ok_or(format!("ops metrics {path} is not a number"))?;
        if !v.is_finite() || v <= 0.0 {
            return Err(format!("ops metrics {path} = {v}, wanted > 0"));
        }
    }
    if json_u64(&metrics, "cumulative.requests")? == 0 {
        return Err("cumulative metrics saw zero requests".into());
    }
    let out = out.unwrap_or(Path::new("target/reports/ops_metrics.json"));
    if let Some(parent) = out.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent).map_err(|e| format!("create {parent:?}: {e}"))?;
    }
    std::fs::write(out, format!("{metrics_line}\n"))
        .map_err(|e| format!("write {}: {e}", out.display()))?;
    println!(
        "ops metrics: {} windowed request(s) -> {}",
        win_requests,
        out.display()
    );

    let slowlog = query(&mut ops, "slowlog")?;
    let entries = slowlog
        .get("entries")
        .and_then(|e| e.as_array())
        .ok_or("ops slowlog reply missing entries")?;
    let first = entries
        .first()
        .ok_or("ops slowlog is empty after the probe load")?;
    if first
        .get("stages")
        .and_then(|s| s.as_array())
        .map(|s| s.is_empty())
        != Some(false)
    {
        return Err("slowlog entry has no stage breakdown".into());
    }

    let quiesce = query(&mut ops, "quiesce")?;
    if quiesce.get("status").and_then(|s| s.as_str()) != Some("draining") {
        return Err(format!("quiesce answered {quiesce:?}"));
    }
    let health = query(&mut ops, "health")?;
    if health.get("status").and_then(|s| s.as_str()) != Some("draining") {
        return Err("health did not report draining after quiesce".into());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    // Knobs reach the serving layer through ServeConfig::from_env at
    // construction; referencing it here keeps the dependency explicit.
    let _ = ServeConfig::from_env();
    let result = match (&args.build_zoo, &args.probe, &args.snapshot, &args.addr) {
        (Some(out), None, _, _) => build_mode(&args, out),
        (None, Some(addr), Some(snapshot), _) => probe_mode(&args, addr, snapshot),
        (None, None, Some(snapshot), Some(addr)) => serve_mode(&args, snapshot, addr),
        _ => Err(USAGE.to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("gdcm-serve: {msg}");
            ExitCode::FAILURE
        }
    }
}
