//! The operations endpoint: a second newline-JSON listener for humans
//! and harnesses watching a live server.
//!
//! Verbs are bare text lines, answers are one JSON object per line
//! (same `std::net` + safe-Rust discipline as the main server, and the
//! same wake-up-connection shutdown trick):
//!
//! * `health` — [`HealthReply`]: `ok`/`draining`, uptime, repository
//!   shape, lifetime request counters.
//! * `metrics` — [`MetricsReply`]: windowed qps / latency percentiles /
//!   error rate / cache hit ratios over the last `GDCM_OBS_WINDOW`
//!   seconds, plus the cumulative registry view (including per-stage
//!   latency histograms merged from request traces).
//! * `slowlog` — [`SlowlogReply`]: the K worst requests with their
//!   stage breakdowns, worst first.
//! * `quiesce` — flips `health` to `draining` ahead of a shutdown so
//!   load balancers can drain the instance; the serving path itself
//!   keeps answering.
//!
//! Ops traffic is rare and small, so connections are handled inline by
//! the single ops thread — no pool, no backpressure interaction with
//! the serving path.

use serde::Serialize;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;

use crate::server::ServerShared;

/// Reply to the `health` verb.
#[derive(Debug, Clone, Serialize)]
pub struct HealthReply {
    /// `"ok"`, or `"draining"` once `quiesce` has been received.
    pub status: String,
    /// Seconds since the server started.
    pub uptime_s: f64,
    /// Whether a fitted model is serving.
    pub fitted: bool,
    /// Whether the serving model is a compiled (frozen SoA) artifact —
    /// true for every fit this build performs and every snapshot it
    /// accepts, since loading translation-validates the frozen model.
    pub frozen: bool,
    /// Enrolled devices.
    pub devices: usize,
    /// Contributed training rows.
    pub rows: usize,
    /// Requests answered since startup.
    pub requests_total: u64,
    /// Error responses since startup.
    pub errors_total: u64,
    /// Connections accepted since startup.
    pub connections_total: u64,
    /// Event-loop shards sweeping connections.
    pub workers: usize,
    /// Wire protocols the serving listener speaks, by stable name
    /// (`newline-json`, `binary-v1`).
    pub protocols: Vec<String>,
    /// Model epoch currently serving (bumped by every fit, re-enroll,
    /// and background refresh swap).
    pub epoch: u64,
    /// Background refreshes completed (0 without an ingest pipeline).
    pub refreshes: u64,
    /// Contributions accumulated toward the next background refresh.
    pub refresh_pending_rows: u64,
    /// Write-ahead-log records awaiting compaction (0 without a WAL).
    pub wal_records: u64,
}

/// One cache's view over the metrics window.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CacheRates {
    /// Hits in the window.
    pub hits: u64,
    /// Misses in the window.
    pub misses: u64,
    /// `hits / (hits + misses)`, 0 when idle.
    pub hit_ratio: f64,
}

impl CacheRates {
    fn new(hits: u64, misses: u64) -> Self {
        let total = hits + misses;
        Self {
            hits,
            misses,
            hit_ratio: if total == 0 {
                0.0
            } else {
                hits as f64 / total as f64
            },
        }
    }
}

/// Request latency percentiles over the window, in milliseconds.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct LatencyWindow {
    /// Requests measured in the window.
    pub count: u64,
    /// Median (log-bin approximation).
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Exact mean.
    pub mean_ms: f64,
    /// Exact in-window maximum.
    pub max_ms: f64,
}

/// The rolling-window half of a [`MetricsReply`].
#[derive(Debug, Clone, Serialize)]
pub struct WindowedMetrics {
    /// Window length in seconds (`GDCM_OBS_WINDOW`).
    pub window_s: u64,
    /// Requests answered in the window.
    pub requests: u64,
    /// Mean request rate over the window.
    pub qps: f64,
    /// Error responses in the window.
    pub errors: u64,
    /// `errors / requests`, 0 when idle.
    pub error_rate: f64,
    /// Request latency percentiles.
    pub latency: LatencyWindow,
    /// Prediction-cache traffic in the window.
    pub prediction_cache: CacheRates,
    /// Encoding-cache traffic in the window.
    pub encoding_cache: CacheRates,
}

/// The since-startup half of a [`MetricsReply`].
#[derive(Debug, Clone, Serialize)]
pub struct CumulativeMetrics {
    /// Requests answered since startup.
    pub requests: u64,
    /// Error responses since startup.
    pub errors: u64,
    /// Lifetime request latency summary (absent before any request).
    pub latency_ms: Option<gdcm_obs::metrics::HistogramSummary>,
    /// Per-stage latency summaries merged from request traces
    /// (`serve/stage/*`), sorted by name.
    pub stages_us: Vec<gdcm_obs::metrics::HistogramSummary>,
    /// Prediction-cache traffic since startup.
    pub prediction_cache: CacheRates,
    /// Encoding-cache traffic since startup.
    pub encoding_cache: CacheRates,
}

/// Reply to the `metrics` verb.
#[derive(Debug, Clone, Serialize)]
pub struct MetricsReply {
    /// Rolling-window view.
    pub windowed: WindowedMetrics,
    /// Since-startup view.
    pub cumulative: CumulativeMetrics,
}

/// Reply to the `slowlog` verb.
#[derive(Debug, Clone, Serialize)]
pub struct SlowlogReply {
    /// Slow-log capacity (`GDCM_OBS_SLOWLOG`).
    pub capacity: usize,
    /// Worst requests first, each with its stage breakdown.
    pub entries: Vec<gdcm_obs::slowlog::SlowEntry>,
}

#[derive(Debug, Clone, Serialize)]
struct StatusReply {
    status: String,
}

#[derive(Debug, Clone, Serialize)]
struct ErrorReply {
    error: String,
}

/// Accept loop for the ops listener; exits when the main server stops.
pub(crate) fn run_ops(listener: TcpListener, shared: &ServerShared<'_>) {
    for stream in listener.incoming() {
        if shared.ops_stop.load(Ordering::SeqCst) {
            break;
        }
        match stream {
            Ok(stream) => handle_ops_connection(shared, stream),
            Err(e) => gdcm_obs::event(
                "accept_error",
                "serve_ops",
                &[("error", gdcm_obs::FieldValue::Str(e.to_string()))],
            ),
        }
    }
}

/// Serves one ops connection: one verb line in, one JSON line out.
fn handle_ops_connection(shared: &ServerShared<'_>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let reader = match stream.try_clone() {
        Ok(clone) => BufReader::new(clone),
        Err(_) => return,
    };
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => break,
        };
        let verb = line.trim();
        if verb.is_empty() {
            continue;
        }
        let json = match verb.to_ascii_lowercase().as_str() {
            "health" => serde_json::to_string(&health_reply(shared)),
            "metrics" => serde_json::to_string(&metrics_reply(shared)),
            "slowlog" => serde_json::to_string(&SlowlogReply {
                capacity: gdcm_obs::slowlog::global().capacity(),
                entries: gdcm_obs::slowlog::snapshot(),
            }),
            "quiesce" => {
                shared.draining.store(true, Ordering::SeqCst);
                serde_json::to_string(&StatusReply {
                    status: "draining".to_string(),
                })
            }
            other => serde_json::to_string(&ErrorReply {
                error: format!("unknown ops verb: {other}"),
            }),
        };
        let json = match json {
            Ok(json) => json,
            Err(_) => break, // plain data; serialization cannot fail
        };
        if writer
            .write_all(json.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
    }
}

fn health_reply(shared: &ServerShared<'_>) -> HealthReply {
    HealthReply {
        status: if shared.draining.load(Ordering::SeqCst) {
            "draining".to_string()
        } else {
            "ok".to_string()
        },
        uptime_s: shared.started.elapsed().as_secs_f64(),
        fitted: shared.serving.is_fitted(),
        frozen: shared.serving.is_frozen(),
        devices: shared.serving.n_devices(),
        rows: shared.serving.n_rows(),
        requests_total: shared.requests.load(Ordering::SeqCst),
        errors_total: shared.request_errors.load(Ordering::SeqCst),
        connections_total: shared.connections.load(Ordering::SeqCst),
        workers: shared.workers,
        protocols: vec![
            crate::protocol::PROTOCOL_NEWLINE_JSON.to_string(),
            crate::protocol::PROTOCOL_BINARY_V1.to_string(),
        ],
        epoch: shared.serving.model_epoch(),
        refreshes: shared.ingest.map_or(0, |p| p.refreshes()),
        refresh_pending_rows: shared.ingest.map_or(0, |p| p.pending_rows()),
        wal_records: shared.ingest.map_or(0, |p| p.wal_records()),
    }
}

fn metrics_reply(shared: &ServerShared<'_>) -> MetricsReply {
    let now_us = gdcm_obs::timestamp_us();
    let requests = gdcm_obs::windowed_counter("serve/requests").summary_at(now_us);
    let errors = gdcm_obs::windowed_counter("serve/request_errors").summary_at(now_us);
    let latency = gdcm_obs::windowed_histogram("serve/request_us").summary_at(now_us);
    let win_count = |name: &str| gdcm_obs::windowed_counter(name).summary_at(now_us).count;
    let latency = match latency {
        Some(l) => LatencyWindow {
            count: l.count,
            p50_ms: l.p50 / 1e3,
            p95_ms: l.p95 / 1e3,
            p99_ms: l.p99 / 1e3,
            mean_ms: l.mean / 1e3,
            max_ms: l.max / 1e3,
        },
        None => LatencyWindow {
            count: 0,
            p50_ms: 0.0,
            p95_ms: 0.0,
            p99_ms: 0.0,
            mean_ms: 0.0,
            max_ms: 0.0,
        },
    };
    let cache = shared.serving.cache_stats();
    MetricsReply {
        windowed: WindowedMetrics {
            window_s: requests.window_s,
            requests: requests.count,
            qps: requests.per_sec,
            errors: errors.count,
            error_rate: if requests.count == 0 {
                0.0
            } else {
                errors.count as f64 / requests.count as f64
            },
            latency,
            prediction_cache: CacheRates::new(
                win_count("serve/pred_cache_hit"),
                win_count("serve/pred_cache_miss"),
            ),
            encoding_cache: CacheRates::new(
                win_count("serve/enc_cache_hit"),
                win_count("serve/enc_cache_miss"),
            ),
        },
        cumulative: CumulativeMetrics {
            requests: shared.requests.load(Ordering::SeqCst),
            errors: shared.request_errors.load(Ordering::SeqCst),
            latency_ms: gdcm_obs::histogram("serve/request_ms").summary(),
            stages_us: gdcm_obs::metrics::histogram_snapshot()
                .into_iter()
                .filter(|s| s.name.starts_with("serve/stage/"))
                .collect(),
            prediction_cache: CacheRates::new(cache.prediction_hits, cache.prediction_misses),
            encoding_cache: CacheRates::new(cache.encoding_hits, cache.encoding_misses),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_rates_handle_idle_and_busy() {
        let idle = CacheRates::new(0, 0);
        assert_eq!(idle.hit_ratio, 0.0);
        let busy = CacheRates::new(3, 1);
        assert!((busy.hit_ratio - 0.75).abs() < 1e-12);
    }
}
