//! The newline-delimited JSON wire protocol.
//!
//! One request per line, one response per line, in order, over a plain
//! TCP stream. Requests and responses are externally tagged enums —
//! `{"Predict": {"device": "...", "network": {...}}}` — matching the
//! vendored serde derive's enum encoding. Networks travel as their full
//! serialized graph IR, so any client able to emit `gdcm-dnn` JSON can
//! query the repository about *any* network, not just a predefined set.
//!
//! A connection may carry any number of requests; the server answers
//! each before reading the next. `Shutdown` asks the whole server to
//! drain and exit (every worker finishes its current connection first).
//!
//! ## Two encodings, one data model
//!
//! This module defines the *types*; two wire encodings carry them:
//!
//! * **newline-JSON** (`newline-json`) — the original protocol
//!   described above, kept forever for probes, ops tooling, and old
//!   clients. The sections below document it.
//! * **binary v1** (`binary-v1`) — the length-prefixed, pipelined
//!   framing in [`wire`], selected per connection by an 8-byte
//!   preamble the server sniffs on the same listener. Same `Request` /
//!   `Response` enums, same error [`codes`], bit-identical payload
//!   values — only the bytes differ.
//!
//! ## Trace propagation
//!
//! A client may wrap any request in a [`RequestEnvelope`] carrying a
//! u64 `trace_id`; the server echoes the id back bit-stably in a
//! [`ResponseEnvelope`] — on success *and* on error responses, so a
//! pipelining client can always correlate an answer (or a failure) with
//! the request that caused it. Bare requests keep getting bare
//! responses: the envelope is strictly opt-in, and old clients never
//! see it. Error responses additionally carry a stable machine-readable
//! [`codes`] string alongside the human-readable message.

use gdcm_dnn::Network;
use serde::{Deserialize, Serialize};

pub mod wire;

/// Stable name of the legacy newline-JSON encoding, as reported by the
/// ops `health` verb.
pub const PROTOCOL_NEWLINE_JSON: &str = "newline-json";

/// Stable name of the length-prefixed binary encoding (see [`wire`]).
pub const PROTOCOL_BINARY_V1: &str = "binary-v1";

/// A client request, one per line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Liveness check; answered with [`Response::Pong`].
    Ping,
    /// Repository and cache statistics.
    Stats,
    /// Predict one network's latency on an enrolled device.
    Predict {
        /// Enrolled device name.
        device: String,
        /// The network to price.
        network: Network,
    },
    /// Predict many networks on one device in a single batched call.
    PredictBatch {
        /// Enrolled device name.
        device: String,
        /// The networks to price, answered in order.
        networks: Vec<Network>,
    },
    /// Predict for an unenrolled device from raw signature latencies.
    PredictForNewDevice {
        /// Measured signature-set latencies (ms).
        signature_ms: Vec<f64>,
        /// The network to price.
        network: Network,
    },
    /// Enroll a new device.
    OnboardDevice {
        /// Device name (must not be enrolled yet).
        device: String,
        /// Measured signature-set latencies (ms).
        signature_ms: Vec<f64>,
    },
    /// Update an enrolled device's signature (rewrites its rows).
    ReEnroll {
        /// Enrolled device name.
        device: String,
        /// Fresh signature-set latencies (ms).
        signature_ms: Vec<f64>,
    },
    /// Contribute one measured latency.
    Contribute {
        /// Enrolled device name.
        device: String,
        /// The measured network.
        network: Network,
        /// Measured latency (ms); must be finite and positive.
        latency_ms: f64,
    },
    /// Refit the shared model on everything contributed so far.
    Fit,
    /// Drain outstanding work and stop the server.
    Shutdown,
}

/// A server response, one per request line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// A mutation succeeded.
    Ok,
    /// Answer to [`Request::Predict`] / [`Request::PredictForNewDevice`].
    Prediction {
        /// Predicted latency (ms).
        latency_ms: f64,
    },
    /// Answer to [`Request::PredictBatch`], in request order.
    Predictions {
        /// Predicted latencies (ms).
        latency_ms: Vec<f64>,
    },
    /// Answer to [`Request::Stats`].
    Stats {
        /// Enrolled devices.
        devices: usize,
        /// Contributed training rows.
        rows: usize,
        /// Whether a fitted model is serving.
        fitted: bool,
        /// Encoding-cache hits since startup.
        encoding_hits: u64,
        /// Encoding-cache misses since startup.
        encoding_misses: u64,
        /// Prediction-cache hits since startup.
        prediction_hits: u64,
        /// Prediction-cache misses since startup.
        prediction_misses: u64,
        /// Requests handled since startup (this one included).
        requests: u64,
    },
    /// Acknowledgement of [`Request::Shutdown`]; the server drains and
    /// exits after sending this.
    ShuttingDown,
    /// The request failed; the connection stays usable.
    Error {
        /// Stable machine-readable failure code (see [`codes`]).
        code: String,
        /// Human-readable failure description.
        message: String,
    },
}

/// Stable machine-readable error codes carried by [`Response::Error`].
///
/// These strings are part of the wire contract: clients branch on them,
/// so they never change once shipped (messages may).
pub mod codes {
    /// The request line was not parsable as a request.
    pub const PARSE_ERROR: &str = "parse_error";
    /// The named device is not enrolled.
    pub const UNKNOWN_DEVICE: &str = "unknown_device";
    /// The device name is already enrolled.
    pub const ALREADY_ENROLLED: &str = "already_enrolled";
    /// A signature vector had the wrong length.
    pub const SIGNATURE_LENGTH: &str = "signature_length";
    /// A contributed latency was non-finite or non-positive.
    pub const INVALID_LATENCY: &str = "invalid_latency";
    /// Too few training rows to fit.
    pub const NOT_ENOUGH_DATA: &str = "not_enough_data";
    /// Prediction requested before any model was fitted.
    pub const NOT_FITTED: &str = "not_fitted";
    /// Persisted repository parts failed validation.
    pub const CORRUPT_PARTS: &str = "corrupt_parts";
    /// Some other repository-level rejection.
    pub const REPOSITORY: &str = "repository";
    /// Filesystem or socket I/O failed server-side.
    pub const IO: &str = "io";
    /// Server-side (de)serialization failed.
    pub const JSON: &str = "json";
    /// A snapshot envelope was unreadable.
    pub const BAD_SNAPSHOT: &str = "bad_snapshot";
    /// A snapshot was rejected by the audit passes.
    pub const AUDIT_REJECTED: &str = "audit_rejected";
    /// An error variant this build does not classify further.
    pub const INTERNAL: &str = "internal";
    /// A binary frame declared a payload above the protocol cap; the
    /// error is sent before any allocation and the connection closes,
    /// since framing can no longer be trusted.
    pub const FRAME_TOO_LARGE: &str = "frame_too_large";
    /// The binary preamble asked for a protocol version this build
    /// does not speak; answered as a v1-framed error, then close.
    pub const UNSUPPORTED_PROTOCOL: &str = "unsupported_protocol";
    /// Client-side binary wire (de)serialization failed.
    pub const WIRE: &str = "wire_error";

    /// Every stable error code, for exhaustiveness tests and the
    /// wirecheck fuzzer's code-stability invariant. Append-only, like
    /// the constants themselves.
    pub const ALL: [&str; 17] = [
        PARSE_ERROR,
        UNKNOWN_DEVICE,
        ALREADY_ENROLLED,
        SIGNATURE_LENGTH,
        INVALID_LATENCY,
        NOT_ENOUGH_DATA,
        NOT_FITTED,
        CORRUPT_PARTS,
        REPOSITORY,
        IO,
        JSON,
        BAD_SNAPSHOT,
        AUDIT_REJECTED,
        INTERNAL,
        FRAME_TOO_LARGE,
        UNSUPPORTED_PROTOCOL,
        WIRE,
    ];
}

/// A request wrapped with client-side telemetry identity. Opt-in: the
/// server answers enveloped requests with [`ResponseEnvelope`]s and
/// bare requests with bare responses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestEnvelope {
    /// Client-chosen trace id, echoed back bit-stably (u64 integers
    /// survive the JSON layer exactly).
    #[serde(default)]
    pub trace_id: Option<u64>,
    /// The wrapped request.
    pub req: Request,
}

/// A response wrapped with the originating request's trace id.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResponseEnvelope {
    /// The trace id from the request envelope, echoed unchanged.
    #[serde(default)]
    pub trace_id: Option<u64>,
    /// The wrapped response.
    pub resp: Response,
}

/// Best-effort trace-id recovery from a line that failed to parse as a
/// request: derived struct deserialization ignores unknown keys, so any
/// JSON *object* yields its `trace_id` field (if present) even when the
/// wrapped request is invalid — an error response can then still be
/// correlated.
#[derive(Debug, Deserialize)]
pub(crate) struct TraceIdProbe {
    #[serde(default)]
    pub(crate) trace_id: Option<u64>,
}

/// Short stable label for a request, used as the slow-log label and in
/// per-verb metrics.
pub fn request_label(request: &Request) -> &'static str {
    match request {
        Request::Ping => "ping",
        Request::Stats => "stats",
        Request::Predict { .. } => "predict",
        Request::PredictBatch { .. } => "predict_batch",
        Request::PredictForNewDevice { .. } => "predict_new_device",
        Request::OnboardDevice { .. } => "onboard_device",
        Request::ReEnroll { .. } => "re_enroll",
        Request::Contribute { .. } => "contribute",
        Request::Fit => "fit",
        Request::Shutdown => "shutdown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_json() {
        let reqs = vec![
            Request::Ping,
            Request::Stats,
            Request::OnboardDevice {
                device: "pixel".into(),
                signature_ms: vec![1.5, 2.25],
            },
            Request::Fit,
            Request::Shutdown,
        ];
        for req in reqs {
            let json = serde_json::to_string(&req).expect("serializable");
            let back: Request = serde_json::from_str(&json).expect("parseable");
            assert_eq!(req, back, "{json}");
        }
    }

    #[test]
    fn envelopes_round_trip_extreme_trace_ids() {
        // u64 ids must survive JSON bit-stably, including values above
        // 2^53 that would be mangled by an f64 number path.
        for id in [0u64, 1, 1 << 53, u64::MAX - 1, u64::MAX] {
            let env = RequestEnvelope {
                trace_id: Some(id),
                req: Request::Ping,
            };
            let json = serde_json::to_string(&env).expect("serializable");
            let back: RequestEnvelope = serde_json::from_str(&json).expect("parseable");
            assert_eq!(back.trace_id, Some(id), "{json}");
            let resp = ResponseEnvelope {
                trace_id: Some(id),
                resp: Response::Pong,
            };
            let json = serde_json::to_string(&resp).expect("serializable");
            let back: ResponseEnvelope = serde_json::from_str(&json).expect("parseable");
            assert_eq!(back.trace_id, Some(id), "{json}");
        }
    }

    #[test]
    fn trace_id_probe_recovers_ids_from_invalid_requests() {
        let probe: TraceIdProbe =
            serde_json::from_str("{\"trace_id\":7,\"req\":{\"Bogus\":1}}").expect("object parses");
        assert_eq!(probe.trace_id, Some(7));
        let probe: TraceIdProbe = serde_json::from_str("{\"x\":1}").expect("object parses");
        assert_eq!(probe.trace_id, None);
        assert!(serde_json::from_str::<TraceIdProbe>("not json").is_err());
    }

    #[test]
    fn error_responses_carry_stable_codes() {
        let resp = Response::Error {
            code: codes::UNKNOWN_DEVICE.to_string(),
            message: "unknown device: pixel9".to_string(),
        };
        let json = serde_json::to_string(&resp).expect("serializable");
        match serde_json::from_str::<Response>(&json).expect("parseable") {
            Response::Error { code, .. } => assert_eq!(code, codes::UNKNOWN_DEVICE),
            other => panic!("variant changed: {other:?}"),
        }
    }

    #[test]
    fn request_labels_are_stable() {
        assert_eq!(request_label(&Request::Ping), "ping");
        assert_eq!(request_label(&Request::Fit), "fit");
        assert_eq!(
            request_label(&Request::PredictBatch {
                device: "d".into(),
                networks: vec![],
            }),
            "predict_batch"
        );
    }

    #[test]
    fn responses_round_trip_bit_exactly() {
        let resp = Response::Prediction {
            latency_ms: 123.456_789_012_345_67,
        };
        let json = serde_json::to_string(&resp).expect("serializable");
        let back: Response = serde_json::from_str(&json).expect("parseable");
        match (resp, back) {
            (Response::Prediction { latency_ms: a }, Response::Prediction { latency_ms: b }) => {
                assert_eq!(a.to_bits(), b.to_bits())
            }
            other => panic!("variant changed: {other:?}"),
        }
    }
}
