//! The newline-delimited JSON wire protocol.
//!
//! One request per line, one response per line, in order, over a plain
//! TCP stream. Requests and responses are externally tagged enums —
//! `{"Predict": {"device": "...", "network": {...}}}` — matching the
//! vendored serde derive's enum encoding. Networks travel as their full
//! serialized graph IR, so any client able to emit `gdcm-dnn` JSON can
//! query the repository about *any* network, not just a predefined set.
//!
//! A connection may carry any number of requests; the server answers
//! each before reading the next. `Shutdown` asks the whole server to
//! drain and exit (every worker finishes its current connection first).

use gdcm_dnn::Network;
use serde::{Deserialize, Serialize};

/// A client request, one per line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Liveness check; answered with [`Response::Pong`].
    Ping,
    /// Repository and cache statistics.
    Stats,
    /// Predict one network's latency on an enrolled device.
    Predict {
        /// Enrolled device name.
        device: String,
        /// The network to price.
        network: Network,
    },
    /// Predict many networks on one device in a single batched call.
    PredictBatch {
        /// Enrolled device name.
        device: String,
        /// The networks to price, answered in order.
        networks: Vec<Network>,
    },
    /// Predict for an unenrolled device from raw signature latencies.
    PredictForNewDevice {
        /// Measured signature-set latencies (ms).
        signature_ms: Vec<f64>,
        /// The network to price.
        network: Network,
    },
    /// Enroll a new device.
    OnboardDevice {
        /// Device name (must not be enrolled yet).
        device: String,
        /// Measured signature-set latencies (ms).
        signature_ms: Vec<f64>,
    },
    /// Update an enrolled device's signature (rewrites its rows).
    ReEnroll {
        /// Enrolled device name.
        device: String,
        /// Fresh signature-set latencies (ms).
        signature_ms: Vec<f64>,
    },
    /// Contribute one measured latency.
    Contribute {
        /// Enrolled device name.
        device: String,
        /// The measured network.
        network: Network,
        /// Measured latency (ms); must be finite and positive.
        latency_ms: f64,
    },
    /// Refit the shared model on everything contributed so far.
    Fit,
    /// Drain outstanding work and stop the server.
    Shutdown,
}

/// A server response, one per request line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// A mutation succeeded.
    Ok,
    /// Answer to [`Request::Predict`] / [`Request::PredictForNewDevice`].
    Prediction {
        /// Predicted latency (ms).
        latency_ms: f64,
    },
    /// Answer to [`Request::PredictBatch`], in request order.
    Predictions {
        /// Predicted latencies (ms).
        latency_ms: Vec<f64>,
    },
    /// Answer to [`Request::Stats`].
    Stats {
        /// Enrolled devices.
        devices: usize,
        /// Contributed training rows.
        rows: usize,
        /// Whether a fitted model is serving.
        fitted: bool,
        /// Encoding-cache hits since startup.
        encoding_hits: u64,
        /// Encoding-cache misses since startup.
        encoding_misses: u64,
        /// Prediction-cache hits since startup.
        prediction_hits: u64,
        /// Prediction-cache misses since startup.
        prediction_misses: u64,
        /// Requests handled since startup (this one included).
        requests: u64,
    },
    /// Acknowledgement of [`Request::Shutdown`]; the server drains and
    /// exits after sending this.
    ShuttingDown,
    /// The request failed; the connection stays usable.
    Error {
        /// Human-readable failure description.
        message: String,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_json() {
        let reqs = vec![
            Request::Ping,
            Request::Stats,
            Request::OnboardDevice {
                device: "pixel".into(),
                signature_ms: vec![1.5, 2.25],
            },
            Request::Fit,
            Request::Shutdown,
        ];
        for req in reqs {
            let json = serde_json::to_string(&req).expect("serializable");
            let back: Request = serde_json::from_str(&json).expect("parseable");
            assert_eq!(req, back, "{json}");
        }
    }

    #[test]
    fn responses_round_trip_bit_exactly() {
        let resp = Response::Prediction {
            latency_ms: 123.456_789_012_345_67,
        };
        let json = serde_json::to_string(&resp).expect("serializable");
        let back: Response = serde_json::from_str(&json).expect("parseable");
        match (resp, back) {
            (Response::Prediction { latency_ms: a }, Response::Prediction { latency_ms: b }) => {
                assert_eq!(a.to_bits(), b.to_bits())
            }
            other => panic!("variant changed: {other:?}"),
        }
    }
}
