//! The length-prefixed binary wire protocol (`binary-v1`).
//!
//! The newline-JSON protocol pays for itself twice on every request:
//! once in text encode/decode, once in the one-line-in/one-line-out
//! round-trip discipline it imposes on clients. This module defines the
//! compact framing that removes both costs while keeping the *data
//! model* identical — the same externally-tagged [`Request`] /
//! [`Response`] enums, serialized through the same vendored serde,
//! just encoded as a binary content tree instead of JSON text.
//!
//! ## Connection preamble
//!
//! A client opts into the binary protocol by sending 8 bytes
//! immediately after connecting:
//!
//! ```text
//! +------+------+------+------+------+------+---------+---------+
//! | 0x00 | 'G'  | 'D'  | 'C'  | 'M'  | 'W'  | version (u16 LE)  |
//! +------+------+------+------+------+------+---------+---------+
//! ```
//!
//! The leading NUL byte is the protocol discriminator: no JSON request
//! line can begin with `0x00`, so a single listener serves both
//! protocols by sniffing the first byte of each connection. Anything
//! else falls through to the legacy newline-JSON path unchanged.
//!
//! The header layout (magic + `u16` little-endian version, then frames
//! of `u32` length + `u64` id) is **frozen across versions**: a server
//! seeing a newer version than it supports can still answer a correctly
//! framed error (code `unsupported_protocol`) before closing, and old
//! clients keep working forever on the newline-JSON path.
//!
//! ## Frames
//!
//! After the preamble, both directions carry a stream of frames:
//!
//! ```text
//! +---------------------+---------------------+==================+
//! | payload len (u32 LE)| request id (u64 LE) | payload bytes    |
//! +---------------------+---------------------+==================+
//!          4 bytes               8 bytes         `len` bytes
//! ```
//!
//! The request id is chosen by the client and echoed verbatim on the
//! matching response frame — on success *and* on error — which is what
//! makes pipelining safe: a client may keep many requests in flight and
//! match answers by id even if a future server completes them out of
//! order. Ids also feed the server's request-trace plumbing, so a
//! binary client gets trace correlation for free (the JSON protocol
//! needs the opt-in envelope for the same thing).
//!
//! Payload length is capped at [`MAX_PAYLOAD`]; a frame declaring more
//! is rejected with the stable code `frame_too_large` *before any
//! allocation*, and the connection closes because framing can no
//! longer be trusted.
//!
//! ## Payload encoding
//!
//! The payload is a binary encoding of the vendored serde content tree
//! (`serde::__private::Content`) — the single data model every
//! `Serialize`/`Deserialize` impl in this workspace funnels through.
//! One tag byte per node, LEB128 varints for lengths and integers
//! (zigzag for signed), and `f64` as its raw 8 little-endian IEEE-754
//! bytes — which is what makes binary responses *bit-exact* by
//! construction, with no text round-trip to defend:
//!
//! | tag  | node | payload |
//! |------|------|---------|
//! | 0x00 | Null | — |
//! | 0x01 | Bool(false) | — |
//! | 0x02 | Bool(true) | — |
//! | 0x03 | I64 | zigzag LEB128 varint |
//! | 0x04 | U64 | LEB128 varint |
//! | 0x05 | F64 | 8 bytes, IEEE-754 bits LE |
//! | 0x06 | Str | varint byte length + UTF-8 bytes |
//! | 0x07 | Seq | varint element count + elements |
//! | 0x08 | Map | varint entry count + (varint key length + key bytes + value) per entry |
//!
//! Struct fields serialize in declaration order and decoding never
//! reorders them, so encoding is deterministic: equal values produce
//! equal bytes, which the pipelining determinism tests assert
//! end-to-end. The decoder bounds every declared length by the bytes
//! actually remaining, so a hostile length can never drive a large
//! allocation, and nesting depth is capped at [`MAX_DEPTH`].

use serde::__private::{from_content, to_content, Content, ContentError};
use serde::{Deserialize, Serialize};
use std::fmt;

pub mod fast;

/// Protocol discriminator + magic: the first six preamble bytes.
pub const PREAMBLE_MAGIC: [u8; 6] = *b"\0GDCMW";

/// The binary protocol version this build speaks.
pub const WIRE_VERSION: u16 = 1;

/// Total preamble length: magic + `u16` LE version.
pub const PREAMBLE_LEN: usize = 8;

/// Frame header length: `u32` LE payload length + `u64` LE request id.
pub const FRAME_HEADER_LEN: usize = 12;

/// Maximum payload bytes per frame, both directions. Checked against
/// the declared length before any allocation.
pub const MAX_PAYLOAD: usize = 16 * 1024 * 1024;

/// Maximum content-tree nesting depth the decoder accepts.
pub const MAX_DEPTH: usize = 96;

/// The content-tree tag bytes. Public so conformance tooling
/// (`gdcm-wirecheck`) can build adversarial payloads byte-by-byte
/// without duplicating the constants.
pub mod tags {
    /// `Content::Null`.
    pub const NULL: u8 = 0x00;
    /// `Content::Bool(false)`.
    pub const FALSE: u8 = 0x01;
    /// `Content::Bool(true)`.
    pub const TRUE: u8 = 0x02;
    /// `Content::I64` — zigzag LEB128 varint payload.
    pub const I64: u8 = 0x03;
    /// `Content::U64` — LEB128 varint payload.
    pub const U64: u8 = 0x04;
    /// `Content::F64` — 8 raw IEEE-754 bytes, little-endian.
    pub const F64: u8 = 0x05;
    /// `Content::Str` — varint byte length + UTF-8 bytes.
    pub const STR: u8 = 0x06;
    /// `Content::Seq` — varint element count + elements.
    pub const SEQ: u8 = 0x07;
    /// `Content::Map` — varint entry count + (key length + key + value).
    pub const MAP: u8 = 0x08;
}

const TAG_NULL: u8 = tags::NULL;
const TAG_FALSE: u8 = tags::FALSE;
const TAG_TRUE: u8 = tags::TRUE;
const TAG_I64: u8 = tags::I64;
const TAG_U64: u8 = tags::U64;
const TAG_F64: u8 = tags::F64;
const TAG_STR: u8 = tags::STR;
const TAG_SEQ: u8 = tags::SEQ;
const TAG_MAP: u8 = tags::MAP;

/// Binary protocol failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the value did.
    Truncated,
    /// The bytes are not a valid encoding (bad tag, overlong varint,
    /// invalid UTF-8, trailing bytes, excessive depth, ...).
    Malformed(String),
    /// A frame declared a payload longer than [`MAX_PAYLOAD`].
    FrameTooLarge {
        /// The declared payload length.
        declared: usize,
    },
    /// The preamble magic matched but the version is not supported.
    UnsupportedVersion {
        /// The version the peer asked for.
        requested: u16,
    },
    /// The decoded content tree did not match the target type.
    Decode(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated wire value"),
            WireError::Malformed(why) => write!(f, "malformed wire value: {why}"),
            WireError::FrameTooLarge { declared } => write!(
                f,
                "frame payload of {declared} bytes exceeds the {MAX_PAYLOAD}-byte cap"
            ),
            WireError::UnsupportedVersion { requested } => write!(
                f,
                "unsupported binary protocol version {requested} (this build speaks {WIRE_VERSION})"
            ),
            WireError::Decode(why) => write!(f, "wire value decoded but did not match: {why}"),
        }
    }
}

impl std::error::Error for WireError {}

/// The 8-byte preamble a binary client sends on connect.
#[must_use]
pub fn preamble() -> [u8; PREAMBLE_LEN] {
    let mut bytes = [0u8; PREAMBLE_LEN];
    bytes[..6].copy_from_slice(&PREAMBLE_MAGIC);
    bytes[6..].copy_from_slice(&WIRE_VERSION.to_le_bytes());
    bytes
}

/// Validates a preamble and returns the requested version.
///
/// # Errors
///
/// [`WireError::Malformed`] when the magic does not match;
/// [`WireError::UnsupportedVersion`] when the magic matches but the
/// version is not one this build speaks.
pub fn check_preamble(bytes: &[u8]) -> Result<u16, WireError> {
    if bytes.len() < PREAMBLE_LEN {
        return Err(WireError::Truncated);
    }
    if bytes[..6] != PREAMBLE_MAGIC {
        return Err(WireError::Malformed("bad preamble magic".to_string()));
    }
    let requested = u16::from_le_bytes([bytes[6], bytes[7]]);
    if requested != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion { requested });
    }
    Ok(requested)
}

/// A decoded frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Declared payload length in bytes (not yet validated against
    /// [`MAX_PAYLOAD`] — callers check before allocating).
    pub payload_len: usize,
    /// Client-chosen request id, echoed on the response frame.
    pub request_id: u64,
}

/// Decodes a frame header from its first [`FRAME_HEADER_LEN`] bytes.
///
/// # Errors
///
/// [`WireError::Truncated`] when fewer than 12 bytes are available.
pub fn decode_frame_header(bytes: &[u8]) -> Result<FrameHeader, WireError> {
    if bytes.len() < FRAME_HEADER_LEN {
        return Err(WireError::Truncated);
    }
    let payload_len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
    let request_id = u64::from_le_bytes([
        bytes[4], bytes[5], bytes[6], bytes[7], bytes[8], bytes[9], bytes[10], bytes[11],
    ]);
    Ok(FrameHeader {
        payload_len,
        request_id,
    })
}

/// Encodes a value into a fresh payload buffer.
///
/// # Errors
///
/// [`WireError::Decode`] when the value's `Serialize` impl fails
/// (plain data never does).
pub fn encode_value<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, WireError> {
    let mut buf = Vec::new();
    append_value(&mut buf, value)?;
    Ok(buf)
}

/// Encodes a value onto the end of `buf` (which is *not* cleared —
/// callers reuse one buffer across requests).
///
/// # Errors
///
/// Same contract as [`encode_value`].
pub fn append_value<T: Serialize + ?Sized>(buf: &mut Vec<u8>, value: &T) -> Result<(), WireError> {
    let content =
        to_content(value).map_err(|ContentError(why)| WireError::Decode(why.to_string()))?;
    encode_content(buf, &content);
    Ok(())
}

/// Decodes a value from a payload, requiring every byte to be consumed.
///
/// # Errors
///
/// [`WireError::Truncated`] / [`WireError::Malformed`] on bad bytes,
/// [`WireError::Decode`] when the tree is valid but does not match `T`.
pub fn decode_value<'de, T: Deserialize<'de>>(bytes: &[u8]) -> Result<T, WireError> {
    let mut pos = 0usize;
    let content = decode_content(bytes, &mut pos, 0)?;
    if pos != bytes.len() {
        return Err(WireError::Malformed(format!(
            "{} trailing byte(s) after value",
            bytes.len() - pos
        )));
    }
    from_content::<T, ContentError>(content)
        .map_err(|ContentError(why)| WireError::Decode(why.to_string()))
}

/// Appends one complete frame — header plus encoded `value` — to `buf`.
///
/// # Errors
///
/// [`WireError::FrameTooLarge`] when the encoded payload exceeds
/// [`MAX_PAYLOAD`]; otherwise the [`append_value`] contract.
pub fn append_frame<T: Serialize + ?Sized>(
    buf: &mut Vec<u8>,
    request_id: u64,
    value: &T,
) -> Result<(), WireError> {
    let header_at = buf.len();
    buf.extend_from_slice(&[0u8; FRAME_HEADER_LEN]);
    append_value(buf, value)?;
    let payload_len = buf.len() - header_at - FRAME_HEADER_LEN;
    if payload_len > MAX_PAYLOAD {
        buf.truncate(header_at);
        return Err(WireError::FrameTooLarge {
            declared: payload_len,
        });
    }
    // Truncation is guarded by the MAX_PAYLOAD check above.
    #[allow(clippy::cast_possible_truncation)]
    let len32 = payload_len as u32;
    buf[header_at..header_at + 4].copy_from_slice(&len32.to_le_bytes());
    buf[header_at + 4..header_at + FRAME_HEADER_LEN].copy_from_slice(&request_id.to_le_bytes());
    Ok(())
}

/// Appends a pre-encoded payload as one frame. The payload must already
/// respect [`MAX_PAYLOAD`] (checked).
///
/// # Errors
///
/// [`WireError::FrameTooLarge`] when the payload exceeds the cap.
pub fn append_raw_frame(
    buf: &mut Vec<u8>,
    request_id: u64,
    payload: &[u8],
) -> Result<(), WireError> {
    if payload.len() > MAX_PAYLOAD {
        return Err(WireError::FrameTooLarge {
            declared: payload.len(),
        });
    }
    #[allow(clippy::cast_possible_truncation)]
    let len32 = payload.len() as u32;
    buf.extend_from_slice(&len32.to_le_bytes());
    buf.extend_from_slice(&request_id.to_le_bytes());
    buf.extend_from_slice(payload);
    Ok(())
}

fn encode_content(buf: &mut Vec<u8>, content: &Content) {
    match content {
        Content::Null => buf.push(TAG_NULL),
        Content::Bool(false) => buf.push(TAG_FALSE),
        Content::Bool(true) => buf.push(TAG_TRUE),
        Content::I64(v) => {
            buf.push(TAG_I64);
            write_varint(buf, zigzag_encode(*v));
        }
        Content::U64(v) => {
            buf.push(TAG_U64);
            write_varint(buf, *v);
        }
        Content::F64(v) => {
            buf.push(TAG_F64);
            buf.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        Content::Str(s) => {
            buf.push(TAG_STR);
            write_varint(buf, s.len() as u64);
            buf.extend_from_slice(s.as_bytes());
        }
        Content::Seq(items) => {
            buf.push(TAG_SEQ);
            write_varint(buf, items.len() as u64);
            for item in items {
                encode_content(buf, item);
            }
        }
        Content::Map(entries) => {
            buf.push(TAG_MAP);
            write_varint(buf, entries.len() as u64);
            for (key, value) in entries {
                write_varint(buf, key.len() as u64);
                buf.extend_from_slice(key.as_bytes());
                encode_content(buf, value);
            }
        }
    }
}

fn decode_content(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Content, WireError> {
    if depth > MAX_DEPTH {
        return Err(WireError::Malformed(format!(
            "nesting deeper than {MAX_DEPTH}"
        )));
    }
    let tag = *bytes.get(*pos).ok_or(WireError::Truncated)?;
    *pos += 1;
    match tag {
        TAG_NULL => Ok(Content::Null),
        TAG_FALSE => Ok(Content::Bool(false)),
        TAG_TRUE => Ok(Content::Bool(true)),
        TAG_I64 => Ok(Content::I64(zigzag_decode(read_varint(bytes, pos)?))),
        TAG_U64 => Ok(Content::U64(read_varint(bytes, pos)?)),
        TAG_F64 => {
            let raw = bytes
                .get(*pos..*pos + 8)
                .ok_or(WireError::Truncated)?
                .try_into()
                .map_err(|_| WireError::Truncated)?;
            *pos += 8;
            Ok(Content::F64(f64::from_bits(u64::from_le_bytes(raw))))
        }
        TAG_STR => Ok(Content::Str(read_string(bytes, pos)?)),
        TAG_SEQ => {
            let len = read_len(bytes, pos, 1)?;
            let mut items = Vec::with_capacity(len);
            for _ in 0..len {
                items.push(decode_content(bytes, pos, depth + 1)?);
            }
            Ok(Content::Seq(items))
        }
        TAG_MAP => {
            // Each entry costs at least one key-length byte plus a
            // one-byte value, so bound capacity by remaining/2.
            let len = read_len(bytes, pos, 2)?;
            let mut entries = Vec::with_capacity(len);
            for _ in 0..len {
                let key = read_string(bytes, pos)?;
                let value = decode_content(bytes, pos, depth + 1)?;
                entries.push((key, value));
            }
            Ok(Content::Map(entries))
        }
        other => Err(WireError::Malformed(format!(
            "unknown tag byte {other:#04x}"
        ))),
    }
}

/// Reads a declared element count and rejects it — before any
/// allocation — when even `min_bytes_each` bytes per element would
/// overrun the input that actually remains.
fn read_len(bytes: &[u8], pos: &mut usize, min_bytes_each: usize) -> Result<usize, WireError> {
    let len = read_varint(bytes, pos)?;
    let remaining = (bytes.len() - *pos) as u64;
    if len.saturating_mul(min_bytes_each as u64) > remaining {
        return Err(WireError::Malformed(format!(
            "declared length {len} exceeds the {remaining} byte(s) remaining"
        )));
    }
    #[allow(clippy::cast_possible_truncation)]
    Ok(len as usize)
}

fn read_string(bytes: &[u8], pos: &mut usize) -> Result<String, WireError> {
    let len = read_len(bytes, pos, 1)?;
    let raw = bytes.get(*pos..*pos + len).ok_or(WireError::Truncated)?;
    *pos += len;
    String::from_utf8(raw.to_vec())
        .map_err(|_| WireError::Malformed("string is not valid UTF-8".to_string()))
}

fn write_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        #[allow(clippy::cast_possible_truncation)]
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, WireError> {
    let mut out = 0u64;
    for i in 0..10 {
        let byte = *bytes.get(*pos).ok_or(WireError::Truncated)?;
        *pos += 1;
        let part = u64::from(byte & 0x7f);
        // The 10th byte holds bits 63.. — anything above 1 overflows.
        if i == 9 && part > 1 {
            return Err(WireError::Malformed("varint overflows u64".to_string()));
        }
        out |= part << (7 * i);
        if byte & 0x80 == 0 {
            // A multi-byte encoding ending in 0x00 encodes a value the
            // encoder would have emitted shorter: reject it so every
            // value has exactly one accepted byte sequence (the hash
            // fast lane and canonical re-encoding both rely on this).
            if i > 0 && byte == 0 {
                return Err(WireError::Malformed(
                    "non-canonical varint (padded with zero bytes)".to_string(),
                ));
            }
            return Ok(out);
        }
    }
    Err(WireError::Malformed(
        "varint longer than 10 bytes".to_string(),
    ))
}

/// Encodes `v` as a canonical LEB128 varint — the conformance surface
/// `gdcm-wirecheck` uses for scalar boundary sweeps.
#[must_use]
pub fn encode_varint(v: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(10);
    write_varint(&mut buf, v);
    buf
}

/// Decodes one LEB128 varint from the front of `bytes`, returning the
/// value and the number of bytes consumed.
///
/// # Errors
///
/// [`WireError::Truncated`] when the input ends mid-varint;
/// [`WireError::Malformed`] on over-long (> 10 byte), overflowing, or
/// non-canonical encodings.
pub fn decode_varint(bytes: &[u8]) -> Result<(u64, usize), WireError> {
    let mut pos = 0usize;
    let v = read_varint(bytes, &mut pos)?;
    Ok((v, pos))
}

/// Encodes a raw content tree — used by `gdcm-wirecheck` to enumerate
/// the payload grammar directly, below the `Request`/`Response` types.
#[must_use]
pub fn encode_content_tree(content: &Content) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_content(&mut buf, content);
    buf
}

/// Decodes a raw content tree, requiring every byte to be consumed.
///
/// # Errors
///
/// [`WireError::Truncated`] / [`WireError::Malformed`] on bad bytes.
pub fn decode_content_tree(bytes: &[u8]) -> Result<Content, WireError> {
    let mut pos = 0usize;
    let content = decode_content(bytes, &mut pos, 0)?;
    if pos != bytes.len() {
        return Err(WireError::Malformed(format!(
            "{} trailing byte(s) after value",
            bytes.len() - pos
        )));
    }
    Ok(content)
}

/// Decodes a payload and re-encodes it canonically. For bytes the
/// encoder produced this is the identity; for merely-accepted inputs it
/// yields the canonical spelling of the same tree.
///
/// # Errors
///
/// Propagates the [`decode_content_tree`] contract.
pub fn reencode(bytes: &[u8]) -> Result<Vec<u8>, WireError> {
    let content = decode_content_tree(bytes)?;
    Ok(encode_content_tree(&content))
}

const fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[allow(clippy::cast_possible_wrap)]
const fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Request, Response};

    fn tiny_network() -> gdcm_dnn::Network {
        let mut b = gdcm_dnn::NetworkBuilder::new("wire-probe");
        let x = b.input(gdcm_dnn::TensorShape::new(32, 32, 3));
        let x = b
            .conv2d_act(x, 8, 3, 1, gdcm_dnn::Activation::Relu)
            .unwrap();
        let x = b.global_avg_pool(x).unwrap();
        let logits = b.fully_connected(x, 10).unwrap();
        b.build(logits).unwrap()
    }

    fn round_trip_content(content: &Content) {
        let mut buf = Vec::new();
        encode_content(&mut buf, content);
        let mut pos = 0;
        let back = decode_content(&buf, &mut pos, 0).expect("decodes");
        assert_eq!(pos, buf.len(), "full consumption");
        assert_eq!(&back, content);
    }

    #[test]
    fn every_content_kind_round_trips() {
        round_trip_content(&Content::Null);
        round_trip_content(&Content::Bool(false));
        round_trip_content(&Content::Bool(true));
        for v in [0i64, 1, -1, 63, -64, i64::MIN, i64::MAX] {
            round_trip_content(&Content::I64(v));
        }
        for v in [0u64, 127, 128, 1 << 53, u64::MAX] {
            round_trip_content(&Content::U64(v));
        }
        round_trip_content(&Content::Str(String::new()));
        round_trip_content(&Content::Str("héllo wörld".to_string()));
        round_trip_content(&Content::Seq(vec![
            Content::Null,
            Content::Seq(vec![Content::I64(-5)]),
        ]));
        round_trip_content(&Content::Map(vec![
            ("a".to_string(), Content::Bool(true)),
            (String::new(), Content::Map(vec![])),
        ]));
    }

    #[test]
    fn f64_bits_survive_exactly() {
        for v in [
            0.0,
            -0.0,
            1.5,
            f64::MIN_POSITIVE,
            f64::MAX,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            123.456_789_012_345_67,
        ] {
            let mut buf = Vec::new();
            encode_content(&mut buf, &Content::F64(v));
            let mut pos = 0;
            match decode_content(&buf, &mut pos, 0).expect("decodes") {
                Content::F64(back) => assert_eq!(back.to_bits(), v.to_bits()),
                other => panic!("wrong kind: {other:?}"),
            }
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        let req = Request::Predict {
            device: "pixel".to_string(),
            network: tiny_network(),
        };
        let a = encode_value(&req).expect("encodes");
        let b = encode_value(&req).expect("encodes");
        assert_eq!(a, b);
    }

    #[test]
    fn requests_and_responses_round_trip() {
        let reqs = vec![
            Request::Ping,
            Request::Stats,
            Request::Predict {
                device: "pixel".to_string(),
                network: tiny_network(),
            },
            Request::OnboardDevice {
                device: "mate".to_string(),
                signature_ms: vec![1.5, 2.25, f64::MIN_POSITIVE],
            },
            Request::Shutdown,
        ];
        for req in reqs {
            let bytes = encode_value(&req).expect("encodes");
            let back: Request = decode_value(&bytes).expect("decodes");
            assert_eq!(back, req);
        }
        let resp = Response::Prediction {
            latency_ms: 123.456_789_012_345_67,
        };
        let bytes = encode_value(&resp).expect("encodes");
        match decode_value::<Response>(&bytes).expect("decodes") {
            Response::Prediction { latency_ms } => {
                assert_eq!(latency_ms.to_bits(), 123.456_789_012_345_67f64.to_bits());
            }
            other => panic!("variant changed: {other:?}"),
        }
    }

    #[test]
    fn frames_carry_extreme_request_ids() {
        for id in [0u64, 1, 1 << 53, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            append_frame(&mut buf, id, &Request::Ping).expect("frames");
            let header = decode_frame_header(&buf).expect("header");
            assert_eq!(header.request_id, id);
            assert_eq!(header.payload_len, buf.len() - FRAME_HEADER_LEN);
            let back: Request = decode_value(&buf[FRAME_HEADER_LEN..]).expect("payload decodes");
            assert_eq!(back, Request::Ping);
        }
    }

    #[test]
    fn truncated_inputs_error_not_panic() {
        let bytes = encode_value(&Request::Stats).expect("encodes");
        for cut in 0..bytes.len() {
            assert!(
                decode_value::<Request>(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn hostile_lengths_are_rejected_before_allocation() {
        // Seq claiming u32::MAX elements with 2 bytes of input.
        let mut buf = vec![TAG_SEQ];
        write_varint(&mut buf, u64::from(u32::MAX));
        let err = decode_value::<Request>(&buf).expect_err("must reject");
        assert!(matches!(err, WireError::Malformed(_)), "{err}");
        // Str claiming a huge byte length.
        let mut buf = vec![TAG_STR];
        write_varint(&mut buf, u64::MAX / 2);
        let err = decode_value::<Request>(&buf).expect_err("must reject");
        assert!(matches!(err, WireError::Malformed(_)), "{err}");
    }

    #[test]
    fn unknown_tags_and_trailing_bytes_are_malformed() {
        assert!(matches!(
            decode_value::<Request>(&[0xff]),
            Err(WireError::Malformed(_))
        ));
        let mut bytes = encode_value(&Request::Ping).expect("encodes");
        bytes.push(0x00);
        assert!(matches!(
            decode_value::<Request>(&bytes),
            Err(WireError::Malformed(_))
        ));
    }

    /// Every 7-bit LEB128 length boundary: the largest value of each
    /// encoded byte length and the smallest value of the next.
    fn varint_boundaries() -> Vec<(u64, usize)> {
        let mut cases = vec![(0u64, 1usize)];
        for k in 1..=9usize {
            let edge = 1u64 << (7 * k);
            cases.push((edge - 1, k));
            cases.push((edge, k + 1));
        }
        cases.push((u64::MAX, 10));
        cases
    }

    #[test]
    fn varints_round_trip_at_every_length_boundary() {
        for (value, expected_len) in varint_boundaries() {
            let bytes = encode_varint(value);
            assert_eq!(bytes.len(), expected_len, "canonical length of {value}");
            let (back, consumed) = decode_varint(&bytes).expect("canonical decodes");
            assert_eq!(back, value);
            assert_eq!(consumed, expected_len);
        }
    }

    #[test]
    fn non_canonical_varints_rejected_at_every_length() {
        for (value, canonical_len) in varint_boundaries() {
            // Pad the canonical encoding with zero continuation bytes
            // out to every longer length the 10-byte cap allows.
            for padded_len in canonical_len + 1..=10 {
                let mut bytes = encode_varint(value);
                while bytes.len() < padded_len {
                    let last = bytes.len() - 1;
                    bytes[last] |= 0x80;
                    bytes.push(0x00);
                }
                let err = decode_varint(&bytes).expect_err("padded form must be rejected");
                assert!(
                    matches!(err, WireError::Malformed(_)),
                    "value {value} padded to {padded_len}: {err}"
                );
            }
        }
        // The classic two-byte zero.
        assert!(matches!(
            decode_varint(&[0x80, 0x00]),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn overlong_and_overflowing_varints_rejected() {
        // Eleven continuation bytes: longer than any u64 needs.
        let overlong = [0x80u8; 11];
        assert!(matches!(
            decode_varint(&overlong),
            Err(WireError::Malformed(_))
        ));
        // Ten bytes whose top byte pushes past bit 63.
        let mut overflow = vec![0xffu8; 9];
        overflow.push(0x02);
        assert!(matches!(
            decode_varint(&overflow),
            Err(WireError::Malformed(_))
        ));
        // Truncated mid-varint.
        assert!(matches!(decode_varint(&[0x80]), Err(WireError::Truncated)));
    }

    #[test]
    fn reencode_is_identity_on_canonical_bytes() {
        let req = Request::Predict {
            device: "pixel".to_string(),
            network: tiny_network(),
        };
        let bytes = encode_value(&req).expect("encodes");
        assert_eq!(reencode(&bytes).expect("reencodes"), bytes);
    }

    #[test]
    fn preamble_round_trips_and_rejects_strangers() {
        assert_eq!(check_preamble(&preamble()).expect("valid"), WIRE_VERSION);
        assert!(matches!(
            check_preamble(b"\0GDCMX\x01\x00"),
            Err(WireError::Malformed(_))
        ));
        assert!(matches!(
            check_preamble(b"\0GDCMW\x63\x00"),
            Err(WireError::UnsupportedVersion { requested: 99 })
        ));
        assert!(matches!(
            check_preamble(&PREAMBLE_MAGIC),
            Err(WireError::Truncated)
        ));
    }

    #[test]
    fn oversized_frames_are_refused_on_encode() {
        let mut buf = Vec::new();
        let payload = vec![0u8; MAX_PAYLOAD + 1];
        assert!(matches!(
            append_raw_frame(&mut buf, 1, &payload),
            Err(WireError::FrameTooLarge { .. })
        ));
        assert!(buf.is_empty());
    }
}
