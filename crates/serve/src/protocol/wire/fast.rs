//! Hand-rolled fast path for [`Request`] payloads.
//!
//! The generic codec in [`super`] detours through the vendored serde
//! content tree: every struct field becomes a heap-allocated
//! `(String, Content)` pair before a single wire byte is written, and
//! decoding rebuilds the whole tree before `from_content` walks it
//! again. For the serving hot path — a [`Request::Predict`] carrying a
//! multi-kilobyte [`Network`] on every frame — that detour is ~20x the
//! cost of the actual prediction.
//!
//! This module encodes and decodes [`Request`] values *directly*
//! against the wire bytes, with zero intermediate tree. It is an
//! optimization only, not a second format:
//!
//! * **Encoding is byte-identical** to the generic path. The vendored
//!   derive emits named fields in declaration order and externally
//!   tagged variants, so the canonical byte stream is fully determined;
//!   the equivalence tests below assert `append_request` ==
//!   `append_value` for every request and operator variant.
//! * **Decoding accepts a superset.** The strict parser recognizes
//!   exactly the canonical layout; any deviation — reordered map keys,
//!   unknown fields, or plain garbage — falls back to the generic
//!   decoder, which remains the semantic (and error-message) authority.
//!
//! The fallback means this module can never change what the server
//! accepts or how it fails; it can only make the common case cheap.

use super::{
    WireError, FRAME_HEADER_LEN, MAX_PAYLOAD, TAG_F64, TAG_FALSE, TAG_MAP, TAG_SEQ, TAG_STR,
    TAG_TRUE, TAG_U64,
};
use crate::protocol::Request;
use gdcm_dnn::{Network, Node, NodeId, Op, Padding, TensorShape};

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Appends the canonical wire encoding of `req` to `buf` (not cleared).
///
/// Byte-identical to [`super::append_value`] on the same request, and
/// infallible: request trees have fixed structural depth and plain-data
/// fields, so none of the generic path's error cases can occur.
pub fn append_request(buf: &mut Vec<u8>, req: &Request) {
    match req {
        Request::Ping => put_str(buf, "Ping"),
        Request::Stats => put_str(buf, "Stats"),
        Request::Fit => put_str(buf, "Fit"),
        Request::Shutdown => put_str(buf, "Shutdown"),
        Request::Predict { device, network } => {
            put_variant(buf, "Predict", 2);
            put_key(buf, "device");
            put_str(buf, device);
            put_key(buf, "network");
            put_network(buf, network);
        }
        Request::PredictBatch { device, networks } => {
            put_variant(buf, "PredictBatch", 2);
            put_key(buf, "device");
            put_str(buf, device);
            put_key(buf, "networks");
            put_seq(buf, networks.len());
            for network in networks {
                put_network(buf, network);
            }
        }
        Request::PredictForNewDevice {
            signature_ms,
            network,
        } => {
            put_variant(buf, "PredictForNewDevice", 2);
            put_key(buf, "signature_ms");
            put_f64_seq(buf, signature_ms);
            put_key(buf, "network");
            put_network(buf, network);
        }
        Request::OnboardDevice {
            device,
            signature_ms,
        } => {
            put_variant(buf, "OnboardDevice", 2);
            put_key(buf, "device");
            put_str(buf, device);
            put_key(buf, "signature_ms");
            put_f64_seq(buf, signature_ms);
        }
        Request::ReEnroll {
            device,
            signature_ms,
        } => {
            put_variant(buf, "ReEnroll", 2);
            put_key(buf, "device");
            put_str(buf, device);
            put_key(buf, "signature_ms");
            put_f64_seq(buf, signature_ms);
        }
        Request::Contribute {
            device,
            network,
            latency_ms,
        } => {
            put_variant(buf, "Contribute", 3);
            put_key(buf, "device");
            put_str(buf, device);
            put_key(buf, "network");
            put_network(buf, network);
            put_key(buf, "latency_ms");
            put_f64(buf, *latency_ms);
        }
    }
}

/// Appends one complete frame — header plus fast-encoded `req`.
///
/// # Errors
///
/// [`WireError::FrameTooLarge`] when the encoded payload exceeds
/// [`MAX_PAYLOAD`]; the buffer is restored to its previous length.
pub fn append_request_frame(
    buf: &mut Vec<u8>,
    request_id: u64,
    req: &Request,
) -> Result<(), WireError> {
    let header_at = buf.len();
    buf.extend_from_slice(&[0u8; FRAME_HEADER_LEN]);
    append_request(buf, req);
    let payload_len = buf.len() - header_at - FRAME_HEADER_LEN;
    if payload_len > MAX_PAYLOAD {
        buf.truncate(header_at);
        return Err(WireError::FrameTooLarge {
            declared: payload_len,
        });
    }
    // Truncation is guarded by the MAX_PAYLOAD check above.
    #[allow(clippy::cast_possible_truncation)]
    let len32 = payload_len as u32;
    buf[header_at..header_at + 4].copy_from_slice(&len32.to_le_bytes());
    buf[header_at + 4..header_at + FRAME_HEADER_LEN].copy_from_slice(&request_id.to_le_bytes());
    Ok(())
}

fn put_network(buf: &mut Vec<u8>, network: &Network) {
    put_map(buf, 3);
    put_key(buf, "name");
    put_str(buf, network.name());
    put_key(buf, "nodes");
    put_seq(buf, network.nodes().len());
    for node in network.nodes() {
        put_node(buf, node);
    }
    put_key(buf, "output");
    put_u64(buf, network.output_id().index() as u64);
}

fn put_node(buf: &mut Vec<u8>, node: &Node) {
    put_map(buf, 4);
    put_key(buf, "id");
    put_u64(buf, node.id.index() as u64);
    put_key(buf, "op");
    put_op(buf, &node.op);
    put_key(buf, "inputs");
    put_seq(buf, node.inputs.len());
    for input in &node.inputs {
        put_u64(buf, input.index() as u64);
    }
    put_key(buf, "output_shape");
    put_shape(buf, node.output_shape);
}

fn put_op(buf: &mut Vec<u8>, op: &Op) {
    match op {
        Op::Input { shape } => {
            put_variant(buf, "Input", 1);
            put_key(buf, "shape");
            put_shape(buf, *shape);
        }
        Op::Conv2d(p) => {
            put_map(buf, 1);
            put_key(buf, "Conv2d");
            put_map(buf, 6);
            put_key(buf, "out_channels");
            put_u64(buf, p.out_channels as u64);
            put_key(buf, "kernel");
            put_u64(buf, p.kernel as u64);
            put_key(buf, "stride");
            put_u64(buf, p.stride as u64);
            put_key(buf, "padding");
            put_padding(buf, p.padding);
            put_key(buf, "groups");
            put_u64(buf, p.groups as u64);
            put_key(buf, "bias");
            put_bool(buf, p.bias);
        }
        Op::DepthwiseConv2d(p) => {
            put_map(buf, 1);
            put_key(buf, "DepthwiseConv2d");
            put_map(buf, 5);
            put_key(buf, "kernel");
            put_u64(buf, p.kernel as u64);
            put_key(buf, "stride");
            put_u64(buf, p.stride as u64);
            put_key(buf, "padding");
            put_padding(buf, p.padding);
            put_key(buf, "multiplier");
            put_u64(buf, p.multiplier as u64);
            put_key(buf, "bias");
            put_bool(buf, p.bias);
        }
        Op::FullyConnected { out_features, bias } => {
            put_variant(buf, "FullyConnected", 2);
            put_key(buf, "out_features");
            put_u64(buf, *out_features as u64);
            put_key(buf, "bias");
            put_bool(buf, *bias);
        }
        Op::Activation(a) => {
            put_map(buf, 1);
            put_key(buf, "Activation");
            put_str(buf, activation_name(*a));
        }
        Op::MaxPool2d(p) => {
            put_map(buf, 1);
            put_key(buf, "MaxPool2d");
            put_pool(buf, p);
        }
        Op::AvgPool2d(p) => {
            put_map(buf, 1);
            put_key(buf, "AvgPool2d");
            put_pool(buf, p);
        }
        Op::GlobalAvgPool => put_str(buf, "GlobalAvgPool"),
        Op::Add => put_str(buf, "Add"),
        Op::Multiply => put_str(buf, "Multiply"),
        Op::Concat => put_str(buf, "Concat"),
    }
}

fn put_pool(buf: &mut Vec<u8>, p: &gdcm_dnn::PoolParams) {
    put_map(buf, 3);
    put_key(buf, "kernel");
    put_u64(buf, p.kernel as u64);
    put_key(buf, "stride");
    put_u64(buf, p.stride as u64);
    put_key(buf, "padding");
    put_padding(buf, p.padding);
}

fn put_padding(buf: &mut Vec<u8>, padding: Padding) {
    match padding {
        Padding::Same => put_str(buf, "Same"),
        Padding::Valid => put_str(buf, "Valid"),
        Padding::Explicit(p) => {
            put_map(buf, 1);
            put_key(buf, "Explicit");
            put_u64(buf, p as u64);
        }
    }
}

fn put_shape(buf: &mut Vec<u8>, shape: TensorShape) {
    put_map(buf, 3);
    put_key(buf, "h");
    put_u64(buf, shape.h as u64);
    put_key(buf, "w");
    put_u64(buf, shape.w as u64);
    put_key(buf, "c");
    put_u64(buf, shape.c as u64);
}

fn activation_name(a: gdcm_dnn::Activation) -> &'static str {
    use gdcm_dnn::Activation::*;
    match a {
        Relu => "Relu",
        Relu6 => "Relu6",
        HSwish => "HSwish",
        HSigmoid => "HSigmoid",
        Sigmoid => "Sigmoid",
        Swish => "Swish",
    }
}

/// Externally-tagged variant head: a 1-entry map whose single value is
/// an `n_fields`-entry map of the variant's named fields.
fn put_variant(buf: &mut Vec<u8>, name: &str, n_fields: usize) {
    put_map(buf, 1);
    put_key(buf, name);
    put_map(buf, n_fields);
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.push(TAG_STR);
    super::write_varint(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

fn put_key(buf: &mut Vec<u8>, key: &str) {
    super::write_varint(buf, key.len() as u64);
    buf.extend_from_slice(key.as_bytes());
}

fn put_map(buf: &mut Vec<u8>, entries: usize) {
    buf.push(TAG_MAP);
    super::write_varint(buf, entries as u64);
}

fn put_seq(buf: &mut Vec<u8>, items: usize) {
    buf.push(TAG_SEQ);
    super::write_varint(buf, items as u64);
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.push(TAG_U64);
    super::write_varint(buf, v);
}

fn put_bool(buf: &mut Vec<u8>, v: bool) {
    buf.push(if v { TAG_TRUE } else { TAG_FALSE });
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.push(TAG_F64);
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_f64_seq(buf: &mut Vec<u8>, values: &[f64]) {
    put_seq(buf, values.len());
    for v in values {
        put_f64(buf, *v);
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Decodes a request payload, trying the strict canonical parser first
/// and falling back to the generic content-tree decoder on any
/// deviation.
///
/// # Errors
///
/// Exactly the [`super::decode_value`] contract — the fallback *is*
/// the generic decoder, so accepted inputs and error messages are
/// unchanged.
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    let mut cur = Cur { b: payload, pos: 0 };
    match parse_request(&mut cur) {
        Some(req) if cur.pos == payload.len() => Ok(req),
        _ => super::decode_value(payload),
    }
}

/// Splits a canonical `Predict` payload into its device name and the
/// network's raw value bytes, without decoding the network. `None` for
/// anything that is not the exact canonical `Predict` layout — the
/// caller then takes the ordinary decode path.
///
/// `device` and `network` are the last two fields in declaration
/// order, so the network's bytes are simply the remainder of the
/// payload; [`wire_hash`] over that slice identifies the graph content
/// (the encoding is deterministic: equal graphs, equal bytes).
pub fn probe_predict(payload: &[u8]) -> Option<(&str, &[u8])> {
    let mut c = Cur { b: payload, pos: 0 };
    if c.byte()? != TAG_MAP || c.varint()? != 1 || c.raw_str()? != b"Predict" {
        return None;
    }
    c.map(2)?;
    c.key("device")?;
    let device = std::str::from_utf8(c.str_bytes()?).ok()?;
    c.key("network")?;
    let network = &payload[c.pos..];
    (!network.is_empty()).then_some((device, network))
}

/// FNV-1a-style hash over 8-byte words — the same mixing as the
/// serving layer's structural hash at 8x the stride, cheap enough to
/// run on every frame. Length is folded in up front so a payload and
/// its zero-padded extension cannot collide. Not cryptographic: an
/// adversarial collision could alias two cache keys, the same exposure
/// the structural [`network_hash`](crate::serving::network_hash)
/// already accepts.
pub fn wire_hash(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ (bytes.len() as u64);
    let mut words = bytes.chunks_exact(8);
    for word in &mut words {
        let word = match <[u8; 8]>::try_from(word) {
            Ok(raw) => u64::from_le_bytes(raw),
            // Unreachable: chunks_exact yields 8-byte slices.
            Err(_) => continue,
        };
        h = (h ^ word).wrapping_mul(PRIME);
    }
    let rem = words.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h = (h ^ u64::from_le_bytes(tail)).wrapping_mul(PRIME);
    }
    h
}

/// Strict cursor over the canonical byte layout. Every accessor
/// returns `None` on any deviation — truncation, a different tag, an
/// unexpected key — which sends [`decode_request`] to the generic
/// fallback.
struct Cur<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn byte(&mut self) -> Option<u8> {
        let v = *self.b.get(self.pos)?;
        self.pos += 1;
        Some(v)
    }

    fn varint(&mut self) -> Option<u64> {
        let mut out = 0u64;
        for i in 0..10 {
            let byte = self.byte()?;
            let part = u64::from(byte & 0x7f);
            if i == 9 && part > 1 {
                return None;
            }
            out |= part << (7 * i);
            if byte & 0x80 == 0 {
                // Mirror the generic decoder: multi-byte encodings
                // ending in 0x00 are non-canonical and must not be
                // accepted on the fast path either.
                if i > 0 && byte == 0 {
                    return None;
                }
                return Some(out);
            }
        }
        None
    }

    fn take(&mut self, len: usize) -> Option<&'a [u8]> {
        let raw = self.b.get(self.pos..self.pos.checked_add(len)?)?;
        self.pos += len;
        Some(raw)
    }

    /// Length-prefixed raw bytes (a map key, or a string body after
    /// its tag).
    fn raw_str(&mut self) -> Option<&'a [u8]> {
        let len = self.varint()?;
        self.take(usize::try_from(len).ok()?)
    }

    /// A `Str` node's bytes.
    fn str_bytes(&mut self) -> Option<&'a [u8]> {
        if self.byte()? != TAG_STR {
            return None;
        }
        self.raw_str()
    }

    /// A `Str` node as an owned, UTF-8-validated string.
    fn string(&mut self) -> Option<String> {
        Some(std::str::from_utf8(self.str_bytes()?).ok()?.to_string())
    }

    /// A map header with exactly `entries` entries.
    fn map(&mut self, entries: u64) -> Option<()> {
        (self.byte()? == TAG_MAP && self.varint()? == entries).then_some(())
    }

    /// A map key matching `key` exactly.
    fn key(&mut self, key: &str) -> Option<()> {
        (self.raw_str()? == key.as_bytes()).then_some(())
    }

    /// A sequence header; the count is bounded by the bytes remaining
    /// (each element costs at least `min_bytes_each`), so a hostile
    /// count cannot drive a large allocation.
    fn seq(&mut self, min_bytes_each: usize) -> Option<usize> {
        if self.byte()? != TAG_SEQ {
            return None;
        }
        let len = usize::try_from(self.varint()?).ok()?;
        let remaining = self.b.len() - self.pos;
        (len.saturating_mul(min_bytes_each) <= remaining).then_some(len)
    }

    fn u64(&mut self) -> Option<u64> {
        if self.byte()? != TAG_U64 {
            return None;
        }
        self.varint()
    }

    fn usize(&mut self) -> Option<usize> {
        usize::try_from(self.u64()?).ok()
    }

    fn boolean(&mut self) -> Option<bool> {
        match self.byte()? {
            TAG_TRUE => Some(true),
            TAG_FALSE => Some(false),
            _ => None,
        }
    }

    fn f64(&mut self) -> Option<f64> {
        if self.byte()? != TAG_F64 {
            return None;
        }
        let raw: [u8; 8] = self.take(8)?.try_into().ok()?;
        Some(f64::from_bits(u64::from_le_bytes(raw)))
    }

    fn f64_seq(&mut self) -> Option<Vec<f64>> {
        // An F64 element is 9 bytes (tag + bits).
        let len = self.seq(9)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.f64()?);
        }
        Some(out)
    }
}

fn parse_request(c: &mut Cur<'_>) -> Option<Request> {
    match c.byte()? {
        TAG_STR => match c.raw_str()? {
            b"Ping" => Some(Request::Ping),
            b"Stats" => Some(Request::Stats),
            b"Fit" => Some(Request::Fit),
            b"Shutdown" => Some(Request::Shutdown),
            _ => None,
        },
        TAG_MAP => {
            if c.varint()? != 1 {
                return None;
            }
            match c.raw_str()? {
                b"Predict" => {
                    c.map(2)?;
                    c.key("device")?;
                    let device = c.string()?;
                    c.key("network")?;
                    let network = parse_network(c)?;
                    Some(Request::Predict { device, network })
                }
                b"PredictBatch" => {
                    c.map(2)?;
                    c.key("device")?;
                    let device = c.string()?;
                    c.key("networks")?;
                    // The smallest network payload is far above 2
                    // bytes; 2 is just the hostile-count bound.
                    let len = c.seq(2)?;
                    let mut networks = Vec::with_capacity(len);
                    for _ in 0..len {
                        networks.push(parse_network(c)?);
                    }
                    Some(Request::PredictBatch { device, networks })
                }
                b"PredictForNewDevice" => {
                    c.map(2)?;
                    c.key("signature_ms")?;
                    let signature_ms = c.f64_seq()?;
                    c.key("network")?;
                    let network = parse_network(c)?;
                    Some(Request::PredictForNewDevice {
                        signature_ms,
                        network,
                    })
                }
                b"OnboardDevice" => {
                    c.map(2)?;
                    c.key("device")?;
                    let device = c.string()?;
                    c.key("signature_ms")?;
                    let signature_ms = c.f64_seq()?;
                    Some(Request::OnboardDevice {
                        device,
                        signature_ms,
                    })
                }
                b"ReEnroll" => {
                    c.map(2)?;
                    c.key("device")?;
                    let device = c.string()?;
                    c.key("signature_ms")?;
                    let signature_ms = c.f64_seq()?;
                    Some(Request::ReEnroll {
                        device,
                        signature_ms,
                    })
                }
                b"Contribute" => {
                    c.map(3)?;
                    c.key("device")?;
                    let device = c.string()?;
                    c.key("network")?;
                    let network = parse_network(c)?;
                    c.key("latency_ms")?;
                    let latency_ms = c.f64()?;
                    Some(Request::Contribute {
                        device,
                        network,
                        latency_ms,
                    })
                }
                _ => None,
            }
        }
        _ => None,
    }
}

fn parse_network(c: &mut Cur<'_>) -> Option<Network> {
    c.map(3)?;
    c.key("name")?;
    let name = c.string()?;
    c.key("nodes")?;
    let len = c.seq(2)?;
    let mut nodes = Vec::with_capacity(len);
    for _ in 0..len {
        nodes.push(parse_node(c)?);
    }
    c.key("output")?;
    let output = NodeId::from_index(c.usize()?);
    // Same construction the generic derive performs: raw parts, no
    // structural validation — the serving layer treats any decoded
    // graph identically on both paths.
    Some(Network::from_raw_parts(name, nodes, output))
}

fn parse_node(c: &mut Cur<'_>) -> Option<Node> {
    c.map(4)?;
    c.key("id")?;
    let id = NodeId::from_index(c.usize()?);
    c.key("op")?;
    let op = parse_op(c)?;
    c.key("inputs")?;
    let len = c.seq(2)?;
    let mut inputs = Vec::with_capacity(len);
    for _ in 0..len {
        inputs.push(NodeId::from_index(c.usize()?));
    }
    c.key("output_shape")?;
    let output_shape = parse_shape(c)?;
    Some(Node {
        id,
        op,
        inputs,
        output_shape,
    })
}

fn parse_op(c: &mut Cur<'_>) -> Option<Op> {
    match c.byte()? {
        TAG_STR => match c.raw_str()? {
            b"GlobalAvgPool" => Some(Op::GlobalAvgPool),
            b"Add" => Some(Op::Add),
            b"Multiply" => Some(Op::Multiply),
            b"Concat" => Some(Op::Concat),
            _ => None,
        },
        TAG_MAP => {
            if c.varint()? != 1 {
                return None;
            }
            match c.raw_str()? {
                b"Input" => {
                    c.map(1)?;
                    c.key("shape")?;
                    Some(Op::Input {
                        shape: parse_shape(c)?,
                    })
                }
                b"Conv2d" => {
                    c.map(6)?;
                    c.key("out_channels")?;
                    let out_channels = c.usize()?;
                    c.key("kernel")?;
                    let kernel = c.usize()?;
                    c.key("stride")?;
                    let stride = c.usize()?;
                    c.key("padding")?;
                    let padding = parse_padding(c)?;
                    c.key("groups")?;
                    let groups = c.usize()?;
                    c.key("bias")?;
                    let bias = c.boolean()?;
                    Some(Op::Conv2d(gdcm_dnn::Conv2dParams {
                        out_channels,
                        kernel,
                        stride,
                        padding,
                        groups,
                        bias,
                    }))
                }
                b"DepthwiseConv2d" => {
                    c.map(5)?;
                    c.key("kernel")?;
                    let kernel = c.usize()?;
                    c.key("stride")?;
                    let stride = c.usize()?;
                    c.key("padding")?;
                    let padding = parse_padding(c)?;
                    c.key("multiplier")?;
                    let multiplier = c.usize()?;
                    c.key("bias")?;
                    let bias = c.boolean()?;
                    Some(Op::DepthwiseConv2d(gdcm_dnn::DepthwiseConv2dParams {
                        kernel,
                        stride,
                        padding,
                        multiplier,
                        bias,
                    }))
                }
                b"FullyConnected" => {
                    c.map(2)?;
                    c.key("out_features")?;
                    let out_features = c.usize()?;
                    c.key("bias")?;
                    let bias = c.boolean()?;
                    Some(Op::FullyConnected { out_features, bias })
                }
                b"Activation" => Some(Op::Activation(match c.str_bytes()? {
                    b"Relu" => gdcm_dnn::Activation::Relu,
                    b"Relu6" => gdcm_dnn::Activation::Relu6,
                    b"HSwish" => gdcm_dnn::Activation::HSwish,
                    b"HSigmoid" => gdcm_dnn::Activation::HSigmoid,
                    b"Sigmoid" => gdcm_dnn::Activation::Sigmoid,
                    b"Swish" => gdcm_dnn::Activation::Swish,
                    _ => return None,
                })),
                b"MaxPool2d" => Some(Op::MaxPool2d(parse_pool(c)?)),
                b"AvgPool2d" => Some(Op::AvgPool2d(parse_pool(c)?)),
                _ => None,
            }
        }
        _ => None,
    }
}

fn parse_pool(c: &mut Cur<'_>) -> Option<gdcm_dnn::PoolParams> {
    c.map(3)?;
    c.key("kernel")?;
    let kernel = c.usize()?;
    c.key("stride")?;
    let stride = c.usize()?;
    c.key("padding")?;
    let padding = parse_padding(c)?;
    Some(gdcm_dnn::PoolParams {
        kernel,
        stride,
        padding,
    })
}

fn parse_padding(c: &mut Cur<'_>) -> Option<Padding> {
    match c.byte()? {
        TAG_STR => match c.raw_str()? {
            b"Same" => Some(Padding::Same),
            b"Valid" => Some(Padding::Valid),
            _ => None,
        },
        TAG_MAP => {
            if c.varint()? != 1 {
                return None;
            }
            c.key("Explicit")?;
            Some(Padding::Explicit(c.usize()?))
        }
        _ => None,
    }
}

fn parse_shape(c: &mut Cur<'_>) -> Option<TensorShape> {
    c.map(3)?;
    c.key("h")?;
    let h = c.usize()?;
    c.key("w")?;
    let w = c.usize()?;
    c.key("c")?;
    let ch = c.usize()?;
    Some(TensorShape::new(h, w, ch))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdcm_dnn::{Activation, Conv2dParams, DepthwiseConv2dParams, PoolParams};

    /// A structurally diverse graph exercising every operator variant,
    /// every padding, and every activation. Built from raw parts: the
    /// codec must handle anything the type system allows, not only
    /// builder-validated graphs.
    fn kitchen_sink_network() -> Network {
        let shape = TensorShape::new(16, 16, 8);
        let ops: Vec<Op> = vec![
            Op::Input {
                shape: TensorShape::new(32, 32, 3),
            },
            Op::Conv2d(Conv2dParams {
                out_channels: 8,
                kernel: 3,
                stride: 2,
                padding: Padding::Same,
                groups: 2,
                bias: false,
            }),
            Op::Conv2d(Conv2dParams {
                padding: Padding::Explicit(3),
                ..Conv2dParams::dense(16, 5, 1)
            }),
            Op::DepthwiseConv2d(DepthwiseConv2dParams {
                kernel: 3,
                stride: 1,
                padding: Padding::Valid,
                multiplier: 2,
                bias: true,
            }),
            Op::FullyConnected {
                out_features: 100,
                bias: false,
            },
            Op::MaxPool2d(PoolParams::new(2, 2)),
            Op::AvgPool2d(PoolParams {
                kernel: 3,
                stride: 1,
                padding: Padding::Same,
            }),
            Op::GlobalAvgPool,
            Op::Add,
            Op::Multiply,
            Op::Concat,
        ];
        let ops = ops
            .into_iter()
            .chain(Activation::ALL.into_iter().map(Op::Activation));
        let nodes: Vec<Node> = ops
            .enumerate()
            .map(|(i, op)| Node {
                id: NodeId::from_index(i),
                op,
                inputs: (0..i.min(3)).map(NodeId::from_index).collect(),
                output_shape: shape,
            })
            .collect();
        let last = nodes.len() - 1;
        Network::from_raw_parts("kitchen-sink", nodes, NodeId::from_index(last))
    }

    fn all_requests() -> Vec<Request> {
        let net = kitchen_sink_network();
        vec![
            Request::Ping,
            Request::Stats,
            Request::Fit,
            Request::Shutdown,
            Request::Predict {
                device: "pixel-4".to_string(),
                network: net.clone(),
            },
            Request::PredictBatch {
                device: String::new(),
                networks: vec![net.clone(), net.clone()],
            },
            Request::PredictBatch {
                device: "empty-batch".to_string(),
                networks: vec![],
            },
            Request::PredictForNewDevice {
                signature_ms: vec![1.5, -0.0, f64::MAX, f64::MIN_POSITIVE],
                network: net.clone(),
            },
            Request::OnboardDevice {
                device: "héllo-wörld".to_string(),
                signature_ms: vec![],
            },
            Request::ReEnroll {
                device: "mate-30".to_string(),
                signature_ms: vec![0.25; 7],
            },
            Request::Contribute {
                device: "pixel-4".to_string(),
                network: net,
                latency_ms: 123.456_789_012_345_67,
            },
        ]
    }

    #[test]
    fn fast_encoding_is_byte_identical_to_generic() {
        for req in all_requests() {
            let generic = crate::protocol::wire::encode_value(&req).expect("generic encodes");
            let mut fast = Vec::new();
            append_request(&mut fast, &req);
            assert_eq!(fast, generic, "encoding diverged for {req:?}");
        }
    }

    #[test]
    fn fast_decoding_round_trips_every_variant() {
        for req in all_requests() {
            let mut bytes = Vec::new();
            append_request(&mut bytes, &req);
            let back = decode_request(&bytes).expect("decodes");
            assert_eq!(back, req);
        }
    }

    #[test]
    fn fast_frames_match_generic_frames() {
        for req in all_requests() {
            let mut generic = Vec::new();
            crate::protocol::wire::append_frame(&mut generic, 7_777, &req).expect("frames");
            let mut fast = Vec::new();
            append_request_frame(&mut fast, 7_777, &req).expect("frames");
            assert_eq!(fast, generic, "frame bytes diverged for {req:?}");
        }
    }

    #[test]
    fn reordered_maps_fall_back_to_the_generic_decoder() {
        // A valid encoding the strict parser does not recognize:
        // Predict's fields in swapped order. The generic decoder takes
        // fields by name, so this must still decode.
        let net = kitchen_sink_network();
        let mut bytes = Vec::new();
        put_map(&mut bytes, 1);
        put_key(&mut bytes, "Predict");
        put_map(&mut bytes, 2);
        put_key(&mut bytes, "network");
        put_network(&mut bytes, &net);
        put_key(&mut bytes, "device");
        put_str(&mut bytes, "pixel-4");
        match decode_request(&bytes).expect("fallback decodes") {
            Request::Predict { device, network } => {
                assert_eq!(device, "pixel-4");
                assert_eq!(network, net);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn garbage_and_truncation_report_generic_errors() {
        assert!(decode_request(&[0xff, 0xfe]).is_err());
        assert!(decode_request(&[]).is_err());
        let mut bytes = Vec::new();
        append_request(&mut bytes, &Request::Ping);
        bytes.push(0x00); // trailing byte
        assert!(decode_request(&bytes).is_err());
        let mut bytes = Vec::new();
        append_request(
            &mut bytes,
            &Request::Predict {
                device: "d".to_string(),
                network: kitchen_sink_network(),
            },
        );
        for cut in 0..bytes.len() {
            assert!(
                decode_request(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn probe_splits_predict_into_device_and_network_bytes() {
        let net = kitchen_sink_network();
        let mut payload = Vec::new();
        append_request(
            &mut payload,
            &Request::Predict {
                device: "pixel-4".to_string(),
                network: net.clone(),
            },
        );
        let (device, network_bytes) = probe_predict(&payload).expect("probes");
        assert_eq!(device, "pixel-4");
        let expected = crate::protocol::wire::encode_value(&net).expect("encodes");
        assert_eq!(network_bytes, &expected[..]);
        // Equal graphs hash equal; a different graph hashes different.
        let mut other = Vec::new();
        append_request(
            &mut other,
            &Request::Predict {
                device: "pixel-4".to_string(),
                network: Network::from_raw_parts("other", vec![], NodeId::from_index(0)),
            },
        );
        let (_, other_bytes) = probe_predict(&other).expect("probes");
        assert_eq!(wire_hash(network_bytes), wire_hash(&expected));
        assert_ne!(wire_hash(network_bytes), wire_hash(other_bytes));
    }

    #[test]
    fn probe_rejects_everything_that_is_not_a_canonical_predict() {
        let net = kitchen_sink_network();
        for req in all_requests() {
            if matches!(req, Request::Predict { .. }) {
                continue;
            }
            let mut payload = Vec::new();
            append_request(&mut payload, &req);
            assert!(
                probe_predict(&payload).is_none(),
                "probe must not match {req:?}"
            );
        }
        // Reordered fields are valid input but not canonical: the probe
        // must decline so the generic path (which accepts them) serves.
        let mut swapped = Vec::new();
        put_map(&mut swapped, 1);
        put_key(&mut swapped, "Predict");
        put_map(&mut swapped, 2);
        put_key(&mut swapped, "network");
        put_network(&mut swapped, &net);
        put_key(&mut swapped, "device");
        put_str(&mut swapped, "pixel-4");
        assert!(probe_predict(&swapped).is_none());
        assert!(probe_predict(&[]).is_none());
    }

    #[test]
    fn hostile_sequence_counts_cannot_drive_allocation() {
        // PredictBatch claiming u32::MAX networks with no bytes behind
        // it: both the strict parser and the fallback must refuse.
        let mut bytes = Vec::new();
        put_map(&mut bytes, 1);
        put_key(&mut bytes, "PredictBatch");
        put_map(&mut bytes, 2);
        put_key(&mut bytes, "device");
        put_str(&mut bytes, "d");
        put_key(&mut bytes, "networks");
        bytes.push(TAG_SEQ);
        crate::protocol::wire::write_varint(&mut bytes, u64::from(u32::MAX));
        assert!(decode_request(&bytes).is_err());
    }
}
