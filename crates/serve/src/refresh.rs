//! Streaming ingestion with durable logging and background model
//! refresh.
//!
//! [`IngestPipeline`] sits between the server's dispatch loop and the
//! [`ServingRepository`] for the three mutating requests (`contribute`,
//! `onboard_device`, `re_enroll`):
//!
//! 1. **Durability first.** When a write-ahead log is attached
//!    ([`IngestPipeline::with_wal`]), the mutation is appended and
//!    fsynced ([`crate::wal`]) *before* it is applied — an acknowledged
//!    mutation survives a crash and is replayed on the next startup.
//! 2. **Threshold-triggered refresh.** Contributions are counted; once
//!    `GDCM_SERVE_REFRESH_ROWS` new rows accumulate, the background
//!    refresher (spawned by the server when refresh is enabled) clones
//!    the training data under a brief read lock, trains *off-lock* —
//!    warm-starting from the previous model's trees so refit cost
//!    scales with the residual rounds, not total rounds
//!    ([`gdcm_ml::GbdtRegressor::warm_fit`]) — runs the same audit +
//!    flatcheck gate the snapshot loader applies, and only then
//!    atomically installs the new model
//!    ([`ServingRepository::install_refit`]). Readers never wait on a
//!    fit: the write guard is held for the pointer swap only.
//! 3. **Compaction.** After a successful swap the repository is
//!    re-snapshotted (atomically — [`crate::snapshot::save_repository`])
//!    and the WAL truncated, bounding replay work at the next startup.
//!
//! The epoch guard in [`ServingRepository`] is what makes the swap safe
//! for in-flight readers: any prediction computed against the old model
//! is discarded rather than cached stale.

use parking_lot::Mutex;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::serving::env_usize;
use crate::wal::{WalRecord, WriteAheadLog};
use crate::{snapshot, ServeError, ServingRepository};
use gdcm_dnn::Network;
use gdcm_ml::{BinnedMatrix, DenseMatrix, FrozenGbdt, GbdtRegressor};

/// Background-refresh configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefreshConfig {
    /// Contributions that trigger a background refit; 0 disables the
    /// refresher entirely.
    pub refresh_rows: usize,
    /// Boosting rounds to retrain on a warm-started refresh: the
    /// previous model's first `n_estimators - warm_boost` trees are
    /// reused and only `warm_boost` residual rounds are fitted. 0 means
    /// every refresh is a cold fit.
    pub warm_boost: usize,
}

/// Default residual rounds per warm refresh.
pub const DEFAULT_WARM_BOOST: usize = 8;

impl Default for RefreshConfig {
    fn default() -> Self {
        Self {
            refresh_rows: 0,
            warm_boost: DEFAULT_WARM_BOOST,
        }
    }
}

impl RefreshConfig {
    /// Reads `GDCM_SERVE_REFRESH_ROWS` (contribution threshold, 0 or
    /// unset disables) and `GDCM_SERVE_REFRESH_BOOST` (warm residual
    /// rounds). Unparsable values fall back with a structured warning,
    /// like every other `GDCM_SERVE_*` knob.
    pub fn from_env() -> Self {
        Self {
            refresh_rows: env_usize("GDCM_SERVE_REFRESH_ROWS", 0),
            warm_boost: env_usize("GDCM_SERVE_REFRESH_BOOST", DEFAULT_WARM_BOOST),
        }
    }
}

/// Durable ingestion + background-refresh controller over a
/// [`ServingRepository`].
#[derive(Debug)]
pub struct IngestPipeline<'a> {
    serving: &'a ServingRepository,
    /// The durability layer; `None` runs the pipeline in-memory (still
    /// counting toward the refresh threshold).
    wal: Option<Mutex<WriteAheadLog>>,
    /// Where compaction writes the post-refresh snapshot.
    snapshot_path: Option<PathBuf>,
    config: RefreshConfig,
    /// Contributions since the last completed refresh.
    pending_rows: Mutex<u64>,
    stop: AtomicBool,
    refreshes: AtomicU64,
    refreshes_rejected: AtomicU64,
}

impl<'a> IngestPipeline<'a> {
    /// An in-memory pipeline: no durability, but contributions still
    /// count toward the background-refresh threshold.
    pub fn new(serving: &'a ServingRepository, config: RefreshConfig) -> Self {
        Self {
            serving,
            wal: None,
            snapshot_path: None,
            config,
            pending_rows: Mutex::new(0),
            stop: AtomicBool::new(false),
            refreshes: AtomicU64::new(0),
            refreshes_rejected: AtomicU64::new(0),
        }
    }

    /// A durable pipeline: mutations are WAL-logged before they are
    /// applied, and each completed refresh compacts the log into a
    /// fresh snapshot at `snapshot_path`. The log should already have
    /// been opened (and its records replayed into `serving`'s
    /// repository) by the caller — see [`WriteAheadLog::open`].
    pub fn with_wal(
        serving: &'a ServingRepository,
        wal: WriteAheadLog,
        snapshot_path: &Path,
        config: RefreshConfig,
    ) -> Self {
        let mut pipeline = Self::new(serving, config);
        pipeline.wal = Some(Mutex::new(wal));
        pipeline.snapshot_path = Some(snapshot_path.to_path_buf());
        pipeline
    }

    /// Whether the background refresher should run at all.
    pub fn refresh_enabled(&self) -> bool {
        self.config.refresh_rows > 0
    }

    /// Completed background refreshes.
    pub fn refreshes(&self) -> u64 {
        self.refreshes.load(Ordering::Relaxed)
    }

    /// Refreshes rejected by the audit + flatcheck gate.
    pub fn refreshes_rejected(&self) -> u64 {
        self.refreshes_rejected.load(Ordering::Relaxed)
    }

    /// Contributions accumulated toward the next refresh.
    pub fn pending_rows(&self) -> u64 {
        *self.pending_rows.lock()
    }

    /// WAL records awaiting compaction (0 when no WAL is attached).
    pub fn wal_records(&self) -> u64 {
        self.wal.as_ref().map_or(0, |wal| wal.lock().pending())
    }

    /// Contributes one measurement durably: WAL append + fsync first,
    /// then apply, then count toward the refresh threshold.
    ///
    /// # Errors
    ///
    /// Propagates WAL I/O and repository validation errors. On an apply
    /// error the record is already durable; replay maps the repeated
    /// rejection to a skip.
    pub fn contribute(
        &self,
        device: &str,
        network: &Network,
        latency_ms: f64,
    ) -> Result<(), ServeError> {
        self.logged_apply(
            || WalRecord::Contribute {
                device: device.to_string(),
                network: network.clone(),
                latency_ms,
            },
            || self.serving.contribute(device, network, latency_ms),
        )?;
        self.note_contribution();
        Ok(())
    }

    /// Enrolls a device durably (see [`ServingRepository::onboard_device`]).
    ///
    /// # Errors
    ///
    /// Propagates WAL I/O and repository validation errors.
    pub fn onboard_device(&self, device: &str, signature_ms: &[f64]) -> Result<(), ServeError> {
        self.logged_apply(
            || WalRecord::Onboard {
                device: device.to_string(),
                signature_ms: signature_ms.to_vec(),
            },
            || self.serving.onboard_device(device, signature_ms),
        )
    }

    /// Updates a device signature durably (see
    /// [`ServingRepository::re_enroll`]).
    ///
    /// # Errors
    ///
    /// Propagates WAL I/O and repository validation errors.
    pub fn re_enroll(&self, device: &str, signature_ms: &[f64]) -> Result<(), ServeError> {
        self.logged_apply(
            || WalRecord::ReEnroll {
                device: device.to_string(),
                signature_ms: signature_ms.to_vec(),
            },
            || self.serving.re_enroll(device, signature_ms),
        )
    }

    /// Appends the record (when a WAL is attached) and applies the
    /// mutation, holding the WAL lock across both so the log order is
    /// the apply order — compaction must never snapshot a mutation the
    /// log believes is still pending.
    fn logged_apply(
        &self,
        record: impl FnOnce() -> WalRecord,
        apply: impl FnOnce() -> Result<(), ServeError>,
    ) -> Result<(), ServeError> {
        match &self.wal {
            None => apply(),
            Some(wal) => {
                let mut wal = wal.lock();
                wal.append(&record())?;
                apply()
            }
        }
    }

    /// Counts one contribution toward the refresh threshold.
    fn note_contribution(&self) {
        if !self.refresh_enabled() {
            return;
        }
        let mut pending = self.pending_rows.lock();
        *pending += 1;
        gdcm_obs::gauge("serve/refresh_pending_rows").set(*pending as f64);
    }

    /// Asks the refresher loop to exit after its current cycle.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// The background refresher loop: polls for the contribution
    /// threshold, then refits and swaps. Run on a dedicated thread by
    /// [`crate::server::serve_with_ingest`]. A gate-rejected refresh is
    /// logged and the loop keeps serving the old model. The poll
    /// interval (25 ms against an uncontended mutex) bounds refresh
    /// latency; the vendored `parking_lot` shim has no `Condvar`, and a
    /// refit takes orders of magnitude longer than a poll tick anyway.
    pub fn run(&self) {
        while !self.stop.load(Ordering::Acquire) {
            if *self.pending_rows.lock() < self.config.refresh_rows as u64 {
                std::thread::park_timeout(Duration::from_millis(25));
                continue;
            }
            match self.refresh_once() {
                Ok(_) => {}
                Err(e) => gdcm_obs::event(
                    "refresh_rejected",
                    "serve",
                    &[("error", gdcm_obs::FieldValue::Str(e.to_string()))],
                ),
            }
        }
    }

    /// One refresh cycle: clone the training state under a brief read
    /// lock, (warm-)fit off-lock, audit, swap, compact. Returns
    /// `Ok(false)` when there is not yet enough data to fit.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::AuditRejected`] when the refreshed model
    /// fails the audit + flatcheck gate (the old model keeps serving),
    /// and I/O errors from compaction.
    pub fn refresh_once(&self) -> Result<bool, ServeError> {
        let _span = gdcm_obs::span!("serve/refresh");
        let take = *self.pending_rows.lock();
        // Clone what training needs under the read lock; concurrent
        // readers share it, and the expensive work below runs off-lock.
        let (x_rows, y, gbdt, min_rows, prev) = self.serving.with_repository(|repo| {
            let (x_rows, y) = repo.training_data();
            (
                x_rows.to_vec(),
                y.to_vec(),
                repo.config().gbdt,
                repo.config().min_rows,
                repo.model().cloned(),
            )
        });
        if y.len() < min_rows {
            return Ok(false);
        }
        let started = Instant::now();
        let x = DenseMatrix::from_rows(&x_rows);
        // Warm-start only when the previous model is shaped like the
        // configured fit; any mismatch (hyper-parameter change, feature
        // width change after a signature-set change) falls back cold.
        let reuse = match &prev {
            Some(prev)
                if self.config.warm_boost > 0
                    && self.config.warm_boost < gbdt.n_estimators
                    && prev.n_trees() == gbdt.n_estimators
                    && prev.n_features() == x.n_cols() =>
            {
                gbdt.n_estimators - self.config.warm_boost
            }
            _ => 0,
        };
        let model = match (&prev, reuse) {
            (Some(prev), r) if r > 0 => GbdtRegressor::warm_fit(&x, &y, &gbdt, prev, r),
            _ => GbdtRegressor::fit(&x, &y, &gbdt),
        };
        let binned = BinnedMatrix::from_matrix(&x, gbdt.max_bins);
        let frozen = FrozenGbdt::freeze(&model, &binned)
            .expect("freshly fitted model freezes on its own training grid");
        // The same gate the snapshot loader runs: a refreshed model
        // must clear the audit + flatcheck passes *before* it swaps in.
        if let Err(e) =
            snapshot::audit_model_artifacts("serve/refresh", &model, &gbdt, &x, &y, Some(&frozen))
        {
            self.refreshes_rejected.fetch_add(1, Ordering::Relaxed);
            gdcm_obs::counter("serve/refreshes_rejected").incr();
            // Consume the pending count anyway: retrying the same rows
            // in a hot loop would reject the same way.
            let mut pending = self.pending_rows.lock();
            *pending = pending.saturating_sub(take);
            gdcm_obs::gauge("serve/refresh_pending_rows").set(*pending as f64);
            return Err(e);
        }
        let epoch = self.serving.install_refit(model, frozen)?;
        let fit_ms = started.elapsed().as_secs_f64() * 1e3;
        {
            let mut pending = self.pending_rows.lock();
            *pending = pending.saturating_sub(take);
            gdcm_obs::gauge("serve/refresh_pending_rows").set(*pending as f64);
        }
        self.refreshes.fetch_add(1, Ordering::Relaxed);
        gdcm_obs::counter("serve/refreshes").incr();
        gdcm_obs::histogram("serve/refresh_fit_ms").record(fit_ms);
        self.compact()?;
        gdcm_obs::event(
            "refresh_swapped",
            "serve",
            &[
                ("epoch", gdcm_obs::FieldValue::U64(epoch)),
                ("rows", gdcm_obs::FieldValue::U64(y.len() as u64)),
                ("reused_trees", gdcm_obs::FieldValue::U64(reuse as u64)),
                ("fit_ms", gdcm_obs::FieldValue::F64(fit_ms)),
            ],
        );
        Ok(true)
    }

    /// Folds the WAL into a fresh snapshot: save (atomic) then
    /// truncate, under the WAL lock so no concurrent mutation lands
    /// between the snapshot capture and the truncation.
    fn compact(&self) -> Result<(), ServeError> {
        let (Some(wal), Some(path)) = (&self.wal, &self.snapshot_path) else {
            return Ok(());
        };
        let mut wal = wal.lock();
        self.serving.save_snapshot(path)?;
        wal.compact()
    }
}
