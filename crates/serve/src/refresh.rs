//! Streaming ingestion with durable logging and background model
//! refresh.
//!
//! [`IngestPipeline`] sits between the server's dispatch loop and the
//! [`ServingRepository`] for the three mutating requests (`contribute`,
//! `onboard_device`, `re_enroll`):
//!
//! 1. **Durability first.** When a write-ahead log is attached
//!    ([`IngestPipeline::with_wal`]), the mutation is appended and
//!    fsynced ([`crate::wal`]) *before* it is applied — an acknowledged
//!    mutation survives a crash and is replayed on the next startup. A
//!    mutation the repository *rejects* is rolled back out of the log
//!    before the error returns, so rejected requests never accumulate
//!    as replay noise.
//! 2. **Threshold-triggered refresh.** Contributions are counted; once
//!    `GDCM_SERVE_REFRESH_ROWS` new rows accumulate, the background
//!    refresher (spawned by the server when refresh is enabled) clones
//!    the training data under a brief read lock, trains *off-lock* —
//!    warm-starting from the previous model's trees so refit cost
//!    scales with the residual rounds, not total rounds
//!    ([`gdcm_ml::GbdtRegressor::warm_fit`]) — runs the same audit +
//!    flatcheck gate the snapshot loader applies, and only then
//!    atomically installs the new model
//!    ([`ServingRepository::install_refit`]). Readers never wait on a
//!    fit: the write guard is held for the pointer swap only.
//! 3. **Compaction.** After a successful swap the repository is
//!    re-snapshotted (atomically — [`crate::snapshot::save_repository`])
//!    and the WAL truncated, bounding replay work at the next startup.
//!    Two paths keep the log bounded even without the contribution
//!    threshold: records recovered at open seed the refresh backlog,
//!    and once `wal_compact_records` accumulate the refresher runs a
//!    backstop cycle (compaction always rides a refit, because a
//!    snapshot whose model was fitted on fewer rows than it stores is
//!    rejected by the load-time flatcheck gate).
//!
//! The epoch guard in [`ServingRepository`] is what makes the swap safe
//! for in-flight readers: any prediction computed against the old model
//! is discarded rather than cached stale.

use parking_lot::Mutex;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::serving::env_usize;
use crate::wal::{WalRecord, WriteAheadLog};
use crate::{snapshot, ServeError, ServingRepository};
use gdcm_dnn::Network;
use gdcm_ml::{BinnedMatrix, DenseMatrix, FrozenGbdt, GbdtRegressor};

/// Background-refresh configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefreshConfig {
    /// Contributions that trigger a background refit; 0 disables the
    /// refresher entirely.
    pub refresh_rows: usize,
    /// Boosting rounds to retrain on a warm-started refresh: the
    /// previous model's first `n_estimators - warm_boost` trees are
    /// reused and only `warm_boost` residual rounds are fitted. 0 means
    /// every refresh is a cold fit.
    pub warm_boost: usize,
    /// WAL records that force a backstop refresh cycle (refit + swap +
    /// compact — a compacted snapshot's model must match its rows, so
    /// compaction always rides a refit) even when the contribution
    /// threshold is disabled or far away, bounding the log's replay
    /// cost. 0 disables the backstop.
    pub wal_compact_records: usize,
}

/// Default residual rounds per warm refresh.
pub const DEFAULT_WARM_BOOST: usize = 8;

/// Default WAL-record cap before an inline compaction.
pub const DEFAULT_WAL_COMPACT_RECORDS: usize = 1024;

impl Default for RefreshConfig {
    fn default() -> Self {
        Self {
            refresh_rows: 0,
            warm_boost: DEFAULT_WARM_BOOST,
            wal_compact_records: DEFAULT_WAL_COMPACT_RECORDS,
        }
    }
}

impl RefreshConfig {
    /// Reads `GDCM_SERVE_REFRESH_ROWS` (contribution threshold, 0 or
    /// unset disables), `GDCM_SERVE_REFRESH_BOOST` (warm residual
    /// rounds), and `GDCM_SERVE_WAL_COMPACT_RECORDS` (inline-compaction
    /// backstop, 0 disables). Unparsable values fall back with a
    /// structured warning, like every other `GDCM_SERVE_*` knob.
    pub fn from_env() -> Self {
        Self {
            refresh_rows: env_usize("GDCM_SERVE_REFRESH_ROWS", 0),
            warm_boost: env_usize("GDCM_SERVE_REFRESH_BOOST", DEFAULT_WARM_BOOST),
            wal_compact_records: env_usize(
                "GDCM_SERVE_WAL_COMPACT_RECORDS",
                DEFAULT_WAL_COMPACT_RECORDS,
            ),
        }
    }
}

/// Durable ingestion + background-refresh controller over a
/// [`ServingRepository`].
#[derive(Debug)]
pub struct IngestPipeline<'a> {
    serving: &'a ServingRepository,
    /// The durability layer; `None` runs the pipeline in-memory (still
    /// counting toward the refresh threshold).
    wal: Option<Mutex<WriteAheadLog>>,
    /// Where compaction writes the post-refresh snapshot.
    snapshot_path: Option<PathBuf>,
    config: RefreshConfig,
    /// Contributions since the last completed refresh.
    pending_rows: Mutex<u64>,
    /// WAL record count at the last backstop-triggered cycle that did
    /// not compact (rejected or data-starved); the backstop re-arms
    /// only once the log grows past it, so a persistently failing
    /// refit cannot hot-loop.
    wal_backstop_mark: AtomicU64,
    /// Set when a refresh swapped but compaction was deferred because a
    /// mutation raced the swap; the refresher follows up with another
    /// cycle (which refits over the new state) instead of leaving the
    /// log to the record-cap backstop.
    compact_pending: AtomicBool,
    stop: AtomicBool,
    refreshes: AtomicU64,
    refreshes_rejected: AtomicU64,
}

impl<'a> IngestPipeline<'a> {
    /// An in-memory pipeline: no durability, but contributions still
    /// count toward the background-refresh threshold.
    pub fn new(serving: &'a ServingRepository, config: RefreshConfig) -> Self {
        Self {
            serving,
            wal: None,
            snapshot_path: None,
            config,
            pending_rows: Mutex::new(0),
            wal_backstop_mark: AtomicU64::new(0),
            compact_pending: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            refreshes: AtomicU64::new(0),
            refreshes_rejected: AtomicU64::new(0),
        }
    }

    /// A durable pipeline: mutations are WAL-logged before they are
    /// applied, and each completed refresh compacts the log into a
    /// fresh snapshot at `snapshot_path`. The log should already have
    /// been opened (and its records replayed into `serving`'s
    /// repository) by the caller — see [`WriteAheadLog::open`].
    ///
    /// Records recovered at open seed the refresh backlog: a crash
    /// backlog counts toward the threshold immediately, so the next
    /// refresh folds it into a snapshot instead of leaving it to be
    /// replayed on every start until enough *new* contributions arrive.
    pub fn with_wal(
        serving: &'a ServingRepository,
        wal: WriteAheadLog,
        snapshot_path: &Path,
        config: RefreshConfig,
    ) -> Self {
        let mut pipeline = Self::new(serving, config);
        let recovered = wal.pending();
        pipeline.wal = Some(Mutex::new(wal));
        pipeline.snapshot_path = Some(snapshot_path.to_path_buf());
        if pipeline.refresh_enabled() && recovered > 0 {
            let mut pending = pipeline.pending_rows.lock();
            *pending = recovered;
            gdcm_obs::gauge("serve/refresh_pending_rows").set(*pending as f64);
        }
        pipeline
    }

    /// Whether the background refresher should run at all.
    pub fn refresh_enabled(&self) -> bool {
        self.config.refresh_rows > 0
    }

    /// Whether the server must spawn the refresher thread: either the
    /// contribution threshold is active, or a WAL with a record-cap
    /// backstop needs the thread to bound the log.
    pub fn refresher_needed(&self) -> bool {
        self.refresh_enabled() || (self.wal.is_some() && self.config.wal_compact_records > 0)
    }

    /// Whether a refresh cycle is due right now: the contribution
    /// threshold is crossed, the WAL has grown past its record-cap
    /// backstop, or a deferred compaction needs a follow-up cycle. The
    /// latter two are gated on the log having grown past the mark of
    /// the last cycle that failed to compact, so failures re-arm on
    /// growth instead of hot-looping.
    pub fn refresh_due(&self) -> bool {
        if self.refresh_enabled() && *self.pending_rows.lock() >= self.config.refresh_rows as u64 {
            return true;
        }
        let records = self.wal_records();
        if records == 0 {
            return false;
        }
        let cap = self.config.wal_compact_records as u64;
        let over_cap = cap > 0 && records >= cap;
        (over_cap || self.compact_pending.load(Ordering::Acquire))
            && records > self.wal_backstop_mark.load(Ordering::Acquire)
    }

    /// Completed background refreshes.
    pub fn refreshes(&self) -> u64 {
        self.refreshes.load(Ordering::Relaxed)
    }

    /// Refreshes rejected by the audit + flatcheck gate.
    pub fn refreshes_rejected(&self) -> u64 {
        self.refreshes_rejected.load(Ordering::Relaxed)
    }

    /// Contributions accumulated toward the next refresh.
    pub fn pending_rows(&self) -> u64 {
        *self.pending_rows.lock()
    }

    /// WAL records awaiting compaction (0 when no WAL is attached).
    pub fn wal_records(&self) -> u64 {
        self.wal.as_ref().map_or(0, |wal| wal.lock().pending())
    }

    /// Contributes one measurement durably: WAL append + fsync first,
    /// then apply, then count toward the refresh threshold.
    ///
    /// # Errors
    ///
    /// Propagates WAL I/O and repository validation errors. On an apply
    /// error the just-appended record is rolled back out of the log.
    pub fn contribute(
        &self,
        device: &str,
        network: &Network,
        latency_ms: f64,
    ) -> Result<(), ServeError> {
        self.logged_apply(
            || WalRecord::Contribute {
                device: device.to_string(),
                network: network.clone(),
                latency_ms,
            },
            || self.serving.contribute(device, network, latency_ms),
        )?;
        self.note_contribution();
        Ok(())
    }

    /// Enrolls a device durably (see [`ServingRepository::onboard_device`]).
    ///
    /// # Errors
    ///
    /// Propagates WAL I/O and repository validation errors.
    pub fn onboard_device(&self, device: &str, signature_ms: &[f64]) -> Result<(), ServeError> {
        self.logged_apply(
            || WalRecord::Onboard {
                device: device.to_string(),
                signature_ms: signature_ms.to_vec(),
            },
            || self.serving.onboard_device(device, signature_ms),
        )
    }

    /// Updates a device signature durably (see
    /// [`ServingRepository::re_enroll`]).
    ///
    /// # Errors
    ///
    /// Propagates WAL I/O and repository validation errors.
    pub fn re_enroll(&self, device: &str, signature_ms: &[f64]) -> Result<(), ServeError> {
        self.logged_apply(
            || WalRecord::ReEnroll {
                device: device.to_string(),
                signature_ms: signature_ms.to_vec(),
            },
            || self.serving.re_enroll(device, signature_ms),
        )
    }

    /// Appends the record (when a WAL is attached) and applies the
    /// mutation, holding the WAL lock across both so the log order is
    /// the apply order — compaction must never snapshot a mutation the
    /// log believes is still pending.
    ///
    /// A mutation the repository rejects is rolled back out of the log
    /// while the lock is still held: nothing was acknowledged, and a
    /// rejected record left durable would be replayed (and re-rejected,
    /// then skipped) on every subsequent startup. If the rollback
    /// itself fails the record stays put — replay's skip-and-warn path
    /// ([`crate::wal::replay_record`]) makes that harmless.
    fn logged_apply(
        &self,
        record: impl FnOnce() -> WalRecord,
        apply: impl FnOnce() -> Result<(), ServeError>,
    ) -> Result<(), ServeError> {
        match &self.wal {
            None => apply(),
            Some(wal) => {
                let mut wal = wal.lock();
                let mark = wal.mark();
                wal.append(&record())?;
                if let Err(e) = apply() {
                    if let Err(rollback) = wal.rollback_to(mark) {
                        gdcm_obs::event(
                            "wal_rollback_failed",
                            "serve",
                            &[("error", gdcm_obs::FieldValue::Str(rollback.to_string()))],
                        );
                    }
                    return Err(e);
                }
                Ok(())
            }
        }
    }

    /// Counts one contribution toward the refresh threshold.
    fn note_contribution(&self) {
        if !self.refresh_enabled() {
            return;
        }
        let mut pending = self.pending_rows.lock();
        *pending += 1;
        gdcm_obs::gauge("serve/refresh_pending_rows").set(*pending as f64);
    }

    /// Asks the refresher loop to exit after its current cycle.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// The background refresher loop: polls [`Self::refresh_due`] (the
    /// contribution threshold or the WAL record-cap backstop), then
    /// refits and swaps. Run on a dedicated thread by
    /// [`crate::server::serve_with_ingest`]. A gate-rejected refresh is
    /// logged and the loop keeps serving the old model. The poll
    /// interval (25 ms against an uncontended mutex) bounds refresh
    /// latency; the vendored `parking_lot` shim has no `Condvar`, and a
    /// refit takes orders of magnitude longer than a poll tick anyway.
    pub fn run(&self) {
        while !self.stop.load(Ordering::Acquire) {
            if !self.refresh_due() {
                std::thread::park_timeout(Duration::from_millis(25));
                continue;
            }
            let outcome = self.refresh_once();
            match &outcome {
                Ok(true) => {}
                Ok(false) => {
                    // Not enough rows to fit yet. An *unfitted*
                    // repository can still compact (a model-less
                    // snapshot loads without an audit gate), so a
                    // backstop-sized backlog of onboards does not sit
                    // in the log forever.
                    self.compact_unfitted_backlog();
                }
                Err(e) => gdcm_obs::event(
                    "refresh_rejected",
                    "serve",
                    &[("error", gdcm_obs::FieldValue::Str(e.to_string()))],
                ),
            }
            // A completed cycle resets the backstop; a failed one
            // re-arms it only once the log grows past where it stands
            // now, so a persistently failing refit cannot hot-loop.
            let mark = match outcome {
                Ok(true) => 0,
                _ => self.wal_records(),
            };
            self.wal_backstop_mark.store(mark, Ordering::Release);
        }
    }

    /// One refresh cycle: clone the training state under a brief read
    /// lock, (warm-)fit off-lock, audit, swap, compact. Returns
    /// `Ok(false)` when there is not yet enough data to fit.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::AuditRejected`] when the refreshed model
    /// fails the audit + flatcheck gate (the old model keeps serving),
    /// and I/O errors from compaction.
    pub fn refresh_once(&self) -> Result<bool, ServeError> {
        let _span = gdcm_obs::span!("serve/refresh");
        let take = *self.pending_rows.lock();
        // Clone what training needs under the read lock; concurrent
        // readers share it, and the expensive work below runs off-lock.
        let (x_rows, y, gbdt, min_rows, prev) = self.serving.with_repository(|repo| {
            let (x_rows, y) = repo.training_data();
            (
                x_rows.to_vec(),
                y.to_vec(),
                repo.config().gbdt,
                repo.config().min_rows,
                repo.model().cloned(),
            )
        });
        if y.len() < min_rows {
            return Ok(false);
        }
        let started = Instant::now();
        let x = DenseMatrix::from_rows(&x_rows);
        // Warm-start only when the previous model is shaped like the
        // configured fit; any mismatch (hyper-parameter change, feature
        // width change after a signature-set change) falls back cold.
        let reuse = match &prev {
            Some(prev)
                if self.config.warm_boost > 0
                    && self.config.warm_boost < gbdt.n_estimators
                    && prev.n_trees() == gbdt.n_estimators
                    && prev.n_features() == x.n_cols() =>
            {
                gbdt.n_estimators - self.config.warm_boost
            }
            _ => 0,
        };
        let model = match (&prev, reuse) {
            (Some(prev), r) if r > 0 => GbdtRegressor::warm_fit(&x, &y, &gbdt, prev, r),
            _ => GbdtRegressor::fit(&x, &y, &gbdt),
        };
        let binned = BinnedMatrix::from_matrix(&x, gbdt.max_bins);
        // A freeze failure is handled exactly like an audit rejection —
        // count it, consume the pending rows, keep serving the old
        // model — rather than panicking the refresher thread (which
        // would propagate at scope join and take the server down).
        let frozen = match FrozenGbdt::freeze(&model, &binned) {
            Ok(frozen) => frozen,
            Err(e) => {
                return Err(self.reject_refresh(
                    take,
                    ServeError::AuditRejected {
                        diagnostics: vec![format!("freeze: {e}")],
                    },
                ));
            }
        };
        // The same gate the snapshot loader runs: a refreshed model
        // must clear the audit + flatcheck passes *before* it swaps in.
        if let Err(e) =
            snapshot::audit_model_artifacts("serve/refresh", &model, &gbdt, &x, &y, Some(&frozen))
        {
            return Err(self.reject_refresh(take, e));
        }
        let epoch = self.serving.install_refit(model, frozen)?;
        let fit_ms = started.elapsed().as_secs_f64() * 1e3;
        {
            let mut pending = self.pending_rows.lock();
            *pending = pending.saturating_sub(take);
            gdcm_obs::gauge("serve/refresh_pending_rows").set(*pending as f64);
        }
        self.refreshes.fetch_add(1, Ordering::Relaxed);
        gdcm_obs::counter("serve/refreshes").incr();
        gdcm_obs::histogram("serve/refresh_fit_ms").record(fit_ms);
        self.compact_consistent(y.len(), epoch)?;
        gdcm_obs::event(
            "refresh_swapped",
            "serve",
            &[
                ("epoch", gdcm_obs::FieldValue::U64(epoch)),
                ("rows", gdcm_obs::FieldValue::U64(y.len() as u64)),
                ("reused_trees", gdcm_obs::FieldValue::U64(reuse as u64)),
                ("fit_ms", gdcm_obs::FieldValue::F64(fit_ms)),
            ],
        );
        Ok(true)
    }

    /// Bookkeeping for a refresh the gate (audit, flatcheck, or freeze)
    /// refused: count the rejection and consume the pending rows —
    /// retrying the same rows in a hot loop would reject the same way.
    /// Returns `error` back for propagation.
    fn reject_refresh(&self, take: u64, error: ServeError) -> ServeError {
        self.refreshes_rejected.fetch_add(1, Ordering::Relaxed);
        gdcm_obs::counter("serve/refreshes_rejected").incr();
        let mut pending = self.pending_rows.lock();
        *pending = pending.saturating_sub(take);
        gdcm_obs::gauge("serve/refresh_pending_rows").set(*pending as f64);
        error
    }

    /// Fits the repository's model on demand (see
    /// [`ServingRepository::fit`]), then folds the result into a fresh
    /// snapshot. The WAL records rows, not models, so without the
    /// compaction an acknowledged fit would silently revert to the
    /// snapshot's model on crash-and-replay. The WAL lock is held
    /// across fit + compact: every pipeline mutation also applies under
    /// it, so the snapshot captures exactly the state the fit trained
    /// on. A compaction failure is logged rather than returned: the fit
    /// is applied and serving, and its durability catches up at the
    /// next successful compaction.
    ///
    /// # Errors
    ///
    /// Propagates repository fit errors (e.g. not enough data).
    pub fn fit(&self) -> Result<(), ServeError> {
        let Some(wal) = &self.wal else {
            return self.serving.fit();
        };
        let mut wal = wal.lock();
        self.serving.fit()?;
        if let Err(e) = self.compact_locked(&mut wal) {
            gdcm_obs::event(
                "fit_snapshot_failed",
                "serve",
                &[("error", gdcm_obs::FieldValue::Str(e.to_string()))],
            );
        }
        Ok(())
    }

    /// Folds the WAL into a fresh snapshot — save (atomic) then
    /// truncate, under the WAL lock so no concurrent mutation lands
    /// between the snapshot capture and the truncation — but only if
    /// the repository still matches the state the refreshed model was
    /// trained on (`rows` rows, model epoch `epoch`). A mutation that
    /// landed between the model install and this lock acquisition would
    /// make the snapshot's model stale against its rows — exactly the
    /// mismatch the load-time flatcheck gate rejects — so compaction is
    /// deferred to the next cycle instead, which refits over the new
    /// state. (Device onboards don't invalidate the model, but they
    /// also apply under the WAL lock, so deferring on any drift is
    /// simplest and costs one extra cycle at worst.)
    fn compact_consistent(&self, rows: usize, epoch: u64) -> Result<(), ServeError> {
        let Some(wal) = &self.wal else {
            return Ok(());
        };
        let mut wal = wal.lock();
        let current = self
            .serving
            .with_repository(|repo| (repo.n_rows(), repo.model_epoch()));
        if current != (rows, epoch) {
            self.compact_pending.store(true, Ordering::Release);
            gdcm_obs::counter("serve/compactions_deferred").incr();
            gdcm_obs::event(
                "compaction_deferred",
                "serve",
                &[
                    ("trained_rows", gdcm_obs::FieldValue::U64(rows as u64)),
                    ("rows", gdcm_obs::FieldValue::U64(current.0 as u64)),
                ],
            );
            return Ok(());
        }
        self.compact_locked(&mut wal)
    }

    /// An unfitted repository has no model for a snapshot to disagree
    /// with, so a backstop-sized backlog (e.g. onboards before the row
    /// minimum is met) can compact without a refit. No-op when the
    /// repository is fitted or the backlog is under the cap.
    fn compact_unfitted_backlog(&self) {
        let Some(wal) = &self.wal else { return };
        let cap = self.config.wal_compact_records as u64;
        if cap == 0 {
            return;
        }
        let mut wal = wal.lock();
        if wal.pending() < cap || self.serving.with_repository(|repo| repo.is_fitted()) {
            return;
        }
        if let Err(e) = self.compact_locked(&mut wal) {
            gdcm_obs::event(
                "backstop_compact_failed",
                "serve",
                &[("error", gdcm_obs::FieldValue::Str(e.to_string()))],
            );
        }
    }

    /// Snapshot + truncate with the WAL lock already held.
    fn compact_locked(&self, wal: &mut WriteAheadLog) -> Result<(), ServeError> {
        let Some(path) = &self.snapshot_path else {
            return Ok(());
        };
        self.serving.save_snapshot(path)?;
        wal.compact()?;
        self.compact_pending.store(false, Ordering::Release);
        Ok(())
    }
}
