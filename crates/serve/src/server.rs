//! The TCP server: a non-blocking readiness loop with per-connection
//! state machines, dual-protocol framing, and graceful shutdown.
//!
//! Safe Rust only, on `std::net`. There is no `poll(2)` in safe std, so
//! readiness is emulated the portable way: every socket is switched to
//! non-blocking mode and a small set of event-loop *shards* sweeps its
//! connections — read until `WouldBlock`, process every complete
//! request buffered so far, flush until `WouldBlock` — backing off to
//! `yield_now` and then `park_timeout` only when a full sweep makes no
//! progress. The accept loop runs shard 0 on the calling thread; the
//! `gdcm-par` budget (`GDCM_THREADS`) sizes additional shard threads,
//! with accepted connections dealt round-robin:
//!
//! * budget 1 — one shard, on the accept thread: the exact serial
//!   path (mirroring `gdcm-par`'s own serial short-circuit).
//! * budget N>1 — N shards; each connection lives on one shard for its
//!   whole life, so request handling needs no cross-thread locking and
//!   `reqtrace`'s thread-local spans stay coherent.
//!
//! ## Two protocols, one listener
//!
//! The first byte of each connection selects its protocol
//! ([`crate::protocol::wire`] documents the framing):
//!
//! * `0x00` — the binary preamble; the connection speaks length-
//!   prefixed binary frames and may *pipeline*: any number of requests
//!   in flight, each response tagged with its request id. Requests on
//!   one connection are processed in order, so response *values* are
//!   bit-identical to sending the same requests sequentially.
//! * anything else — the legacy newline-JSON protocol, byte-for-byte
//!   compatible with every old client. Its per-connection read buffer
//!   and the shard's serialize buffer are reused across requests
//!   instead of allocating per line.
//!
//! ## Shutdown
//!
//! `Shutdown` is still the SIGTERM-equivalent drain: the stop flag
//! flips, the accept loop stops accepting and closes the shard
//! channels, and every shard keeps sweeping until its remaining
//! connections disconnect. Nothing is aborted mid-request and every
//! buffered response is flushed.
//!
//! Instrumentation: `serve/requests` / `serve/request_errors` counters,
//! a `serve/request_ms` latency histogram, and a
//! `serve/open_connections` gauge — always on (registry writes, not
//! event emission).
//!
//! Live telemetry is opt-in via [`serve_with_ops`]: handing the server
//! a second listener starts the [`crate::ops`] endpoint and turns on
//! per-request recording — stage spans (`read`/`parse`/`cache_lookup`/
//! `predict`/`serialize`/`write`) through `gdcm_obs::reqtrace`,
//! windowed qps/latency/error/cache counters, and slow-log admission.
//! Without an ops listener none of that code runs: the request loop
//! checks one plain `bool` and the hot path stays byte-for-byte the
//! uninstrumented one (`bench_serve` asserts the enabled cost too).
//! In the event-driven loop the `read` stage spans from the previous
//! request's completion to this request's dispatch (client idle time
//! included, as before), and the `write` stage measures enqueue into
//! the connection's output buffer — the socket write itself is batched
//! across pipelined responses.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::time::{Duration, Instant};

use crate::protocol::wire;
use crate::protocol::{
    codes, request_label, Request, RequestEnvelope, Response, ResponseEnvelope, TraceIdProbe,
};
use crate::refresh::IngestPipeline;
use crate::serving::{CacheStats, ServingRepository};

/// Server configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Event-loop shards. 1 sweeps every connection on the accept
    /// thread. Defaults to the `gdcm-par` thread budget.
    pub workers: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: gdcm_par::threads().max(1),
        }
    }
}

/// What the server did before it stopped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerSummary {
    /// Connections accepted and handled.
    pub connections: u64,
    /// Requests answered (errors included).
    pub requests: u64,
    /// Requests answered with [`Response::Error`].
    pub request_errors: u64,
}

/// Shared per-server state (also read by the [`crate::ops`] endpoint).
pub(crate) struct ServerShared<'a> {
    pub(crate) serving: &'a ServingRepository,
    /// Streaming-ingestion pipeline; when present, the mutating
    /// requests route through it (WAL-then-apply) instead of hitting
    /// the serving façade directly.
    pub(crate) ingest: Option<&'a IngestPipeline<'a>>,
    pub(crate) stop: AtomicBool,
    pub(crate) requests: AtomicU64,
    pub(crate) request_errors: AtomicU64,
    pub(crate) connections: AtomicU64,
    open_connections: AtomicI64,
    /// Whether per-request telemetry (traces, windowed metrics, slow
    /// log) records. True exactly when an ops listener is attached.
    pub(crate) telemetry: bool,
    /// Flipped by the ops `quiesce` verb; reported by `health`.
    pub(crate) draining: AtomicBool,
    /// Tells the ops accept loop to exit.
    pub(crate) ops_stop: AtomicBool,
    ops_addr: Option<SocketAddr>,
    /// Server start, for uptime reporting.
    pub(crate) started: Instant,
    pub(crate) workers: usize,
}

impl ServerShared<'_> {
    /// A shared-state block for the socket-free harness
    /// ([`crate::harness`]): same counters and flags as a live server,
    /// no listeners attached.
    pub(crate) fn for_harness(serving: &ServingRepository) -> ServerShared<'_> {
        ServerShared {
            serving,
            ingest: None,
            stop: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            request_errors: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            open_connections: AtomicI64::new(0),
            telemetry: false,
            draining: AtomicBool::new(false),
            ops_stop: AtomicBool::new(false),
            ops_addr: None,
            started: Instant::now(),
            workers: 1,
        }
    }

    /// Flags shutdown; the non-blocking accept loop observes it within
    /// one park interval without needing a wake-up connection.
    fn trigger_shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// The ops accept loop *does* block, so it still gets the classic
    /// wake-up-connection poke.
    fn trigger_ops_shutdown(&self) {
        if let Some(addr) = self.ops_addr {
            if !self.ops_stop.swap(true, Ordering::SeqCst) {
                let _ = TcpStream::connect(addr);
            }
        }
    }

    fn track_open(&self, delta: i64) {
        let open = self.open_connections.fetch_add(delta, Ordering::SeqCst) + delta;
        gdcm_obs::gauge("serve/open_connections").set(open as f64);
    }
}

/// Bytes read from a socket per `read` call.
pub(crate) const READ_CHUNK: usize = 64 * 1024;
/// Bytes read from one connection per sweep before yielding to its
/// shard neighbours.
const READ_BURST: usize = 256 * 1024;
/// Unprocessed input cap per connection; a legacy line (or frame
/// backlog) larger than this drops the connection.
pub(crate) const MAX_BUFFERED_INPUT: usize = 64 * 1024 * 1024;
/// Pending-output level above which a connection stops consuming new
/// requests until the peer drains responses (pipelining backpressure).
pub(crate) const WRITE_HIGH_WATER: usize = 1024 * 1024;
/// No-progress sweeps spent on `yield_now` before parking.
const SPIN_SWEEPS: u32 = 128;
/// First and largest park interval once a shard goes idle.
const PARK_MIN: Duration = Duration::from_micros(100);
const PARK_MAX: Duration = Duration::from_millis(2);

/// Runs the server until a client sends [`Request::Shutdown`]. Returns
/// the traffic summary after a graceful drain.
///
/// # Errors
///
/// Propagates listener failures (bind errors surface earlier, at
/// `TcpListener::bind`; accept errors on a healthy listener are
/// per-connection and logged, not fatal).
pub fn serve(
    listener: TcpListener,
    serving: &ServingRepository,
    config: ServerConfig,
) -> std::io::Result<ServerSummary> {
    serve_with_ops(listener, None, serving, config)
}

/// Like [`serve`], with an optional second listener for the
/// [`crate::ops`] endpoint (`health` / `metrics` / `slowlog` /
/// `quiesce`). Attaching one also enables per-request telemetry:
/// request-trace stage spans, windowed metrics, and the slow log. The
/// ops listener stops when the main server does.
///
/// # Errors
///
/// Same contract as [`serve`].
pub fn serve_with_ops(
    listener: TcpListener,
    ops_listener: Option<TcpListener>,
    serving: &ServingRepository,
    config: ServerConfig,
) -> std::io::Result<ServerSummary> {
    serve_with_ingest(listener, ops_listener, serving, None, config)
}

/// Like [`serve_with_ops`], with an optional streaming-ingestion
/// pipeline ([`IngestPipeline`]). When present, the mutating requests
/// (`contribute` / `onboard_device` / `re_enroll`) are WAL-logged
/// before they are applied, and — when the pipeline's refresh threshold
/// is enabled — a dedicated background thread refits and atomically
/// swaps the model as contributions accumulate, compacting the log
/// afterwards. The refresher is stopped and joined before this returns.
///
/// # Errors
///
/// Same contract as [`serve`].
pub fn serve_with_ingest(
    listener: TcpListener,
    ops_listener: Option<TcpListener>,
    serving: &ServingRepository,
    ingest: Option<&IngestPipeline<'_>>,
    config: ServerConfig,
) -> std::io::Result<ServerSummary> {
    let _span = gdcm_obs::span!("serve/server");
    listener.set_nonblocking(true)?;
    let ops_addr = match &ops_listener {
        Some(l) => Some(l.local_addr()?),
        None => None,
    };
    let workers = config.workers.max(1);
    let shared = ServerShared {
        serving,
        ingest,
        stop: AtomicBool::new(false),
        requests: AtomicU64::new(0),
        request_errors: AtomicU64::new(0),
        connections: AtomicU64::new(0),
        open_connections: AtomicI64::new(0),
        telemetry: ops_addr.is_some(),
        draining: AtomicBool::new(false),
        ops_stop: AtomicBool::new(false),
        ops_addr,
        started: Instant::now(),
        workers,
    };
    gdcm_obs::gauge("serve/workers").set(workers as f64);

    let shared = &shared;
    std::thread::scope(|outer| {
        let ops_handle =
            ops_listener.map(|ops| outer.spawn(move || crate::ops::run_ops(ops, shared)));
        let refresher = ingest
            .filter(|p| p.refresher_needed())
            .map(|p| outer.spawn(move || p.run()));

        // Shards 1.. run on their own threads; shard 0 shares the
        // accept thread so `workers == 1` spawns nothing.
        let mut senders: Vec<Sender<TcpStream>> = Vec::with_capacity(workers - 1);
        let mut shard_handles = Vec::with_capacity(workers - 1);
        for _ in 1..workers {
            let (tx, rx) = channel::<TcpStream>();
            senders.push(tx);
            shard_handles.push(outer.spawn(move || shard_loop(shared, &rx)));
        }
        accept_loop(shared, &listener, senders);
        for handle in shard_handles {
            // Shard closures don't panic; join errors would only
            // reflect a panic escaping the request path's catch-all.
            let _ = handle.join();
        }

        // Request traffic has drained: stop the refresher (mid-refresh
        // work completes — the swap and compaction are not torn), then
        // the ops endpoint.
        if let Some(handle) = refresher {
            if let Some(p) = ingest {
                p.stop();
            }
            let _ = handle.join();
        }
        shared.trigger_ops_shutdown();
        if let Some(handle) = ops_handle {
            let _ = handle.join();
        }
    });

    Ok(ServerSummary {
        connections: shared.connections.load(Ordering::SeqCst),
        requests: shared.requests.load(Ordering::SeqCst),
        request_errors: shared.request_errors.load(Ordering::SeqCst),
    })
}

/// Shard 0 + accept duty: polls the listener, deals connections round-
/// robin across shards (itself included), sweeps its own connections,
/// and on stop closes the shard channels and drains its share.
fn accept_loop(
    shared: &ServerShared<'_>,
    listener: &TcpListener,
    mut senders: Vec<Sender<TcpStream>>,
) {
    let slots = senders.len() + 1;
    let mut rr = 0usize;
    let mut conns: Vec<Conn> = Vec::new();
    let mut scratch = Scratch::new();
    let mut idle: u32 = 0;
    let mut park = PARK_MIN;
    loop {
        let mut progress = false;
        let stopped = shared.stop.load(Ordering::SeqCst);
        if stopped {
            // Channel close is the drain signal the other shards exit on.
            senders.clear();
        } else {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        shared.connections.fetch_add(1, Ordering::SeqCst);
                        progress = true;
                        let slot = rr % slots;
                        rr = rr.wrapping_add(1);
                        if slot == 0 {
                            conns.push(Conn::new(shared, stream));
                        } else {
                            match senders[slot - 1].send(stream) {
                                Ok(()) => {}
                                // Unreachable: shards outlive the senders.
                                Err(back) => conns.push(Conn::new(shared, back.0)),
                            }
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(e) => {
                        gdcm_obs::event(
                            "accept_error",
                            "serve",
                            &[("error", gdcm_obs::FieldValue::Str(e.to_string()))],
                        );
                        break;
                    }
                }
            }
        }
        progress |= sweep(shared, &mut conns, &mut scratch);
        if stopped && conns.is_empty() {
            return;
        }
        back_off(progress, &mut idle, &mut park);
    }
}

/// A spawned shard: sweeps connections handed over the channel until
/// the channel closes *and* every connection has drained.
fn shard_loop(shared: &ServerShared<'_>, rx: &Receiver<TcpStream>) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut scratch = Scratch::new();
    let mut idle: u32 = 0;
    let mut park = PARK_MIN;
    loop {
        let mut progress = false;
        let mut closed = false;
        loop {
            match rx.try_recv() {
                Ok(stream) => {
                    conns.push(Conn::new(shared, stream));
                    progress = true;
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    closed = true;
                    break;
                }
            }
        }
        progress |= sweep(shared, &mut conns, &mut scratch);
        if closed && conns.is_empty() {
            return;
        }
        back_off(progress, &mut idle, &mut park);
    }
}

/// Pumps every connection once and reaps the finished ones.
fn sweep(shared: &ServerShared<'_>, conns: &mut Vec<Conn>, scratch: &mut Scratch) -> bool {
    let mut progress = false;
    for conn in conns.iter_mut() {
        progress |= conn.pump(shared, scratch);
    }
    let before = conns.len();
    conns.retain(|c| !c.dead);
    let reaped = before - conns.len();
    if reaped > 0 {
        #[allow(clippy::cast_possible_wrap)]
        shared.track_open(-(reaped as i64));
        progress = true;
    }
    progress
}

/// Idle strategy: stay hot through `yield_now` while traffic looks
/// imminent, then park with exponential backoff up to [`PARK_MAX`] so
/// a quiet server costs ~no CPU but still notices the stop flag fast.
fn back_off(progress: bool, idle: &mut u32, park: &mut Duration) {
    if progress {
        *idle = 0;
        *park = PARK_MIN;
    } else {
        *idle = idle.saturating_add(1);
        if *idle <= SPIN_SWEEPS {
            std::thread::yield_now();
        } else {
            std::thread::park_timeout(*park);
            *park = (*park * 2).min(PARK_MAX);
        }
    }
}

/// The byte-stream seam under a connection's state machine. Production
/// connections run on [`TcpStream`]; the conformance harness
/// ([`crate::harness`]) substitutes a scripted in-memory transport so
/// the exact same `Conn` code can be model-checked without sockets.
///
/// Both calls follow non-blocking socket semantics: `Ok(0)` on read
/// means EOF, [`ErrorKind::WouldBlock`] means "nothing right now".
pub(crate) trait Transport {
    /// Reads available bytes into `buf`.
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize>;
    /// Writes as much of `buf` as the peer accepts right now.
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize>;
    /// One-time socket setup on connection registration. The default
    /// does nothing (in-memory transports need none).
    fn prepare(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl Transport for TcpStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        Read::read(self, buf)
    }

    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        Write::write(self, buf)
    }

    fn prepare(&mut self) -> std::io::Result<()> {
        // Responses can be small; without TCP_NODELAY each flush can
        // wait on the peer's delayed ACK.
        let _ = self.set_nodelay(true);
        self.set_nonblocking(true)
    }
}

/// Per-shard scratch reused across every connection and request: the
/// socket read chunk and the response serialize buffer. The legacy
/// path used to allocate a fresh `String` per response; both protocols
/// now serialize into this one buffer.
pub(crate) struct Scratch {
    chunk: Vec<u8>,
    ser: Vec<u8>,
}

impl Scratch {
    pub(crate) fn new() -> Self {
        Self {
            chunk: vec![0u8; READ_CHUNK],
            ser: Vec::with_capacity(4096),
        }
    }
}

/// Which framing a connection speaks; decided by its first byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Proto {
    /// Nothing received yet.
    Sniff,
    /// Newline-delimited JSON.
    Legacy,
    /// Length-prefixed binary frames (`binary-v1`).
    Binary,
}

/// What handling one request decided about the connection's future.
enum Outcome {
    /// Keep serving.
    Continue,
    /// Response enqueued; flush it, then close (shutdown or a framing
    /// violation).
    CloseAfterFlush,
    /// Unrecoverable (serialization failed); drop without flushing.
    Fatal,
}

/// One connection's state machine: read buffer, write buffer, framing
/// mode, and lifecycle flags. All buffers are owned and reused for the
/// connection's lifetime. Generic over the [`Transport`] so the
/// harness can drive the identical state machine in memory.
pub(crate) struct Conn<T: Transport = TcpStream> {
    stream: T,
    /// Unparsed input; `consumed` marks the handled prefix.
    pub(crate) buf: Vec<u8>,
    pub(crate) consumed: usize,
    /// Pending output; `written` marks the flushed prefix.
    pub(crate) out: Vec<u8>,
    pub(crate) written: usize,
    pub(crate) proto: Proto,
    /// Peer closed its write half; serve what is buffered, then close.
    peer_eof: bool,
    /// Stop reading; close once `out` is flushed.
    pub(crate) closing: bool,
    /// Finished (or broken): reap on the next sweep.
    pub(crate) dead: bool,
    /// When the previous request on this connection finished, for the
    /// `read` stage span (includes client idle time, as documented).
    prev_done_us: u64,
}

impl<T: Transport> Conn<T> {
    pub(crate) fn new(shared: &ServerShared<'_>, mut stream: T) -> Self {
        shared.track_open(1);
        let dead = stream.prepare().is_err();
        Self {
            stream,
            buf: Vec::with_capacity(4096),
            consumed: 0,
            out: Vec::with_capacity(4096),
            written: 0,
            proto: Proto::Sniff,
            peer_eof: false,
            closing: false,
            dead,
            prev_done_us: gdcm_obs::timestamp_us(),
        }
    }

    /// The underlying transport, for harness inspection.
    pub(crate) fn transport_mut(&mut self) -> &mut T {
        &mut self.stream
    }

    /// One readiness sweep over this connection: read what the socket
    /// has, process every complete request, flush what the socket
    /// takes. Returns whether anything moved.
    pub(crate) fn pump(&mut self, shared: &ServerShared<'_>, scratch: &mut Scratch) -> bool {
        if self.dead {
            return false;
        }
        let mut progress = false;
        // Read — unless closing, the peer is done, or backpressure from
        // an unflushed output backlog says to stop consuming.
        if !self.closing && !self.peer_eof && self.out.len() - self.written < WRITE_HIGH_WATER {
            let mut burst = 0usize;
            loop {
                match self.stream.read(&mut scratch.chunk) {
                    Ok(0) => {
                        self.peer_eof = true;
                        progress = true;
                        break;
                    }
                    Ok(n) => {
                        self.buf.extend_from_slice(&scratch.chunk[..n]);
                        progress = true;
                        if self.buf.len() - self.consumed > MAX_BUFFERED_INPUT {
                            self.dead = true;
                            return true;
                        }
                        burst += n;
                        if burst >= READ_BURST {
                            break;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => {
                        self.dead = true;
                        return true;
                    }
                }
            }
        }
        // Process everything complete.
        progress |= self.process(shared, scratch);
        // Drop the handled prefix once it dominates the buffer.
        if self.consumed > 0 && (self.consumed == self.buf.len() || self.consumed >= 32 * 1024) {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
        // Flush.
        progress |= self.flush();
        if self.written == self.out.len() {
            self.out.clear();
            self.written = 0;
            if self.closing || (self.peer_eof && !self.has_parseable_input()) {
                self.dead = true;
            }
        }
        progress
    }

    /// Whether unconsumed input could still form a request. After EOF
    /// a partial frame or line can never complete, so this gates the
    /// final close.
    fn has_parseable_input(&self) -> bool {
        self.buf.len() > self.consumed
    }

    fn flush(&mut self) -> bool {
        let mut progress = false;
        while self.written < self.out.len() {
            match self.stream.write(&self.out[self.written..]) {
                Ok(0) => {
                    self.dead = true;
                    return true;
                }
                Ok(n) => {
                    self.written += n;
                    progress = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    return true;
                }
            }
        }
        progress
    }

    /// Parses and answers every complete request currently buffered.
    fn process(&mut self, shared: &ServerShared<'_>, scratch: &mut Scratch) -> bool {
        let mut progress = false;
        loop {
            if self.closing || self.dead {
                return progress;
            }
            // Pipelining backpressure: stop answering until the peer
            // drains what is already queued.
            if self.out.len() - self.written >= WRITE_HIGH_WATER {
                self.flush();
                if self.out.len() - self.written >= WRITE_HIGH_WATER {
                    return progress;
                }
            }
            match self.proto {
                Proto::Sniff => {
                    let avail = &self.buf[self.consumed..];
                    if avail.is_empty() {
                        return progress;
                    }
                    if avail[0] == wire::PREAMBLE_MAGIC[0] {
                        if avail.len() < wire::PREAMBLE_LEN {
                            if self.peer_eof {
                                self.dead = true;
                            }
                            return progress;
                        }
                        match wire::check_preamble(&avail[..wire::PREAMBLE_LEN]) {
                            Ok(_) => {
                                self.consumed += wire::PREAMBLE_LEN;
                                self.proto = Proto::Binary;
                            }
                            Err(wire::WireError::UnsupportedVersion { requested }) => {
                                // Framing is version-stable, so even a
                                // from-the-future client can read this.
                                let _ = wire::append_frame(
                                    &mut self.out,
                                    0,
                                    &Response::Error {
                                        code: codes::UNSUPPORTED_PROTOCOL.to_string(),
                                        message: wire::WireError::UnsupportedVersion { requested }
                                            .to_string(),
                                    },
                                );
                                self.closing = true;
                            }
                            Err(_) => {
                                // NUL-led garbage: no protocol to answer in.
                                self.dead = true;
                            }
                        }
                    } else {
                        self.proto = Proto::Legacy;
                    }
                    progress = true;
                }
                Proto::Legacy => {
                    let avail = &self.buf[self.consumed..];
                    let (line_end, next) = match avail.iter().position(|&b| b == b'\n') {
                        Some(nl) => (self.consumed + nl, self.consumed + nl + 1),
                        // A final unterminated line is still served once
                        // the peer has hung up (BufRead::read_line parity).
                        None if self.peer_eof && !avail.is_empty() => {
                            (self.buf.len(), self.buf.len())
                        }
                        None => return progress,
                    };
                    let line_start = self.consumed;
                    self.consumed = next;
                    progress = true;
                    let outcome = {
                        let Conn {
                            buf,
                            out,
                            prev_done_us,
                            ..
                        } = self;
                        handle_legacy_line(
                            shared,
                            scratch,
                            &buf[line_start..line_end],
                            out,
                            *prev_done_us,
                        )
                    };
                    self.finish_request(shared, outcome);
                }
                Proto::Binary => {
                    let avail = &self.buf[self.consumed..];
                    if avail.len() < wire::FRAME_HEADER_LEN {
                        if self.peer_eof && !avail.is_empty() {
                            // Truncated header at EOF: close cleanly.
                            self.closing = true;
                            progress = true;
                        }
                        return progress;
                    }
                    let header = match wire::decode_frame_header(avail) {
                        Ok(header) => header,
                        Err(_) => {
                            self.dead = true;
                            return true;
                        }
                    };
                    if header.payload_len > wire::MAX_PAYLOAD {
                        // Refused before any allocation; framing can no
                        // longer be trusted, so answer and close.
                        let _ = wire::append_frame(
                            &mut self.out,
                            header.request_id,
                            &Response::Error {
                                code: codes::FRAME_TOO_LARGE.to_string(),
                                message: wire::WireError::FrameTooLarge {
                                    declared: header.payload_len,
                                }
                                .to_string(),
                            },
                        );
                        shared.requests.fetch_add(1, Ordering::SeqCst);
                        shared.request_errors.fetch_add(1, Ordering::SeqCst);
                        gdcm_obs::counter("serve/requests").incr();
                        gdcm_obs::counter("serve/request_errors").incr();
                        self.closing = true;
                        progress = true;
                        continue;
                    }
                    if avail.len() < wire::FRAME_HEADER_LEN + header.payload_len {
                        if self.peer_eof {
                            // Truncated frame mid-read: close cleanly,
                            // answering nothing for the partial frame.
                            self.closing = true;
                            progress = true;
                        }
                        return progress;
                    }
                    let start = self.consumed + wire::FRAME_HEADER_LEN;
                    let end = start + header.payload_len;
                    self.consumed = end;
                    progress = true;
                    let outcome = {
                        let Conn {
                            buf,
                            out,
                            prev_done_us,
                            ..
                        } = self;
                        handle_binary_frame(
                            shared,
                            scratch,
                            &buf[start..end],
                            header.request_id,
                            out,
                            *prev_done_us,
                        )
                    };
                    self.finish_request(shared, outcome);
                }
            }
        }
    }

    fn finish_request(&mut self, shared: &ServerShared<'_>, outcome: Outcome) {
        self.prev_done_us = gdcm_obs::timestamp_us();
        match outcome {
            Outcome::Continue => {}
            Outcome::CloseAfterFlush => {
                shared.trigger_shutdown();
                self.closing = true;
            }
            Outcome::Fatal => self.dead = true,
        }
    }
}

/// Parses one request line: envelope first (opt-in trace id), bare
/// request second. A line that is valid JSON but not a valid request
/// still yields its `trace_id` (if any), so the error response can be
/// correlated with the request that caused it.
fn parse_line(line: &str) -> (Option<u64>, Result<Request, String>) {
    if let Ok(env) = serde_json::from_str::<RequestEnvelope>(line) {
        return (env.trace_id, Ok(env.req));
    }
    match serde_json::from_str::<Request>(line) {
        Ok(request) => (None, Ok(request)),
        Err(e) => {
            let trace_id = serde_json::from_str::<TraceIdProbe>(line)
                .ok()
                .and_then(|p| p.trace_id);
            (trace_id, Err(format!("unparsable request: {e}")))
        }
    }
}

/// Serves one legacy newline-JSON request: parse, dispatch, serialize
/// into the shard's reusable buffer, enqueue with a trailing newline.
fn handle_legacy_line(
    shared: &ServerShared<'_>,
    scratch: &mut Scratch,
    line: &[u8],
    out: &mut Vec<u8>,
    prev_done_us: u64,
) -> Outcome {
    // A non-UTF-8 line answers an in-band parse error instead of the
    // old reader's silent disconnect — strictly more useful, still an
    // error. Blank lines are ignored, as before.
    let text = match std::str::from_utf8(line) {
        Ok(text) if text.trim().is_empty() => return Outcome::Continue,
        Ok(text) => Some(text),
        Err(_) => None,
    };

    let telemetry = shared.telemetry;
    let cache_before = telemetry.then(|| shared.serving.cache_stats());
    if telemetry {
        gdcm_obs::reqtrace::begin(0);
        // The read stage spans from the previous request's completion;
        // it belongs in the stage breakdown but not in the latency
        // that ranks the slow log, which starts after the read.
        let now_us = gdcm_obs::timestamp_us();
        gdcm_obs::reqtrace::stage_closed("read", prev_done_us, now_us.saturating_sub(prev_done_us));
    }
    let started = Instant::now();

    let (trace_id, parsed) = {
        let _stage = gdcm_obs::reqtrace::stage("parse");
        match text {
            Some(text) => parse_line(text),
            None => (None, Err("request line is not valid UTF-8".to_string())),
        }
    };
    if let Some(id) = trace_id {
        gdcm_obs::reqtrace::set_trace_id(id);
    }

    let label;
    let (response, is_shutdown) = match parsed {
        Ok(request) => {
            label = request_label(&request);
            let is_shutdown = matches!(request, Request::Shutdown);
            (dispatch(shared, request), is_shutdown)
        }
        Err(message) => {
            label = "parse_error";
            (
                Response::Error {
                    code: codes::PARSE_ERROR.to_string(),
                    message,
                },
                false,
            )
        }
    };
    shared.requests.fetch_add(1, Ordering::SeqCst);
    gdcm_obs::counter("serve/requests").incr();
    let is_error = matches!(response, Response::Error { .. });
    if is_error {
        shared.request_errors.fetch_add(1, Ordering::SeqCst);
        gdcm_obs::counter("serve/request_errors").incr();
    }

    let serialized = {
        let _stage = gdcm_obs::reqtrace::stage("serialize");
        scratch.ser.clear();
        // Enveloped requests get enveloped responses — errors
        // included, so clients can correlate failures too. Bare
        // requests keep the legacy bare responses.
        match trace_id {
            Some(id) => serde_json::to_writer(
                &mut scratch.ser,
                &ResponseEnvelope {
                    trace_id: Some(id),
                    resp: response,
                },
            ),
            None => serde_json::to_writer(&mut scratch.ser, &response),
        }
    };
    if serialized.is_err() {
        // Responses are plain data; serialization cannot fail. If it
        // ever does, drop the connection rather than the process.
        return Outcome::Fatal;
    }
    {
        let _stage = gdcm_obs::reqtrace::stage("write");
        out.extend_from_slice(&scratch.ser);
        out.push(b'\n');
    }

    let request_us = started.elapsed().as_micros() as u64;
    gdcm_obs::histogram("serve/request_ms").record(request_us as f64 / 1e3);
    if telemetry {
        record_telemetry(shared, label, request_us, is_error, cache_before);
    }
    if is_shutdown {
        Outcome::CloseAfterFlush
    } else {
        Outcome::Continue
    }
}

/// Serves one binary frame: decode, dispatch, encode the response into
/// a frame tagged with the request's id. The id also becomes the
/// request's trace id, so binary clients correlate slow-log entries
/// without any envelope.
fn handle_binary_frame(
    shared: &ServerShared<'_>,
    scratch: &mut Scratch,
    payload: &[u8],
    request_id: u64,
    out: &mut Vec<u8>,
    prev_done_us: u64,
) -> Outcome {
    let telemetry = shared.telemetry;
    let cache_before = telemetry.then(|| shared.serving.cache_stats());
    if telemetry {
        gdcm_obs::reqtrace::begin(request_id);
        let now_us = gdcm_obs::timestamp_us();
        gdcm_obs::reqtrace::stage_closed("read", prev_done_us, now_us.saturating_sub(prev_done_us));
    }
    let started = Instant::now();

    // Wire fast lane: a canonical `Predict` whose network bytes have
    // been seen before can be answered from the prediction cache
    // without decoding the network at all. Any miss — not a Predict,
    // first sighting of these bytes, cache invalidated by a refit —
    // drops to the ordinary decode below, whose successful result
    // repopulates the index.
    let probed = wire::fast::probe_predict(payload)
        .map(|(device, network_bytes)| (device, wire::fast::wire_hash(network_bytes)));
    let cached = probed
        .as_ref()
        .and_then(|(device, hash)| shared.serving.predict_wire_hit(device, *hash));

    let label;
    let (response, is_shutdown) = if let Some(latency_ms) = cached {
        label = "predict";
        (Response::Prediction { latency_ms }, false)
    } else {
        let parsed = {
            let _stage = gdcm_obs::reqtrace::stage("parse");
            // Canonical-layout fast path; falls back to the generic
            // content-tree decoder on any deviation, so accepted inputs
            // and error text are unchanged.
            wire::fast::decode_request(payload)
        };
        match parsed {
            Ok(request) => {
                if let (Some((_, hash)), Request::Predict { network, .. }) = (&probed, &request) {
                    shared.serving.index_wire_hash(*hash, network);
                }
                label = request_label(&request);
                let is_shutdown = matches!(request, Request::Shutdown);
                (dispatch(shared, request), is_shutdown)
            }
            Err(e) => {
                // A malformed payload inside a well-formed frame:
                // framing is intact, so answer in-band and keep the
                // connection — neighbouring pipelined requests are
                // unaffected.
                label = "parse_error";
                (
                    Response::Error {
                        code: codes::PARSE_ERROR.to_string(),
                        message: format!("unparsable request: {e}"),
                    },
                    false,
                )
            }
        }
    };
    shared.requests.fetch_add(1, Ordering::SeqCst);
    gdcm_obs::counter("serve/requests").incr();
    let is_error = matches!(response, Response::Error { .. });
    if is_error {
        shared.request_errors.fetch_add(1, Ordering::SeqCst);
        gdcm_obs::counter("serve/request_errors").incr();
    }

    let serialized = {
        let _stage = gdcm_obs::reqtrace::stage("serialize");
        scratch.ser.clear();
        wire::append_value(&mut scratch.ser, &response)
    };
    if serialized.is_err() {
        return Outcome::Fatal;
    }
    let framed = {
        let _stage = gdcm_obs::reqtrace::stage("write");
        wire::append_raw_frame(out, request_id, &scratch.ser)
    };
    if framed.is_err() {
        return Outcome::Fatal;
    }

    let request_us = started.elapsed().as_micros() as u64;
    gdcm_obs::histogram("serve/request_ms").record(request_us as f64 / 1e3);
    if telemetry {
        record_telemetry(shared, label, request_us, is_error, cache_before);
    }
    if is_shutdown {
        Outcome::CloseAfterFlush
    } else {
        Outcome::Continue
    }
}

/// Folds one finished request into the live-telemetry surfaces:
/// windowed counters/histograms, per-stage cumulative histograms, and
/// the slow log. Only called when telemetry is enabled.
fn record_telemetry(
    shared: &ServerShared<'_>,
    label: &str,
    request_us: u64,
    is_error: bool,
    cache_before: Option<CacheStats>,
) {
    let now_us = gdcm_obs::timestamp_us();
    gdcm_obs::windowed_counter("serve/requests").add_at(1, now_us);
    if is_error {
        gdcm_obs::windowed_counter("serve/request_errors").add_at(1, now_us);
    }
    gdcm_obs::windowed_histogram("serve/request_us").record_at(request_us as f64, now_us);
    if let Some(before) = cache_before {
        // Attribute this request's cache activity to the window. Deltas
        // may briefly include a concurrent shard's lookups; windowed
        // totals stay exact because every shard records its own delta
        // against its own `before` snapshot only once per request.
        let after = shared.serving.cache_stats();
        let deltas = [
            (
                "serve/pred_cache_hit",
                after.prediction_hits.saturating_sub(before.prediction_hits),
            ),
            (
                "serve/pred_cache_miss",
                after
                    .prediction_misses
                    .saturating_sub(before.prediction_misses),
            ),
            (
                "serve/enc_cache_hit",
                after.encoding_hits.saturating_sub(before.encoding_hits),
            ),
            (
                "serve/enc_cache_miss",
                after.encoding_misses.saturating_sub(before.encoding_misses),
            ),
        ];
        for (name, delta) in deltas {
            if delta > 0 {
                gdcm_obs::windowed_counter(name).add_at(delta, now_us);
            }
        }
    }
    if let Some(ctx) = gdcm_obs::reqtrace::end() {
        ctx.merge_into_registry("serve");
        gdcm_obs::slowlog::offer(gdcm_obs::slowlog::SlowEntry {
            trace_id: ctx.trace_id,
            label: label.to_string(),
            total_us: request_us,
            ts_us: ctx.started_us,
            stages: ctx.stages,
        });
    }
}

/// Maps one request to one response against the serving repository.
fn dispatch(shared: &ServerShared<'_>, request: Request) -> Response {
    let serving = shared.serving;
    let fail = |e: crate::ServeError| Response::Error {
        code: e.code().to_string(),
        message: e.to_string(),
    };
    match request {
        Request::Ping => Response::Pong,
        Request::Stats => {
            let cache = serving.cache_stats();
            Response::Stats {
                devices: serving.n_devices(),
                rows: serving.n_rows(),
                fitted: serving.is_fitted(),
                encoding_hits: cache.encoding_hits,
                encoding_misses: cache.encoding_misses,
                prediction_hits: cache.prediction_hits,
                prediction_misses: cache.prediction_misses,
                requests: shared.requests.load(Ordering::SeqCst) + 1,
            }
        }
        Request::Predict { device, network } => match serving.predict(&device, &network) {
            Ok(latency_ms) => Response::Prediction { latency_ms },
            Err(e) => fail(e),
        },
        Request::PredictBatch { device, networks } => {
            match serving.predict_batch(&device, &networks) {
                Ok(latency_ms) => Response::Predictions { latency_ms },
                Err(e) => fail(e),
            }
        }
        Request::PredictForNewDevice {
            signature_ms,
            network,
        } => match serving.predict_for_new_device(&signature_ms, &network) {
            Ok(latency_ms) => Response::Prediction { latency_ms },
            Err(e) => fail(e),
        },
        // Mutations go through the ingestion pipeline when one is
        // attached, so they are durable (WAL append + fsync) before the
        // Ok below acknowledges them.
        Request::OnboardDevice {
            device,
            signature_ms,
        } => {
            let result = match shared.ingest {
                Some(ingest) => ingest.onboard_device(&device, &signature_ms),
                None => serving.onboard_device(&device, &signature_ms),
            };
            match result {
                Ok(()) => Response::Ok,
                Err(e) => fail(e),
            }
        }
        Request::ReEnroll {
            device,
            signature_ms,
        } => {
            let result = match shared.ingest {
                Some(ingest) => ingest.re_enroll(&device, &signature_ms),
                None => serving.re_enroll(&device, &signature_ms),
            };
            match result {
                Ok(()) => Response::Ok,
                Err(e) => fail(e),
            }
        }
        Request::Contribute {
            device,
            network,
            latency_ms,
        } => {
            let result = match shared.ingest {
                Some(ingest) => ingest.contribute(&device, &network, latency_ms),
                None => serving.contribute(&device, &network, latency_ms),
            };
            match result {
                Ok(()) => Response::Ok,
                Err(e) => fail(e),
            }
        }
        // Fit also goes through the pipeline: the WAL records rows, not
        // models, so the pipeline re-snapshots after a successful fit —
        // otherwise crash-and-replay would silently revert an
        // acknowledged fit to the snapshot's model.
        Request::Fit => {
            let result = match shared.ingest {
                Some(ingest) => ingest.fit(),
                None => serving.fit(),
            };
            match result {
                Ok(()) => Response::Ok,
                Err(e) => fail(e),
            }
        }
        Request::Shutdown => Response::ShuttingDown,
    }
}
