//! The TCP server: accept loop, worker pool, graceful shutdown.
//!
//! Safe Rust only, on `std::net`. The accept loop runs on the calling
//! thread and feeds accepted connections through an `mpsc` channel to
//! worker threads sized by the `gdcm-par` budget (`GDCM_THREADS`):
//!
//! * budget 1 — no workers are spawned; connections are handled inline
//!   by the accept loop, the exact serial path (mirroring `gdcm-par`'s
//!   own serial short-circuit).
//! * budget N>1 — N workers pull connections from the shared channel.
//!
//! Shutdown is the SIGTERM-equivalent *channel close*: a `Shutdown`
//! request flips the shared stop flag and pokes the listener with a
//! wake-up connection; the accept loop exits and drops the sender, the
//! channel closes, and each worker drains what was already queued before
//! returning. Nothing is aborted mid-request.
//!
//! Instrumentation: `serve/requests` / `serve/request_errors` counters,
//! a `serve/request_ms` latency histogram, and a `serve/queue_depth`
//! gauge updated on every enqueue/dequeue.

use parking_lot::Mutex;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::time::Instant;

use crate::protocol::{Request, Response};
use crate::serving::ServingRepository;

/// Server configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Connection worker threads. 1 handles connections inline on the
    /// accept thread. Defaults to the `gdcm-par` thread budget.
    pub workers: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: gdcm_par::threads().max(1),
        }
    }
}

/// What the server did before it stopped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerSummary {
    /// Connections accepted and handled.
    pub connections: u64,
    /// Requests answered (errors included).
    pub requests: u64,
    /// Requests answered with [`Response::Error`].
    pub request_errors: u64,
}

/// Shared per-server state.
struct ServerShared<'a> {
    serving: &'a ServingRepository,
    addr: SocketAddr,
    stop: AtomicBool,
    requests: AtomicU64,
    request_errors: AtomicU64,
    connections: AtomicU64,
    queue_depth: AtomicI64,
}

impl ServerShared<'_> {
    /// Flags shutdown and pokes the accept loop awake with a throwaway
    /// connection so it observes the flag without waiting for traffic.
    fn trigger_shutdown(&self) {
        if !self.stop.swap(true, Ordering::SeqCst) {
            let _ = TcpStream::connect(self.addr);
        }
    }
}

/// Runs the server until a client sends [`Request::Shutdown`]. Returns
/// the traffic summary after a graceful drain.
///
/// # Errors
///
/// Propagates listener failures (bind errors surface earlier, at
/// `TcpListener::bind`; accept errors on a healthy listener are
/// per-connection and logged, not fatal).
pub fn serve(
    listener: TcpListener,
    serving: &ServingRepository,
    config: ServerConfig,
) -> std::io::Result<ServerSummary> {
    let _span = gdcm_obs::span!("serve/server");
    let addr = listener.local_addr()?;
    let shared = ServerShared {
        serving,
        addr,
        stop: AtomicBool::new(false),
        requests: AtomicU64::new(0),
        request_errors: AtomicU64::new(0),
        connections: AtomicU64::new(0),
        queue_depth: AtomicI64::new(0),
    };
    let workers = config.workers.max(1);
    gdcm_obs::gauge("serve/workers").set(workers as f64);

    if workers == 1 {
        // Serial path: handle each connection inline on this thread.
        for stream in listener.incoming() {
            if shared.stop.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(stream) => handle_connection(&shared, stream),
                Err(e) => gdcm_obs::event(
                    "accept_error",
                    "serve",
                    &[("error", gdcm_obs::FieldValue::Str(e.to_string()))],
                ),
            }
        }
    } else {
        let (tx, rx) = channel::<TcpStream>();
        let rx = Mutex::new(rx);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                handles.push(scope.spawn(|| worker_loop(&shared, &rx)));
            }
            for stream in listener.incoming() {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    Ok(stream) => {
                        let depth = shared.queue_depth.fetch_add(1, Ordering::SeqCst) + 1;
                        gdcm_obs::gauge("serve/queue_depth").set(depth as f64);
                        if tx.send(stream).is_err() {
                            break; // all workers gone (unreachable in practice)
                        }
                    }
                    Err(e) => gdcm_obs::event(
                        "accept_error",
                        "serve",
                        &[("error", gdcm_obs::FieldValue::Str(e.to_string()))],
                    ),
                }
            }
            // Channel close = the shutdown signal workers drain on.
            drop(tx);
            for handle in handles {
                // Worker closures don't panic; join errors would only
                // reflect a panic escaping handle_connection's catch-all.
                let _ = handle.join();
            }
        });
    }

    Ok(ServerSummary {
        connections: shared.connections.load(Ordering::SeqCst),
        requests: shared.requests.load(Ordering::SeqCst),
        request_errors: shared.request_errors.load(Ordering::SeqCst),
    })
}

/// Worker: pull connections until the channel closes, then drain out.
fn worker_loop(shared: &ServerShared<'_>, rx: &Mutex<Receiver<TcpStream>>) {
    loop {
        // Hold the receiver lock only for the pull, not the handling.
        let stream = match rx.lock().recv() {
            Ok(stream) => stream,
            Err(_) => return, // channel closed: graceful drain complete
        };
        let depth = shared.queue_depth.fetch_sub(1, Ordering::SeqCst) - 1;
        gdcm_obs::gauge("serve/queue_depth").set(depth as f64);
        handle_connection(shared, stream);
    }
}

/// Serves one connection: a loop of line-delimited requests, answered
/// in order. Returns when the client disconnects or after `Shutdown`.
fn handle_connection(shared: &ServerShared<'_>, stream: TcpStream) {
    shared.connections.fetch_add(1, Ordering::SeqCst);
    // Responses are single small lines; without TCP_NODELAY each one
    // waits on the peer's delayed ACK.
    let _ = stream.set_nodelay(true);
    let peer = stream.peer_addr().ok();
    let reader = match stream.try_clone() {
        Ok(clone) => BufReader::new(clone),
        Err(e) => {
            gdcm_obs::event(
                "connection_error",
                "serve",
                &[("error", gdcm_obs::FieldValue::Str(e.to_string()))],
            );
            return;
        }
    };
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => break, // client went away
        };
        if line.trim().is_empty() {
            continue;
        }
        let started = Instant::now();
        let (response, is_shutdown) = match serde_json::from_str::<Request>(&line) {
            Ok(request) => {
                let is_shutdown = matches!(request, Request::Shutdown);
                (dispatch(shared, request), is_shutdown)
            }
            Err(e) => (
                Response::Error {
                    message: format!("unparsable request: {e}"),
                },
                false,
            ),
        };
        shared.requests.fetch_add(1, Ordering::SeqCst);
        gdcm_obs::counter("serve/requests").incr();
        if matches!(response, Response::Error { .. }) {
            shared.request_errors.fetch_add(1, Ordering::SeqCst);
            gdcm_obs::counter("serve/request_errors").incr();
        }
        let json = match serde_json::to_string(&response) {
            Ok(json) => json,
            // Responses are plain data; serialization cannot fail. If it
            // ever does, drop the connection rather than the process.
            Err(_) => break,
        };
        gdcm_obs::histogram("serve/request_ms").record(started.elapsed().as_secs_f64() * 1e3);
        if writer
            .write_all(json.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            break; // client went away mid-response
        }
        if is_shutdown {
            shared.trigger_shutdown();
            break;
        }
    }
    let _ = peer; // peer address is only interesting to event sinks
}

/// Maps one request to one response against the serving repository.
fn dispatch(shared: &ServerShared<'_>, request: Request) -> Response {
    let serving = shared.serving;
    let fail = |e: crate::ServeError| Response::Error {
        message: e.to_string(),
    };
    match request {
        Request::Ping => Response::Pong,
        Request::Stats => {
            let cache = serving.cache_stats();
            Response::Stats {
                devices: serving.n_devices(),
                rows: serving.n_rows(),
                fitted: serving.is_fitted(),
                encoding_hits: cache.encoding_hits,
                encoding_misses: cache.encoding_misses,
                prediction_hits: cache.prediction_hits,
                prediction_misses: cache.prediction_misses,
                requests: shared.requests.load(Ordering::SeqCst) + 1,
            }
        }
        Request::Predict { device, network } => match serving.predict(&device, &network) {
            Ok(latency_ms) => Response::Prediction { latency_ms },
            Err(e) => fail(e),
        },
        Request::PredictBatch { device, networks } => {
            match serving.predict_batch(&device, &networks) {
                Ok(latency_ms) => Response::Predictions { latency_ms },
                Err(e) => fail(e),
            }
        }
        Request::PredictForNewDevice {
            signature_ms,
            network,
        } => match serving.predict_for_new_device(&signature_ms, &network) {
            Ok(latency_ms) => Response::Prediction { latency_ms },
            Err(e) => fail(e),
        },
        Request::OnboardDevice {
            device,
            signature_ms,
        } => match serving.onboard_device(&device, &signature_ms) {
            Ok(()) => Response::Ok,
            Err(e) => fail(e),
        },
        Request::ReEnroll {
            device,
            signature_ms,
        } => match serving.re_enroll(&device, &signature_ms) {
            Ok(()) => Response::Ok,
            Err(e) => fail(e),
        },
        Request::Contribute {
            device,
            network,
            latency_ms,
        } => match serving.contribute(&device, &network, latency_ms) {
            Ok(()) => Response::Ok,
            Err(e) => fail(e),
        },
        Request::Fit => match serving.fit() {
            Ok(()) => Response::Ok,
            Err(e) => fail(e),
        },
        Request::Shutdown => Response::ShuttingDown,
    }
}
