//! The TCP server: accept loop, worker pool, graceful shutdown.
//!
//! Safe Rust only, on `std::net`. The accept loop runs on the calling
//! thread and feeds accepted connections through an `mpsc` channel to
//! worker threads sized by the `gdcm-par` budget (`GDCM_THREADS`):
//!
//! * budget 1 — no workers are spawned; connections are handled inline
//!   by the accept loop, the exact serial path (mirroring `gdcm-par`'s
//!   own serial short-circuit).
//! * budget N>1 — N workers pull connections from the shared channel.
//!
//! Shutdown is the SIGTERM-equivalent *channel close*: a `Shutdown`
//! request flips the shared stop flag and pokes the listener with a
//! wake-up connection; the accept loop exits and drops the sender, the
//! channel closes, and each worker drains what was already queued before
//! returning. Nothing is aborted mid-request.
//!
//! Instrumentation: `serve/requests` / `serve/request_errors` counters,
//! a `serve/request_ms` latency histogram, and a `serve/queue_depth`
//! gauge updated on every enqueue/dequeue — always on (registry writes,
//! not event emission).
//!
//! Live telemetry is opt-in via [`serve_with_ops`]: handing the server
//! a second listener starts the [`crate::ops`] endpoint and turns on
//! per-request recording — stage spans (`read`/`parse`/`cache_lookup`/
//! `predict`/`serialize`/`write`) through `gdcm_obs::reqtrace`,
//! windowed qps/latency/error/cache counters, and slow-log admission.
//! Without an ops listener none of that code runs: the request loop
//! checks one plain `bool` and the hot path stays byte-for-byte the
//! uninstrumented one (`bench_serve` asserts the enabled cost too).

use parking_lot::Mutex;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::time::Instant;

use crate::protocol::{
    codes, request_label, Request, RequestEnvelope, Response, ResponseEnvelope, TraceIdProbe,
};
use crate::serving::{CacheStats, ServingRepository};

/// Server configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Connection worker threads. 1 handles connections inline on the
    /// accept thread. Defaults to the `gdcm-par` thread budget.
    pub workers: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: gdcm_par::threads().max(1),
        }
    }
}

/// What the server did before it stopped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerSummary {
    /// Connections accepted and handled.
    pub connections: u64,
    /// Requests answered (errors included).
    pub requests: u64,
    /// Requests answered with [`Response::Error`].
    pub request_errors: u64,
}

/// Shared per-server state (also read by the [`crate::ops`] endpoint).
pub(crate) struct ServerShared<'a> {
    pub(crate) serving: &'a ServingRepository,
    addr: SocketAddr,
    pub(crate) stop: AtomicBool,
    pub(crate) requests: AtomicU64,
    pub(crate) request_errors: AtomicU64,
    pub(crate) connections: AtomicU64,
    queue_depth: AtomicI64,
    /// Whether per-request telemetry (traces, windowed metrics, slow
    /// log) records. True exactly when an ops listener is attached.
    pub(crate) telemetry: bool,
    /// Flipped by the ops `quiesce` verb; reported by `health`.
    pub(crate) draining: AtomicBool,
    /// Tells the ops accept loop to exit.
    pub(crate) ops_stop: AtomicBool,
    ops_addr: Option<SocketAddr>,
    /// Server start, for uptime reporting.
    pub(crate) started: Instant,
    pub(crate) workers: usize,
}

impl ServerShared<'_> {
    /// Flags shutdown and pokes the accept loop awake with a throwaway
    /// connection so it observes the flag without waiting for traffic.
    fn trigger_shutdown(&self) {
        if !self.stop.swap(true, Ordering::SeqCst) {
            let _ = TcpStream::connect(self.addr);
        }
    }

    /// Same wake-up trick for the ops accept loop.
    fn trigger_ops_shutdown(&self) {
        if let Some(addr) = self.ops_addr {
            if !self.ops_stop.swap(true, Ordering::SeqCst) {
                let _ = TcpStream::connect(addr);
            }
        }
    }
}

/// Runs the server until a client sends [`Request::Shutdown`]. Returns
/// the traffic summary after a graceful drain.
///
/// # Errors
///
/// Propagates listener failures (bind errors surface earlier, at
/// `TcpListener::bind`; accept errors on a healthy listener are
/// per-connection and logged, not fatal).
pub fn serve(
    listener: TcpListener,
    serving: &ServingRepository,
    config: ServerConfig,
) -> std::io::Result<ServerSummary> {
    serve_with_ops(listener, None, serving, config)
}

/// Like [`serve`], with an optional second listener for the
/// [`crate::ops`] endpoint (`health` / `metrics` / `slowlog` /
/// `quiesce`). Attaching one also enables per-request telemetry:
/// request-trace stage spans, windowed metrics, and the slow log. The
/// ops listener stops when the main server does.
///
/// # Errors
///
/// Same contract as [`serve`].
pub fn serve_with_ops(
    listener: TcpListener,
    ops_listener: Option<TcpListener>,
    serving: &ServingRepository,
    config: ServerConfig,
) -> std::io::Result<ServerSummary> {
    let _span = gdcm_obs::span!("serve/server");
    let addr = listener.local_addr()?;
    let ops_addr = match &ops_listener {
        Some(l) => Some(l.local_addr()?),
        None => None,
    };
    let workers = config.workers.max(1);
    let shared = ServerShared {
        serving,
        addr,
        stop: AtomicBool::new(false),
        requests: AtomicU64::new(0),
        request_errors: AtomicU64::new(0),
        connections: AtomicU64::new(0),
        queue_depth: AtomicI64::new(0),
        telemetry: ops_addr.is_some(),
        draining: AtomicBool::new(false),
        ops_stop: AtomicBool::new(false),
        ops_addr,
        started: Instant::now(),
        workers,
    };
    gdcm_obs::gauge("serve/workers").set(workers as f64);

    let shared = &shared;
    std::thread::scope(|outer| {
        let ops_handle =
            ops_listener.map(|ops| outer.spawn(move || crate::ops::run_ops(ops, shared)));

        if workers == 1 {
            // Serial path: handle each connection inline on this thread.
            for stream in listener.incoming() {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    Ok(stream) => handle_connection(shared, stream),
                    Err(e) => gdcm_obs::event(
                        "accept_error",
                        "serve",
                        &[("error", gdcm_obs::FieldValue::Str(e.to_string()))],
                    ),
                }
            }
        } else {
            let (tx, rx) = channel::<TcpStream>();
            let rx = Mutex::new(rx);
            std::thread::scope(|scope| {
                let rx = &rx;
                let mut handles = Vec::with_capacity(workers);
                for _ in 0..workers {
                    handles.push(scope.spawn(move || worker_loop(shared, rx)));
                }
                for stream in listener.incoming() {
                    if shared.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    match stream {
                        Ok(stream) => {
                            let depth = shared.queue_depth.fetch_add(1, Ordering::SeqCst) + 1;
                            gdcm_obs::gauge("serve/queue_depth").set(depth as f64);
                            if tx.send(stream).is_err() {
                                break; // all workers gone (unreachable in practice)
                            }
                        }
                        Err(e) => gdcm_obs::event(
                            "accept_error",
                            "serve",
                            &[("error", gdcm_obs::FieldValue::Str(e.to_string()))],
                        ),
                    }
                }
                // Channel close = the shutdown signal workers drain on.
                drop(tx);
                for handle in handles {
                    // Worker closures don't panic; join errors would only
                    // reflect a panic escaping handle_connection's catch-all.
                    let _ = handle.join();
                }
            });
        }

        // Main server done: stop the ops endpoint too.
        shared.trigger_ops_shutdown();
        if let Some(handle) = ops_handle {
            let _ = handle.join();
        }
    });

    Ok(ServerSummary {
        connections: shared.connections.load(Ordering::SeqCst),
        requests: shared.requests.load(Ordering::SeqCst),
        request_errors: shared.request_errors.load(Ordering::SeqCst),
    })
}

/// Worker: pull connections until the channel closes, then drain out.
fn worker_loop(shared: &ServerShared<'_>, rx: &Mutex<Receiver<TcpStream>>) {
    loop {
        // Hold the receiver lock only for the pull, not the handling.
        let stream = match rx.lock().recv() {
            Ok(stream) => stream,
            Err(_) => return, // channel closed: graceful drain complete
        };
        let depth = shared.queue_depth.fetch_sub(1, Ordering::SeqCst) - 1;
        gdcm_obs::gauge("serve/queue_depth").set(depth as f64);
        handle_connection(shared, stream);
    }
}

/// Parses one request line: envelope first (opt-in trace id), bare
/// request second. A line that is valid JSON but not a valid request
/// still yields its `trace_id` (if any), so the error response can be
/// correlated with the request that caused it.
fn parse_line(line: &str) -> (Option<u64>, Result<Request, String>) {
    if let Ok(env) = serde_json::from_str::<RequestEnvelope>(line) {
        return (env.trace_id, Ok(env.req));
    }
    match serde_json::from_str::<Request>(line) {
        Ok(request) => (None, Ok(request)),
        Err(e) => {
            let trace_id = serde_json::from_str::<TraceIdProbe>(line)
                .ok()
                .and_then(|p| p.trace_id);
            (trace_id, Err(format!("unparsable request: {e}")))
        }
    }
}

/// Serves one connection: a loop of line-delimited requests, answered
/// in order. Returns when the client disconnects or after `Shutdown`.
fn handle_connection(shared: &ServerShared<'_>, stream: TcpStream) {
    shared.connections.fetch_add(1, Ordering::SeqCst);
    // Responses are single small lines; without TCP_NODELAY each one
    // waits on the peer's delayed ACK.
    let _ = stream.set_nodelay(true);
    let mut reader = match stream.try_clone() {
        Ok(clone) => BufReader::new(clone),
        Err(e) => {
            gdcm_obs::event(
                "connection_error",
                "serve",
                &[("error", gdcm_obs::FieldValue::Str(e.to_string()))],
            );
            return;
        }
    };
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        let read_started_us = gdcm_obs::timestamp_us();
        let read_timer = Instant::now();
        match reader.read_line(&mut line) {
            Ok(0) => break, // clean EOF
            Ok(_) => {}
            Err(_) => break, // client went away
        }
        let read_us = read_timer.elapsed().as_micros() as u64;
        if line.trim().is_empty() {
            continue;
        }

        let telemetry = shared.telemetry;
        let cache_before = telemetry.then(|| shared.serving.cache_stats());
        if telemetry {
            gdcm_obs::reqtrace::begin(0);
            // The read stage includes client idle time between requests;
            // it belongs in the stage breakdown but not in the latency
            // that ranks the slow log, which starts after the read.
            gdcm_obs::reqtrace::stage_closed("read", read_started_us, read_us);
        }
        let started = Instant::now();

        let (trace_id, parsed) = {
            let _stage = gdcm_obs::reqtrace::stage("parse");
            parse_line(&line)
        };
        if let Some(id) = trace_id {
            gdcm_obs::reqtrace::set_trace_id(id);
        }

        let label;
        let (response, is_shutdown) = match parsed {
            Ok(request) => {
                label = request_label(&request);
                let is_shutdown = matches!(request, Request::Shutdown);
                (dispatch(shared, request), is_shutdown)
            }
            Err(message) => {
                label = "parse_error";
                (
                    Response::Error {
                        code: codes::PARSE_ERROR.to_string(),
                        message,
                    },
                    false,
                )
            }
        };
        shared.requests.fetch_add(1, Ordering::SeqCst);
        gdcm_obs::counter("serve/requests").incr();
        let is_error = matches!(response, Response::Error { .. });
        if is_error {
            shared.request_errors.fetch_add(1, Ordering::SeqCst);
            gdcm_obs::counter("serve/request_errors").incr();
        }

        let json = {
            let _stage = gdcm_obs::reqtrace::stage("serialize");
            // Enveloped requests get enveloped responses — errors
            // included, so clients can correlate failures too. Bare
            // requests keep the legacy bare responses.
            let serialized = match trace_id {
                Some(id) => serde_json::to_string(&ResponseEnvelope {
                    trace_id: Some(id),
                    resp: response,
                }),
                None => serde_json::to_string(&response),
            };
            match serialized {
                Ok(json) => json,
                // Responses are plain data; serialization cannot fail. If
                // it ever does, drop the connection rather than the process.
                Err(_) => break,
            }
        };

        let write_ok = {
            let _stage = gdcm_obs::reqtrace::stage("write");
            writer
                .write_all(json.as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .and_then(|()| writer.flush())
                .is_ok()
        };

        let request_us = started.elapsed().as_micros() as u64;
        gdcm_obs::histogram("serve/request_ms").record(request_us as f64 / 1e3);
        if telemetry {
            record_telemetry(shared, label, request_us, is_error, cache_before);
        }
        if !write_ok {
            break; // client went away mid-response
        }
        if is_shutdown {
            shared.trigger_shutdown();
            break;
        }
    }
}

/// Folds one finished request into the live-telemetry surfaces:
/// windowed counters/histograms, per-stage cumulative histograms, and
/// the slow log. Only called when telemetry is enabled.
fn record_telemetry(
    shared: &ServerShared<'_>,
    label: &str,
    request_us: u64,
    is_error: bool,
    cache_before: Option<CacheStats>,
) {
    let now_us = gdcm_obs::timestamp_us();
    gdcm_obs::windowed_counter("serve/requests").add_at(1, now_us);
    if is_error {
        gdcm_obs::windowed_counter("serve/request_errors").add_at(1, now_us);
    }
    gdcm_obs::windowed_histogram("serve/request_us").record_at(request_us as f64, now_us);
    if let Some(before) = cache_before {
        // Attribute this request's cache activity to the window. Deltas
        // may briefly include a concurrent worker's lookups; windowed
        // totals stay exact because every worker records its own delta
        // against its own `before` snapshot only once per request.
        let after = shared.serving.cache_stats();
        let deltas = [
            (
                "serve/pred_cache_hit",
                after.prediction_hits.saturating_sub(before.prediction_hits),
            ),
            (
                "serve/pred_cache_miss",
                after
                    .prediction_misses
                    .saturating_sub(before.prediction_misses),
            ),
            (
                "serve/enc_cache_hit",
                after.encoding_hits.saturating_sub(before.encoding_hits),
            ),
            (
                "serve/enc_cache_miss",
                after.encoding_misses.saturating_sub(before.encoding_misses),
            ),
        ];
        for (name, delta) in deltas {
            if delta > 0 {
                gdcm_obs::windowed_counter(name).add_at(delta, now_us);
            }
        }
    }
    if let Some(ctx) = gdcm_obs::reqtrace::end() {
        ctx.merge_into_registry("serve");
        gdcm_obs::slowlog::offer(gdcm_obs::slowlog::SlowEntry {
            trace_id: ctx.trace_id,
            label: label.to_string(),
            total_us: request_us,
            ts_us: ctx.started_us,
            stages: ctx.stages,
        });
    }
}

/// Maps one request to one response against the serving repository.
fn dispatch(shared: &ServerShared<'_>, request: Request) -> Response {
    let serving = shared.serving;
    let fail = |e: crate::ServeError| Response::Error {
        code: e.code().to_string(),
        message: e.to_string(),
    };
    match request {
        Request::Ping => Response::Pong,
        Request::Stats => {
            let cache = serving.cache_stats();
            Response::Stats {
                devices: serving.n_devices(),
                rows: serving.n_rows(),
                fitted: serving.is_fitted(),
                encoding_hits: cache.encoding_hits,
                encoding_misses: cache.encoding_misses,
                prediction_hits: cache.prediction_hits,
                prediction_misses: cache.prediction_misses,
                requests: shared.requests.load(Ordering::SeqCst) + 1,
            }
        }
        Request::Predict { device, network } => match serving.predict(&device, &network) {
            Ok(latency_ms) => Response::Prediction { latency_ms },
            Err(e) => fail(e),
        },
        Request::PredictBatch { device, networks } => {
            match serving.predict_batch(&device, &networks) {
                Ok(latency_ms) => Response::Predictions { latency_ms },
                Err(e) => fail(e),
            }
        }
        Request::PredictForNewDevice {
            signature_ms,
            network,
        } => match serving.predict_for_new_device(&signature_ms, &network) {
            Ok(latency_ms) => Response::Prediction { latency_ms },
            Err(e) => fail(e),
        },
        Request::OnboardDevice {
            device,
            signature_ms,
        } => match serving.onboard_device(&device, &signature_ms) {
            Ok(()) => Response::Ok,
            Err(e) => fail(e),
        },
        Request::ReEnroll {
            device,
            signature_ms,
        } => match serving.re_enroll(&device, &signature_ms) {
            Ok(()) => Response::Ok,
            Err(e) => fail(e),
        },
        Request::Contribute {
            device,
            network,
            latency_ms,
        } => match serving.contribute(&device, &network, latency_ms) {
            Ok(()) => Response::Ok,
            Err(e) => fail(e),
        },
        Request::Fit => match serving.fit() {
            Ok(()) => Response::Ok,
            Err(e) => fail(e),
        },
        Request::Shutdown => Response::ShuttingDown,
    }
}
