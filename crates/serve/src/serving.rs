//! The cached, thread-safe serving façade over the repository.
//!
//! ## Bit-identity contract
//!
//! Every cached or batched answer is bit-identical to what the plain
//! `CollaborativeRepository::predict` single-row path returns for the
//! same inputs:
//!
//! * the encoding cache stores the exact `Vec<f32>` that
//!   `NetworkEncoder::encode` (a deterministic function) produces;
//! * the prediction cache stores the exact `f64` a cold call computed;
//! * the batch path goes through `GbdtRegressor::predict`, whose
//!   `gdcm-par` chunked implementation is an ordered map of the same
//!   `predict_row` the single-row path calls.
//!
//! Caches only skip work; they never change it.
//!
//! ## Cache keys
//!
//! Networks are keyed by a 64-bit FNV-1a hash of their structure
//! ([`network_hash`]) — a *content* hash, so structurally identical
//! networks share cache entries no matter how the caller built them. Predictions are keyed by `(device name, network hash)` and
//! invalidated whenever the model or a device signature changes
//! ([`ServingRepository::fit`], [`ServingRepository::re_enroll`],
//! [`ServingRepository::install_refit`]).
//!
//! ## Epoch-guarded inserts
//!
//! A prediction is computed under the repository *read* guard, which is
//! released before the cache insert (holding it across the insert would
//! serialize readers on the cache mutex). That leaves a window where a
//! concurrent fit/re-enroll can clear the cache *before* the insert
//! lands — which used to leave one permanently stale entry. Every
//! computed value therefore carries the model epoch it was computed
//! under, and the insert is discarded (counter
//! `serve/pred_cache_stale_discard`) unless the epoch still matches the
//! cache's own epoch mirror at publish time.

use gdcm_core::{CollaborativeRepository, RepositoryError};
use gdcm_dnn::Network;
use gdcm_ml::{DenseMatrix, FrozenGbdt, GbdtRegressor};
use parking_lot::{Mutex, RwLock};
use std::collections::HashSet;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::lru::LruCache;
use crate::{snapshot, ServeError};

/// Default encoding-cache capacity (entries).
pub const DEFAULT_ENC_CACHE: usize = 1024;
/// Default prediction-cache capacity (entries).
pub const DEFAULT_PRED_CACHE: usize = 8192;

/// Serving-layer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Encoding-cache capacity in entries; 0 disables the cache.
    pub encoding_cache: usize,
    /// Prediction-cache capacity in entries; 0 disables the cache.
    pub prediction_cache: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            encoding_cache: DEFAULT_ENC_CACHE,
            prediction_cache: DEFAULT_PRED_CACHE,
        }
    }
}

impl ServeConfig {
    /// Reads the cache knobs from `GDCM_SERVE_ENC_CACHE` and
    /// `GDCM_SERVE_PRED_CACHE` (entry counts; 0 disables; unset falls
    /// back to the defaults silently, set-but-unparsable falls back
    /// with a structured warning — see [`env_usize`]).
    pub fn from_env() -> Self {
        Self {
            encoding_cache: env_usize("GDCM_SERVE_ENC_CACHE", DEFAULT_ENC_CACHE),
            prediction_cache: env_usize("GDCM_SERVE_PRED_CACHE", DEFAULT_PRED_CACHE),
        }
    }
}

/// Reads one `usize` knob from the environment. Unset is the normal
/// case and stays silent; a *set but unparsable* value is an operator
/// mistake, so it emits a `config_warning` event naming the variable,
/// the rejected value, and the fallback used, and bumps the
/// `serve/config_env_invalid` counter before falling back.
pub(crate) fn env_usize(name: &str, default: usize) -> usize {
    match std::env::var(name) {
        Err(_) => default,
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(v) => v,
            Err(_) => {
                gdcm_obs::counter("serve/config_env_invalid").incr();
                gdcm_obs::event(
                    "config_warning",
                    "serve",
                    &[
                        ("var", gdcm_obs::FieldValue::Str(name.to_string())),
                        ("value", gdcm_obs::FieldValue::Str(raw)),
                        ("fallback", gdcm_obs::FieldValue::U64(default as u64)),
                    ],
                );
                default
            }
        },
    }
}

/// Monotonic cache counters, cheap enough to read per request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Encoding-cache hits.
    pub encoding_hits: u64,
    /// Encoding-cache misses (encodings computed).
    pub encoding_misses: u64,
    /// Prediction-cache hits.
    pub prediction_hits: u64,
    /// Prediction-cache misses (predictions computed).
    pub prediction_misses: u64,
}

/// A deterministic 64-bit FNV-1a [`std::hash::Hasher`]. The std
/// `DefaultHasher` is randomly seeded per process; cache keys need the
/// same bits for the same network on every run.
struct Fnv1a(u64);

impl std::hash::Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for byte in bytes {
            self.0 ^= u64::from(*byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// 64-bit FNV-1a content hash over a network's structure (name, nodes,
/// operators, shapes, wiring) via the graph's `Hash` impl — orders of
/// magnitude cheaper than serializing the graph, which matters because
/// every cache lookup pays this cost.
pub fn network_hash(network: &Network) -> u64 {
    use std::hash::Hash;
    let mut hasher = Fnv1a(0xcbf2_9ce4_8422_2325);
    network.hash(&mut hasher);
    hasher.0
}

/// A thread-safe, caching wrapper around [`CollaborativeRepository`].
///
/// All methods take `&self`; reads share an `RwLock` read guard, writes
/// ([`ServingRepository::onboard_device`] …) take the write guard, so a
/// single instance can back every server worker thread.
#[derive(Debug)]
pub struct ServingRepository {
    repo: RwLock<CollaborativeRepository>,
    encodings: Mutex<LruCache<u64, Arc<Vec<f32>>>>,
    predictions: Mutex<LruCache<(String, u64), f64>>,
    /// Canonical-wire-byte hash → structural [`network_hash`]. The
    /// binary protocol's fast lane: a repeated `Predict` payload can be
    /// answered from the prediction cache without decoding the network
    /// at all. Unlike `predictions`, this never needs invalidation —
    /// equal bytes always decode to equal graphs, so the mapping is a
    /// pure function of the wire encoding.
    wire_index: Mutex<LruCache<u64, u64>>,
    /// Mirror of the repository's model epoch, advanced *under the
    /// `predictions` mutex* whenever a writer invalidates the cache.
    /// Readers compare the epoch they computed under (captured while
    /// holding the repository read guard) against this mirror before
    /// publishing — a mismatch means a fit/re-enroll landed in between
    /// and the value must be discarded, never inserted stale. A mirror
    /// is needed because reading the repository epoch while holding the
    /// `predictions` mutex would invert the writers' `repo → predictions`
    /// lock order and deadlock.
    cache_epoch: AtomicU64,
    enc_hits: AtomicU64,
    enc_misses: AtomicU64,
    pred_hits: AtomicU64,
    pred_misses: AtomicU64,
}

impl ServingRepository {
    /// Wraps a repository with the given cache configuration.
    pub fn new(repo: CollaborativeRepository, config: ServeConfig) -> Self {
        let epoch = repo.model_epoch();
        Self {
            repo: RwLock::new(repo),
            encodings: Mutex::new(LruCache::new(config.encoding_cache)),
            predictions: Mutex::new(LruCache::new(config.prediction_cache)),
            wire_index: Mutex::new(LruCache::new(config.prediction_cache)),
            cache_epoch: AtomicU64::new(epoch),
            enc_hits: AtomicU64::new(0),
            enc_misses: AtomicU64::new(0),
            pred_hits: AtomicU64::new(0),
            pred_misses: AtomicU64::new(0),
        }
    }

    /// Loads an audited snapshot from `path` and wraps it with the
    /// environment cache configuration ([`ServeConfig::from_env`]).
    ///
    /// # Errors
    ///
    /// See [`snapshot::load_repository`].
    pub fn from_snapshot_path(path: &Path) -> Result<Self, ServeError> {
        let repo = snapshot::load_repository(path)?;
        Ok(Self::new(repo, ServeConfig::from_env()))
    }

    /// Saves the current repository state as a snapshot at `path`.
    ///
    /// # Errors
    ///
    /// See [`snapshot::save_repository`].
    pub fn save_snapshot(&self, path: &Path) -> Result<(), ServeError> {
        snapshot::save_repository(&self.repo.read(), path)
    }

    /// Runs `f` against the wrapped repository under the read lock
    /// (uncached access, used by tests and the probe client).
    pub fn with_repository<T>(&self, f: impl FnOnce(&CollaborativeRepository) -> T) -> T {
        f(&self.repo.read())
    }

    /// Returns the cached encoding for `hash`, encoding `network` on a
    /// miss. The repository read guard is held by the caller so the
    /// encoder cannot change underneath the cache.
    fn cached_encoding(
        &self,
        repo: &CollaborativeRepository,
        hash: u64,
        network: &Network,
    ) -> Arc<Vec<f32>> {
        if let Some(enc) = self.encodings.lock().get(&hash) {
            self.enc_hits.fetch_add(1, Ordering::Relaxed);
            gdcm_obs::counter("serve/enc_cache_hit").incr();
            return Arc::clone(enc);
        }
        self.enc_misses.fetch_add(1, Ordering::Relaxed);
        gdcm_obs::counter("serve/enc_cache_miss").incr();
        let enc = Arc::new(repo.encoder().encode(network));
        self.encodings.lock().insert(hash, Arc::clone(&enc));
        enc
    }

    /// Predicts the latency (ms) of `network` on an enrolled device,
    /// serving from the prediction cache when possible.
    ///
    /// # Errors
    ///
    /// Same contract as [`CollaborativeRepository::predict`].
    pub fn predict(&self, device: &str, network: &Network) -> Result<f64, ServeError> {
        self.predict_hooked(device, network, || {})
    }

    /// [`ServingRepository::predict`] with a test hook invoked between
    /// releasing the repository read guard and publishing the computed
    /// value to the prediction cache — the window where a concurrent
    /// fit/re-enroll can make the value stale. The race-regression test
    /// forces that interleaving here; production code calls `predict`,
    /// which passes a no-op.
    #[doc(hidden)]
    pub fn predict_hooked(
        &self,
        device: &str,
        network: &Network,
        between_compute_and_insert: impl FnOnce(),
    ) -> Result<f64, ServeError> {
        let _span = gdcm_obs::span!("serve/predict");
        let hash = network_hash(network);
        let key = (device.to_string(), hash);
        {
            // Request-trace stages are free when no context is active.
            let _stage = gdcm_obs::reqtrace::stage("cache_lookup");
            if let Some(&value) = self.predictions.lock().get(&key) {
                self.pred_hits.fetch_add(1, Ordering::Relaxed);
                gdcm_obs::counter("serve/pred_cache_hit").incr();
                return Ok(value);
            }
        }
        self.pred_misses.fetch_add(1, Ordering::Relaxed);
        gdcm_obs::counter("serve/pred_cache_miss").incr();
        let (value, epoch) = {
            let _stage = gdcm_obs::reqtrace::stage("predict");
            let repo = self.repo.read();
            let hw = repo
                .device_signature(device)
                .ok_or_else(|| RepositoryError::UnknownDevice(device.to_string()))?
                .to_vec();
            let enc = self.cached_encoding(&repo, hash, network);
            let mut row = (*enc).clone();
            row.extend_from_slice(&hw);
            let rows = DenseMatrix::from_rows(std::slice::from_ref(&row));
            // Capture the epoch while still holding the read guard: it
            // names exactly the model this value came from.
            (repo.predict_rows(&rows)?[0], repo.model_epoch())
        };
        between_compute_and_insert();
        let mut cache = self.predictions.lock();
        if self.cache_epoch.load(Ordering::Acquire) == epoch {
            cache.insert(key, value);
        } else {
            gdcm_obs::counter("serve/pred_cache_stale_discard").incr();
        }
        Ok(value)
    }

    /// Answers a `Predict` straight from the prediction cache, keyed by
    /// a hash of the network's *canonical wire bytes* — the binary
    /// protocol's fast lane. Returns `Some` only when both the wire
    /// index and the prediction cache hit; any miss sends the caller
    /// down the ordinary decode-and-dispatch path, which repopulates
    /// both layers. Hits perform exactly the cache-hit accounting of
    /// [`ServingRepository::predict`], so telemetry cannot tell the
    /// lanes apart.
    pub fn predict_wire_hit(&self, device: &str, wire_hash: u64) -> Option<f64> {
        let hash = *self.wire_index.lock().get(&wire_hash)?;
        let _span = gdcm_obs::span!("serve/predict");
        let _stage = gdcm_obs::reqtrace::stage("cache_lookup");
        let key = (device.to_string(), hash);
        let value = *self.predictions.lock().get(&key)?;
        self.pred_hits.fetch_add(1, Ordering::Relaxed);
        gdcm_obs::counter("serve/pred_cache_hit").incr();
        Some(value)
    }

    /// Records that a canonical wire payload hashing to `wire_hash`
    /// decodes to `network`, so future [`predict_wire_hit`] probes for
    /// the same bytes can skip the decode. Called by the server after
    /// a successful slow-path decode; like the prediction cache, the
    /// index is LRU-bounded and disabled at capacity 0.
    ///
    /// [`predict_wire_hit`]: ServingRepository::predict_wire_hit
    pub fn index_wire_hash(&self, wire_hash: u64, network: &Network) {
        if self.wire_index.lock().capacity() == 0 {
            return;
        }
        let hash = network_hash(network);
        self.wire_index.lock().insert(wire_hash, hash);
    }

    /// Predicts many networks for one device in a single call, routed
    /// through the `gdcm-par` chunked batch predictor. Cache hits are
    /// served directly; only misses reach the model, in request order.
    ///
    /// # Errors
    ///
    /// Same contract as [`CollaborativeRepository::predict`]; the whole
    /// batch fails if the device is unknown or the model unfitted.
    pub fn predict_batch(
        &self,
        device: &str,
        networks: &[Network],
    ) -> Result<Vec<f64>, ServeError> {
        self.predict_batch_hooked(device, networks, || {})
    }

    /// [`ServingRepository::predict_batch`] with the same test hook as
    /// [`ServingRepository::predict_hooked`]: invoked after the batch
    /// is computed (read guard released) and before its values are
    /// published to the cache.
    #[doc(hidden)]
    pub fn predict_batch_hooked(
        &self,
        device: &str,
        networks: &[Network],
        between_compute_and_insert: impl FnOnce(),
    ) -> Result<Vec<f64>, ServeError> {
        let _span = gdcm_obs::span!("serve/predict_batch");
        let hashes: Vec<u64> = networks.iter().map(network_hash).collect();
        let mut out = vec![0f64; networks.len()];
        // Positions whose hash missed and was *first seen* there — each
        // unique network is computed (and counted as a miss) once.
        let mut misses: Vec<usize> = Vec::new();
        // Positions repeating a hash already queued in `misses`; they
        // reuse its computed value and count neither as hit nor miss.
        let mut dup_misses: Vec<usize> = Vec::new();
        {
            let _stage = gdcm_obs::reqtrace::stage("cache_lookup");
            let mut queued: HashSet<u64> = HashSet::new();
            // One reusable key for the whole probe loop: mutate the
            // hash half instead of re-allocating the device name per
            // network.
            let mut key = (device.to_string(), 0u64);
            let mut cache = self.predictions.lock();
            for (i, hash) in hashes.iter().enumerate() {
                key.1 = *hash;
                match cache.get(&key) {
                    Some(&value) => {
                        out[i] = value;
                        self.pred_hits.fetch_add(1, Ordering::Relaxed);
                        gdcm_obs::counter("serve/pred_cache_hit").incr();
                    }
                    None if queued.insert(*hash) => {
                        misses.push(i);
                        self.pred_misses.fetch_add(1, Ordering::Relaxed);
                        gdcm_obs::counter("serve/pred_cache_miss").incr();
                    }
                    None => dup_misses.push(i),
                }
            }
        }
        if misses.is_empty() {
            return Ok(out);
        }
        let (predicted, epoch) = {
            let _stage = gdcm_obs::reqtrace::stage("predict");
            let repo = self.repo.read();
            let hw = repo
                .device_signature(device)
                .ok_or_else(|| RepositoryError::UnknownDevice(device.to_string()))?
                .to_vec();
            let width = repo.encoder().len() + repo.signature_size();
            let mut rows = DenseMatrix::with_capacity(misses.len(), width);
            for &i in &misses {
                let enc = self.cached_encoding(&repo, hashes[i], &networks[i]);
                let mut row = (*enc).clone();
                row.extend_from_slice(&hw);
                rows.push_row(&row);
            }
            (repo.predict_rows(&rows)?, repo.model_epoch())
        };
        between_compute_and_insert();
        {
            let mut cache = self.predictions.lock();
            let fresh = self.cache_epoch.load(Ordering::Acquire) == epoch;
            if !fresh {
                gdcm_obs::counter("serve/pred_cache_stale_discard").incr();
            }
            for (&i, &value) in misses.iter().zip(&predicted) {
                out[i] = value;
                if fresh {
                    cache.insert((device.to_string(), hashes[i]), value);
                }
            }
        }
        for &i in &dup_misses {
            let first = misses
                .iter()
                .position(|&j| hashes[j] == hashes[i])
                .expect("every duplicate repeats a queued miss");
            out[i] = predicted[first];
        }
        Ok(out)
    }

    /// Predicts for an unenrolled device from raw signature latencies.
    /// Never cached: the device has no stable identity to key on.
    ///
    /// # Errors
    ///
    /// Same contract as
    /// [`CollaborativeRepository::predict_for_new_device`].
    pub fn predict_for_new_device(
        &self,
        signature_latencies_ms: &[f64],
        network: &Network,
    ) -> Result<f64, ServeError> {
        Ok(self
            .repo
            .read()
            .predict_for_new_device(signature_latencies_ms, network)?)
    }

    /// Enrolls a new device (see
    /// [`CollaborativeRepository::onboard_device`]).
    ///
    /// # Errors
    ///
    /// Propagates the repository's validation errors.
    pub fn onboard_device(
        &self,
        name: &str,
        signature_latencies_ms: &[f64],
    ) -> Result<(), ServeError> {
        Ok(self
            .repo
            .write()
            .onboard_device(name, signature_latencies_ms)?)
    }

    /// Updates an enrolled device's signature, rewriting its
    /// contributed rows (see [`CollaborativeRepository::re_enroll`]).
    /// Drops every cached prediction: the device's feature vector — and
    /// after the next fit, potentially every prediction — changes.
    ///
    /// # Errors
    ///
    /// Propagates the repository's validation errors.
    pub fn re_enroll(&self, name: &str, signature_latencies_ms: &[f64]) -> Result<(), ServeError> {
        let epoch = {
            let mut repo = self.repo.write();
            repo.re_enroll(name, signature_latencies_ms)?;
            repo.model_epoch()
        };
        self.invalidate_predictions(epoch);
        Ok(())
    }

    /// Contributes one measurement (see
    /// [`CollaborativeRepository::contribute`]). The model — and thus
    /// the prediction cache — only changes at the next
    /// [`ServingRepository::fit`].
    ///
    /// # Errors
    ///
    /// Propagates the repository's validation errors.
    pub fn contribute(
        &self,
        device: &str,
        network: &Network,
        latency_ms: f64,
    ) -> Result<(), ServeError> {
        Ok(self.repo.write().contribute(device, network, latency_ms)?)
    }

    /// Refits the model on everything contributed so far and drops the
    /// now-stale prediction cache.
    ///
    /// # Errors
    ///
    /// See [`CollaborativeRepository::fit`].
    pub fn fit(&self) -> Result<(), ServeError> {
        let epoch = {
            let mut repo = self.repo.write();
            repo.fit()?;
            repo.model_epoch()
        };
        self.invalidate_predictions(epoch);
        Ok(())
    }

    /// Installs an externally fitted model pair — the background
    /// refresh's atomic swap. The expensive training happened off-lock;
    /// this only takes the write guard for the pointer swap plus the
    /// cache invalidation, so concurrent readers never block behind a
    /// refit. Returns the new model epoch.
    ///
    /// # Errors
    ///
    /// See [`CollaborativeRepository::install_model`].
    pub fn install_refit(
        &self,
        model: GbdtRegressor,
        frozen: FrozenGbdt,
    ) -> Result<u64, ServeError> {
        let epoch = {
            let mut repo = self.repo.write();
            repo.install_model(model, frozen)?;
            repo.model_epoch()
        };
        self.invalidate_predictions(epoch);
        Ok(epoch)
    }

    /// Drops every cached prediction and advances the cache-epoch
    /// mirror to `epoch` (the repository epoch the caller just
    /// produced under the write guard). `fetch_max`, not `store`: two
    /// concurrent writers release the write guard in a known order but
    /// may reach this point in the opposite one, and the mirror must
    /// never move backwards or a reader from the older model could
    /// publish a stale value.
    fn invalidate_predictions(&self, epoch: u64) {
        let mut cache = self.predictions.lock();
        self.cache_epoch.fetch_max(epoch, Ordering::AcqRel);
        cache.clear();
        gdcm_obs::counter("serve/pred_cache_invalidations").incr();
    }

    /// The wrapped repository's current model epoch (see
    /// [`CollaborativeRepository::model_epoch`]).
    pub fn model_epoch(&self) -> u64 {
        self.repo.read().model_epoch()
    }

    /// Number of enrolled devices.
    pub fn n_devices(&self) -> usize {
        self.repo.read().n_devices()
    }

    /// Number of contributed training rows.
    pub fn n_rows(&self) -> usize {
        self.repo.read().n_rows()
    }

    /// Whether a fitted model is available.
    pub fn is_fitted(&self) -> bool {
        self.repo.read().is_fitted()
    }

    /// Whether a compiled (frozen SoA) model backs the prediction
    /// paths. True exactly when [`ServingRepository::is_fitted`] is:
    /// every successful fit — and every accepted snapshot — carries the
    /// translation-validated frozen artifact.
    pub fn is_frozen(&self) -> bool {
        self.repo.read().frozen_model().is_some()
    }

    /// Names of enrolled devices, sorted.
    pub fn device_names(&self) -> Vec<String> {
        self.repo
            .read()
            .device_names()
            .into_iter()
            .map(str::to_string)
            .collect()
    }

    /// Current cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            encoding_hits: self.enc_hits.load(Ordering::Relaxed),
            encoding_misses: self.enc_misses.load(Ordering::Relaxed),
            prediction_hits: self.pred_hits.load(Ordering::Relaxed),
            prediction_misses: self.pred_misses.load(Ordering::Relaxed),
        }
    }
}
