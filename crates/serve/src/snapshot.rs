//! Versioned snapshot persistence for the collaborative repository.
//!
//! A snapshot is the full serializable repository state
//! ([`gdcm_core::RepositoryParts`]: encoder + config, enrolled devices,
//! training rows with their owners, and the fitted model) wrapped in a
//! `{format, version}` envelope so future layouts can be detected
//! instead of misparsed.
//!
//! Loading is defensive twice over, because a snapshot file is exactly
//! the kind of input the ingestion-validation policy exists for:
//!
//! 1. [`gdcm_core::CollaborativeRepository::from_parts`] replays every
//!    structural invariant (row widths, finite features, signature
//!    consistency, latency validity).
//! 2. When the snapshot carries a fitted model, the `gdcm-audit`
//!    ensemble + dataset passes run against the stored training data,
//!    and the flatcheck pass translation-validates the compiled
//!    (frozen) model the prediction paths will actually run; any
//!    *error*-severity diagnostic rejects the snapshot
//!    ([`crate::ServeError::AuditRejected`]). Warnings are logged
//!    through `gdcm-obs` but do not block serving.

use gdcm_audit::DatasetLints;
use gdcm_core::{CollaborativeRepository, RepositoryParts};
use gdcm_ml::{BinnedMatrix, DenseMatrix, FrozenGbdt, GbdtParams, GbdtRegressor};
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::Path;

use crate::ServeError;

/// Envelope tag identifying the snapshot family.
pub const SNAPSHOT_FORMAT: &str = "gdcm-repository-snapshot";
/// Current snapshot layout version. Bump on any incompatible change to
/// [`RepositoryParts`] or the envelope.
pub const SNAPSHOT_VERSION: u32 = 1;

/// A versioned, serializable repository snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepositorySnapshot {
    /// Always [`SNAPSHOT_FORMAT`].
    pub format: String,
    /// Layout version, [`SNAPSHOT_VERSION`] for snapshots this build
    /// writes.
    pub version: u32,
    /// The repository state proper.
    pub parts: RepositoryParts,
}

impl RepositorySnapshot {
    /// Captures the current state of a repository.
    pub fn capture(repo: &CollaborativeRepository) -> Self {
        Self {
            format: SNAPSHOT_FORMAT.to_string(),
            version: SNAPSHOT_VERSION,
            parts: repo.to_parts(),
        }
    }

    /// Validates the envelope, rebuilds the repository (replaying the
    /// core ingestion validation), and runs the audit passes on the
    /// trained model, if any.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadSnapshot`] on an unknown format or version,
    /// [`ServeError::Repository`] when structural validation fails, and
    /// [`ServeError::AuditRejected`] when `gdcm-audit` finds errors.
    pub fn into_repository(self) -> Result<CollaborativeRepository, ServeError> {
        let _span = gdcm_obs::span!("serve/snapshot_load");
        if self.format != SNAPSHOT_FORMAT {
            return Err(ServeError::BadSnapshot {
                reason: format!("format {:?} is not {SNAPSHOT_FORMAT:?}", self.format),
            });
        }
        if self.version != SNAPSHOT_VERSION {
            return Err(ServeError::BadSnapshot {
                reason: format!(
                    "version {} is not the supported version {SNAPSHOT_VERSION}",
                    self.version
                ),
            });
        }
        let repo = CollaborativeRepository::from_parts(self.parts)?;
        audit_repository(&repo)?;
        gdcm_obs::counter("serve/snapshots_loaded").incr();
        Ok(repo)
    }
}

/// Runs the `gdcm-audit` ensemble + dataset passes over a repository's
/// fitted model and training data, then the flatcheck pass over its
/// compiled (frozen) model. Error-severity findings reject the
/// repository; warnings are re-emitted as `gdcm-obs` events.
///
/// An unfitted repository (no model yet) has no ensemble to audit and
/// passes vacuously — `from_parts` has already validated its rows.
fn audit_repository(repo: &CollaborativeRepository) -> Result<(), ServeError> {
    let Some(model) = repo.model() else {
        return Ok(());
    };
    let _span = gdcm_obs::span!("serve/snapshot_audit");
    let (x_rows, y) = repo.training_data();
    let x = DenseMatrix::from_rows(x_rows);
    audit_model_artifacts(
        "serve/snapshot",
        model,
        &repo.config().gbdt,
        &x,
        y,
        repo.frozen_model(),
    )
    .inspect_err(|_| gdcm_obs::counter("serve/snapshots_rejected").incr())
}

/// The audit + flatcheck gate shared by the snapshot loader and the
/// background refresh controller: runs the `gdcm-audit` ensemble +
/// dataset passes over a trained model and its data, then the flatcheck
/// pass over the compiled (frozen) artifact when present.
/// Error-severity findings return [`ServeError::AuditRejected`];
/// warnings are re-emitted as `gdcm-obs` events. Call sites own their
/// rejection counters.
pub(crate) fn audit_model_artifacts(
    context: &'static str,
    model: &GbdtRegressor,
    gbdt: &GbdtParams,
    x: &DenseMatrix,
    y: &[f32],
    frozen: Option<&FrozenGbdt>,
) -> Result<(), ServeError> {
    // The pipeline lint profile: padded layer-wise encodings make
    // constant and duplicate columns by design.
    let mut report = gdcm_audit::audit_trained_model(
        context,
        model,
        Some(gbdt),
        x,
        y,
        &DatasetLints::pipeline(),
    );
    // Every prediction the repository serves runs the frozen model, so
    // an artifact set is only accepted once that exact compiled form is
    // certified equivalent to the pointer-tree model it claims to
    // compile.
    if let Some(frozen) = frozen {
        let binned = (x.n_cols() == model.n_features() && x.n_rows() > 0)
            .then(|| BinnedMatrix::from_matrix(x, gbdt.max_bins));
        gdcm_audit::check_frozen_gbdt(
            context,
            model,
            frozen,
            binned.as_ref(),
            &mut report.diagnostics,
        );
    }
    if report.error_count() > 0 {
        return Err(ServeError::AuditRejected {
            diagnostics: report.diagnostics.iter().map(|d| d.to_string()).collect(),
        });
    }
    for warning in &report.diagnostics {
        gdcm_obs::event(
            "model_audit_warning",
            "serve",
            &[
                ("context", gdcm_obs::FieldValue::Str(context.to_string())),
                ("diagnostic", gdcm_obs::FieldValue::Str(warning.to_string())),
            ],
        );
    }
    Ok(())
}

/// Saves a repository snapshot as JSON at `path`, atomically: the bytes
/// are written and fsynced to a `.tmp` sibling, then renamed over the
/// destination, so a crash mid-save can never leave a torn file where a
/// valid snapshot used to be — readers observe either the old snapshot
/// or the new one, nothing in between.
///
/// # Errors
///
/// Fails on serialization or filesystem errors.
pub fn save_repository(repo: &CollaborativeRepository, path: &Path) -> Result<(), ServeError> {
    let _span = gdcm_obs::span!("serve/snapshot_save");
    let snapshot = RepositorySnapshot::capture(repo);
    let json = serde_json::to_string(&snapshot).map_err(|e| ServeError::Json(e.to_string()))?;
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(json.as_bytes())?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    // Durability of the rename itself: fsync the parent directory when
    // it is addressable. Best-effort — some platforms refuse directory
    // handles, and the rename above is already atomic for crash
    // *consistency*; this only narrows the window where the rename
    // could be lost entirely.
    if let Some(parent) = path.parent() {
        let dir = if parent.as_os_str().is_empty() {
            Path::new(".")
        } else {
            parent
        };
        if let Ok(handle) = std::fs::File::open(dir) {
            let _ = handle.sync_all();
        }
    }
    gdcm_obs::counter("serve/snapshots_saved").incr();
    Ok(())
}

/// Loads — and audits — a repository snapshot from `path`.
///
/// # Errors
///
/// See [`RepositorySnapshot::into_repository`], plus I/O and JSON
/// errors.
pub fn load_repository(path: &Path) -> Result<CollaborativeRepository, ServeError> {
    let json = std::fs::read_to_string(path)?;
    let snapshot: RepositorySnapshot =
        serde_json::from_str(&json).map_err(|e| ServeError::Json(e.to_string()))?;
    snapshot.into_repository()
}
