//! Durable write-ahead log for repository mutations.
//!
//! Streaming ingestion must not lose an acknowledged contribution to a
//! crash, but fsyncing a full snapshot per mutation would bound write
//! throughput by the snapshot size. The classic fix is a write-ahead
//! log: every mutating request is framed, checksummed, and fsynced to
//! an append-only file *before* it is applied and acknowledged. On
//! startup the log is replayed on top of the latest snapshot; after a
//! successful background refit the state is re-snapshotted and the log
//! truncated ([`WriteAheadLog::compact`]).
//!
//! ## Record framing
//!
//! ```text
//! [u32 LE payload length][u64 LE checksum][payload bytes]
//! ```
//!
//! The payload is the [`WalRecord`] in the same self-describing binary
//! encoding the wire protocol uses ([`crate::protocol::wire`]), and the
//! checksum is [`wire_hash`] over the payload bytes. Recovery scans
//! records until the first frame that is short, oversized, or fails its
//! checksum — that frame and everything after it is a torn tail from a
//! crash mid-append, and is truncated away. Records before it were
//! fully written (appends are fsynced before the ack, so an
//! acknowledged record is never in the torn region).
//!
//! ## At-least-once replay
//!
//! A crash *between* the fsync and the ack leaves a durable record the
//! client never saw confirmed; replay applies it anyway. Mutations are
//! idempotent enough for this to be safe: a replayed `onboard` of an
//! existing device is rejected by the repository and skipped, and a
//! replayed `contribute` adds a row the client believed it had sent.
//! Replay never *fails* on a rejection: any record the repository
//! refuses ([`replay_record`]) is skipped with a structured warning, so
//! a stray durable record can never prevent the server from starting.
//! (Rejections are rare by construction — a record whose apply is
//! rejected at ingest time is rolled back out of the log before the
//! error is returned, see [`WriteAheadLog::rollback_to`].)

use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::protocol::wire;
use crate::ServeError;
use gdcm_dnn::Network;

/// Bytes before the payload: `u32` length + `u64` checksum.
const RECORD_HEADER_LEN: usize = 12;

/// One durable repository mutation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WalRecord {
    /// A measured latency contribution ([`crate::protocol::Request::Contribute`]).
    Contribute {
        /// Enrolled device name.
        device: String,
        /// The measured network.
        network: Network,
        /// Measured latency (ms).
        latency_ms: f64,
    },
    /// A device enrollment ([`crate::protocol::Request::OnboardDevice`]).
    Onboard {
        /// Device name.
        device: String,
        /// Measured signature-set latencies (ms).
        signature_ms: Vec<f64>,
    },
    /// A signature update ([`crate::protocol::Request::ReEnroll`]).
    ReEnroll {
        /// Enrolled device name.
        device: String,
        /// Fresh signature-set latencies (ms).
        signature_ms: Vec<f64>,
    },
}

/// What [`WriteAheadLog::open`] found in an existing log file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalRecovery {
    /// Intact records recovered (and returned for replay).
    pub replayed: usize,
    /// Bytes of torn tail discarded (0 after a clean shutdown).
    pub truncated_bytes: u64,
}

/// An append-only, checksummed, fsync-before-ack mutation log.
#[derive(Debug)]
pub struct WriteAheadLog {
    file: File,
    path: PathBuf,
    /// Records appended since the last [`WriteAheadLog::compact`]
    /// (including recovered ones).
    pending: u64,
    /// Byte length of the valid record prefix — the file length, except
    /// transiently inside a failed append.
    len: u64,
}

/// A position in the log captured before an append, so a record whose
/// apply was rejected can be rolled back ([`WriteAheadLog::rollback_to`]).
#[derive(Debug, Clone, Copy)]
pub struct WalMark {
    len: u64,
    pending: u64,
}

impl WriteAheadLog {
    /// Opens (creating if absent) the log at `path`, scans it for
    /// intact records, truncates any torn tail, and returns the
    /// recovered records for replay.
    ///
    /// # Errors
    ///
    /// Fails on filesystem errors; a corrupt *tail* is recovery, not an
    /// error.
    pub fn open(path: &Path) -> Result<(Self, Vec<WalRecord>, WalRecovery), ServeError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let (records, valid_len) = scan(&bytes);
        let truncated = bytes.len() as u64 - valid_len;
        if truncated > 0 {
            file.set_len(valid_len)?;
            file.sync_all()?;
            gdcm_obs::event(
                "wal_truncated",
                "serve",
                &[
                    (
                        "path",
                        gdcm_obs::FieldValue::Str(path.display().to_string()),
                    ),
                    ("bytes", gdcm_obs::FieldValue::U64(truncated)),
                ],
            );
        }
        file.seek(SeekFrom::Start(valid_len))?;
        let recovery = WalRecovery {
            replayed: records.len(),
            truncated_bytes: truncated,
        };
        let wal = Self {
            file,
            path: path.to_path_buf(),
            pending: records.len() as u64,
            len: valid_len,
        };
        Ok((wal, records, recovery))
    }

    /// Appends one record and fsyncs it to disk. Only after this
    /// returns may the mutation be applied and acknowledged.
    ///
    /// # Errors
    ///
    /// Fails on encoding or filesystem errors; on failure nothing was
    /// acknowledged, and any partial frame is a torn tail the next
    /// [`WriteAheadLog::open`] discards.
    pub fn append(&mut self, record: &WalRecord) -> Result<(), ServeError> {
        let mut payload = Vec::new();
        wire::append_value(&mut payload, record).map_err(|e| ServeError::Wire(e.to_string()))?;
        let mut frame = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&wire::fast::wire_hash(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame)?;
        self.file.sync_data()?;
        self.pending += 1;
        self.len += frame.len() as u64;
        gdcm_obs::counter("serve/wal_appends").incr();
        Ok(())
    }

    /// Captures the current log position; pair with
    /// [`WriteAheadLog::rollback_to`] around an append whose apply may
    /// be rejected.
    pub fn mark(&self) -> WalMark {
        WalMark {
            len: self.len,
            pending: self.pending,
        }
    }

    /// Truncates the log back to `mark`, undoing every append since it
    /// was captured. Used when the repository rejects a mutation whose
    /// record is already durable: replaying the rejected record on the
    /// next startup would be skipped anyway, but leaving it in the log
    /// wastes replay work forever, so it is cut out here while the
    /// caller still holds the log lock.
    ///
    /// # Errors
    ///
    /// Fails on filesystem errors, in which case the record stays in
    /// the log and replay's skip-and-warn path handles it.
    pub fn rollback_to(&mut self, mark: WalMark) -> Result<(), ServeError> {
        self.file.set_len(mark.len)?;
        self.file.seek(SeekFrom::Start(mark.len))?;
        self.file.sync_all()?;
        self.len = mark.len;
        self.pending = mark.pending;
        gdcm_obs::counter("serve/wal_rollbacks").incr();
        Ok(())
    }

    /// Truncates the log after its records have been folded into a
    /// durable snapshot. The caller must have completed — and synced —
    /// that snapshot first.
    ///
    /// # Errors
    ///
    /// Fails on filesystem errors.
    pub fn compact(&mut self) -> Result<(), ServeError> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.sync_all()?;
        self.pending = 0;
        self.len = 0;
        gdcm_obs::counter("serve/wal_compactions").incr();
        Ok(())
    }

    /// Records appended (or recovered) since the last compaction.
    pub fn pending(&self) -> u64 {
        self.pending
    }

    /// The log's path on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Scans `bytes` for intact framed records. Returns the decoded records
/// and the byte length of the valid prefix; everything past it is torn.
fn scan(bytes: &[u8]) -> (Vec<WalRecord>, u64) {
    let mut records = Vec::new();
    let mut offset = 0usize;
    while bytes.len() - offset >= RECORD_HEADER_LEN {
        let len_bytes: [u8; 4] = bytes[offset..offset + 4]
            .try_into()
            .expect("slice is exactly 4 bytes");
        let payload_len = u32::from_le_bytes(len_bytes) as usize;
        if payload_len > wire::MAX_PAYLOAD {
            break;
        }
        let checksum_bytes: [u8; 8] = bytes[offset + 4..offset + RECORD_HEADER_LEN]
            .try_into()
            .expect("slice is exactly 8 bytes");
        let checksum = u64::from_le_bytes(checksum_bytes);
        let start = offset + RECORD_HEADER_LEN;
        let Some(end) = start.checked_add(payload_len).filter(|&e| e <= bytes.len()) else {
            break;
        };
        let payload = &bytes[start..end];
        if wire::fast::wire_hash(payload) != checksum {
            break;
        }
        let Ok(record) = wire::decode_value::<WalRecord>(payload) else {
            break;
        };
        records.push(record);
        offset = end;
    }
    (records, offset as u64)
}

/// Applies one recovered record to a repository, mapping *every*
/// rejection to a skip — replay is at-least-once, and a record the
/// repository refuses (e.g. an `Onboard` for a device the snapshot
/// already contains, because the record was made durable twice across a
/// compaction crash) must never be able to abort startup. Skips emit a
/// structured warning and bump `serve/wal_replay_skipped` so a log that
/// disagrees with its snapshot is visible, not silent.
///
/// Returns `true` when the record mutated the repository.
pub fn replay_record(repo: &mut gdcm_core::CollaborativeRepository, record: &WalRecord) -> bool {
    let (kind, result) = match record {
        WalRecord::Contribute {
            device,
            network,
            latency_ms,
        } => ("contribute", repo.contribute(device, network, *latency_ms)),
        WalRecord::Onboard {
            device,
            signature_ms,
        } => ("onboard", repo.onboard_device(device.clone(), signature_ms)),
        WalRecord::ReEnroll {
            device,
            signature_ms,
        } => ("re_enroll", repo.re_enroll(device, signature_ms)),
    };
    match result {
        Ok(()) => true,
        Err(e) => {
            gdcm_obs::counter("serve/wal_replay_skipped").incr();
            gdcm_obs::event(
                "wal_replay_skipped",
                "serve",
                &[
                    ("record", gdcm_obs::FieldValue::Str(kind.to_string())),
                    ("error", gdcm_obs::FieldValue::Str(e.to_string())),
                ],
            );
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdcm_core::CostDataset;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("gdcm-wal-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(format!("{name}-{}.wal", std::process::id()))
    }

    fn sample_records() -> Vec<WalRecord> {
        let data = CostDataset::tiny(11, 2, 3);
        vec![
            WalRecord::Onboard {
                device: "pixel".into(),
                signature_ms: vec![1.0, 2.0, 3.0],
            },
            WalRecord::Contribute {
                device: "pixel".into(),
                network: data.suite[0].network.clone(),
                latency_ms: 17.5,
            },
            WalRecord::ReEnroll {
                device: "pixel".into(),
                signature_ms: vec![4.0, 5.0, 6.0],
            },
        ]
    }

    #[test]
    fn append_reopen_round_trips_records() {
        let path = scratch("round-trip");
        let _ = std::fs::remove_file(&path);
        let records = sample_records();
        {
            let (mut wal, recovered, recovery) = WriteAheadLog::open(&path).expect("fresh log");
            assert!(recovered.is_empty());
            assert_eq!(recovery, WalRecovery::default());
            for r in &records {
                wal.append(r).expect("append");
            }
            assert_eq!(wal.pending(), 3);
        }
        let (wal, recovered, recovery) = WriteAheadLog::open(&path).expect("reopen");
        assert_eq!(recovered, records);
        assert_eq!(recovery.replayed, 3);
        assert_eq!(recovery.truncated_bytes, 0);
        assert_eq!(wal.pending(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_and_prefix_survives() {
        let path = scratch("torn-tail");
        let _ = std::fs::remove_file(&path);
        let records = sample_records();
        {
            let (mut wal, _, _) = WriteAheadLog::open(&path).expect("fresh log");
            for r in &records {
                wal.append(r).expect("append");
            }
        }
        // Simulate a crash mid-append: chop bytes off the last frame.
        let full = std::fs::metadata(&path).expect("written").len();
        let torn_len = full - 5;
        OpenOptions::new()
            .write(true)
            .open(&path)
            .expect("reopen raw")
            .set_len(torn_len)
            .expect("truncate");
        let (wal, recovered, recovery) = WriteAheadLog::open(&path).expect("recover");
        assert_eq!(recovered, records[..2]);
        assert_eq!(recovery.replayed, 2);
        assert!(recovery.truncated_bytes > 0);
        // The file itself was healed: a further reopen is clean.
        drop(wal);
        let (_, recovered, recovery) = WriteAheadLog::open(&path).expect("clean reopen");
        assert_eq!(recovered.len(), 2);
        assert_eq!(recovery.truncated_bytes, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_checksum_cuts_the_log_there() {
        let path = scratch("bad-checksum");
        let _ = std::fs::remove_file(&path);
        let records = sample_records();
        let second_start;
        {
            let (mut wal, _, _) = WriteAheadLog::open(&path).expect("fresh log");
            wal.append(&records[0]).expect("append");
            second_start = std::fs::metadata(&path).expect("meta").len();
            wal.append(&records[1]).expect("append");
            wal.append(&records[2]).expect("append");
        }
        // Flip one payload byte of the second record: it and everything
        // after it is discarded, the first record survives.
        let mut bytes = std::fs::read(&path).expect("read");
        let target = second_start as usize + RECORD_HEADER_LEN + 1;
        bytes[target] ^= 0xff;
        std::fs::write(&path, &bytes).expect("corrupt");
        let (_, recovered, recovery) = WriteAheadLog::open(&path).expect("recover");
        assert_eq!(recovered, records[..1]);
        assert_eq!(recovery.replayed, 1);
        assert!(recovery.truncated_bytes > 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compact_empties_the_log() {
        let path = scratch("compact");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _, _) = WriteAheadLog::open(&path).expect("fresh log");
        for r in &sample_records() {
            wal.append(r).expect("append");
        }
        wal.compact().expect("compact");
        assert_eq!(wal.pending(), 0);
        assert_eq!(std::fs::metadata(&path).expect("meta").len(), 0);
        // Appends keep working after compaction.
        wal.append(&sample_records()[0]).expect("append");
        drop(wal);
        let (_, recovered, _) = WriteAheadLog::open(&path).expect("reopen");
        assert_eq!(recovered.len(), 1);
        let _ = std::fs::remove_file(&path);
    }
}
