//! End-to-end tests of the length-prefixed binary protocol: real
//! sockets, pipelining, hardening against hostile framing, and both
//! protocols interleaved on one listener.

use gdcm_core::signature::{MutualInfoSelector, SignatureSelector};
use gdcm_core::{CollaborativeRepository, CostDataset, RepositoryConfig};
use gdcm_dnn::Network;
use gdcm_ml::GbdtParams;
use gdcm_serve::protocol::{codes, wire};
use gdcm_serve::{
    serve, BinClient, Client, Request, Response, ServeConfig, ServerConfig, ServingRepository,
};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

fn fitted_repository(seed: u64) -> (CollaborativeRepository, Vec<Network>) {
    let data = CostDataset::tiny(seed, 6, 6);
    let all: Vec<usize> = (0..data.n_devices()).collect();
    let signature = MutualInfoSelector::default().select(&data.db, &all, 3);
    let mut repo = CollaborativeRepository::new(
        data.encoder.clone(),
        signature.len(),
        RepositoryConfig {
            gbdt: GbdtParams {
                n_estimators: 20,
                ..GbdtParams::default()
            },
            min_rows: 8,
        },
    );
    let open: Vec<usize> = (0..data.n_networks())
        .filter(|n| !signature.contains(n))
        .collect();
    for d in 0..data.n_devices() {
        let lat: Vec<f64> = signature.iter().map(|&n| data.db.latency(d, n)).collect();
        let name = data.devices[d].model.clone();
        repo.onboard_device(name.clone(), &lat).unwrap();
        for &n in open.iter().cycle().skip(d % open.len()).take(8) {
            repo.contribute(&name, &data.suite[n].network, data.db.latency(d, n))
                .unwrap();
        }
    }
    repo.fit().unwrap();
    let nets = open
        .iter()
        .map(|&n| data.suite[n].network.clone())
        .collect();
    (repo, nets)
}

/// Reads one raw response frame (header + payload bytes) off a stream.
fn read_raw_frame(stream: &mut TcpStream) -> std::io::Result<(u64, Vec<u8>)> {
    let mut header = [0u8; wire::FRAME_HEADER_LEN];
    stream.read_exact(&mut header)?;
    let header = wire::decode_frame_header(&header).expect("12 bytes decode");
    let mut payload = vec![0u8; header.payload_len];
    stream.read_exact(&mut payload)?;
    Ok((header.request_id, payload))
}

fn run_binary_session(workers: usize, seed: u64) {
    let (repo, nets) = fitted_repository(seed);
    let serving = ServingRepository::new(repo, ServeConfig::default());
    let device = serving.device_names()[0].clone();
    let expected: Vec<f64> = nets
        .iter()
        .map(|n| serving.with_repository(|r| r.predict(&device, n)).unwrap())
        .collect();

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    std::thread::scope(|scope| {
        let serving = &serving;
        let server = scope.spawn(move || serve(listener, serving, ServerConfig { workers }));

        let mut client = BinClient::connect_with_retry(addr, Duration::from_secs(10)).unwrap();
        assert!(matches!(
            client.request(&Request::Ping).unwrap(),
            Response::Pong
        ));

        // Sequential predictions: bit-identical to the local path, ids
        // echoed per frame.
        for (net, want) in nets.iter().zip(&expected) {
            let id = client
                .send(&Request::Predict {
                    device: device.clone(),
                    network: net.clone(),
                })
                .unwrap();
            let (echoed, resp) = client.recv().unwrap();
            assert_eq!(echoed, id, "response must carry its request's id");
            match resp {
                Response::Prediction { latency_ms } => {
                    assert_eq!(latency_ms.to_bits(), want.to_bits());
                }
                other => panic!("predict answered {other:?}"),
            }
        }

        // Pipelined predictions: same bits, answers in request order.
        let requests: Vec<Request> = nets
            .iter()
            .map(|net| Request::Predict {
                device: device.clone(),
                network: net.clone(),
            })
            .collect();
        let responses = client.pipeline(&requests, 4).unwrap();
        assert_eq!(responses.len(), nets.len());
        for (resp, want) in responses.iter().zip(&expected) {
            match resp {
                Response::Prediction { latency_ms } => {
                    assert_eq!(latency_ms.to_bits(), want.to_bits());
                }
                other => panic!("pipelined predict answered {other:?}"),
            }
        }

        // Errors answer in-band with stable codes; connection survives.
        match client
            .request(&Request::Predict {
                device: "no-such-device".to_string(),
                network: nets[0].clone(),
            })
            .unwrap()
        {
            Response::Error { code, message } => {
                assert_eq!(code, codes::UNKNOWN_DEVICE);
                assert!(message.contains("no-such-device"));
            }
            other => panic!("unknown device answered {other:?}"),
        }

        // Batch over binary — still the same bits.
        match client
            .request(&Request::PredictBatch {
                device: device.clone(),
                networks: nets.clone(),
            })
            .unwrap()
        {
            Response::Predictions { latency_ms } => {
                let got: Vec<u64> = latency_ms.iter().map(|v| v.to_bits()).collect();
                let want: Vec<u64> = expected.iter().map(|v| v.to_bits()).collect();
                assert_eq!(got, want);
            }
            other => panic!("batch answered {other:?}"),
        }

        assert!(matches!(
            client.request(&Request::Shutdown).unwrap(),
            Response::ShuttingDown
        ));
        drop(client);
        let summary = server.join().expect("server thread").expect("serve result");
        assert!(summary.connections >= 1);
        assert!(summary.requests as usize >= 2 * nets.len() + 4);
        assert_eq!(summary.request_errors, 1);
    });
}

#[test]
fn binary_session_end_to_end_single_shard() {
    run_binary_session(1, 41);
}

#[test]
fn binary_session_end_to_end_sharded() {
    run_binary_session(2, 42);
}

#[test]
fn both_protocols_share_one_listener() {
    let (repo, nets) = fitted_repository(43);
    let serving = ServingRepository::new(repo, ServeConfig::default());
    let device = serving.device_names()[0].clone();
    let expected = serving
        .with_repository(|r| r.predict(&device, &nets[0]))
        .unwrap();

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    std::thread::scope(|scope| {
        let serving = &serving;
        let server = scope.spawn(move || serve(listener, serving, ServerConfig { workers: 2 }));

        // Open both clients concurrently: the listener sniffs each
        // connection's first byte independently.
        let mut json = Client::connect_with_retry(addr, Duration::from_secs(10)).unwrap();
        let mut bin = BinClient::connect_with_retry(addr, Duration::from_secs(10)).unwrap();
        let req = Request::Predict {
            device: device.clone(),
            network: nets[0].clone(),
        };
        for _ in 0..3 {
            match json.request(&req).unwrap() {
                Response::Prediction { latency_ms } => {
                    assert_eq!(latency_ms.to_bits(), expected.to_bits());
                }
                other => panic!("json predict answered {other:?}"),
            }
            match bin.request(&req).unwrap() {
                Response::Prediction { latency_ms } => {
                    assert_eq!(latency_ms.to_bits(), expected.to_bits());
                }
                other => panic!("binary predict answered {other:?}"),
            }
        }
        drop(bin);
        assert!(matches!(
            json.request(&Request::Shutdown).unwrap(),
            Response::ShuttingDown
        ));
        drop(json);
        server.join().expect("server thread").expect("serve result");
    });
}

#[test]
fn oversized_length_prefix_is_rejected_before_allocation() {
    let (repo, _) = fitted_repository(44);
    let serving = ServingRepository::new(repo, ServeConfig::default());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    std::thread::scope(|scope| {
        let serving = &serving;
        let server = scope.spawn(move || serve(listener, serving, ServerConfig { workers: 1 }));

        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        stream.write_all(&wire::preamble()).unwrap();
        // A header declaring u32::MAX payload bytes — far beyond the
        // cap, and far beyond what will ever be sent.
        let mut header = Vec::new();
        header.extend_from_slice(&u32::MAX.to_le_bytes());
        header.extend_from_slice(&777u64.to_le_bytes());
        stream.write_all(&header).unwrap();
        stream.flush().unwrap();

        // The server answers a correctly framed error with the stable
        // code, echoing the offending id, *before* reading (or
        // allocating) the declared payload...
        let (id, payload) = read_raw_frame(&mut stream).unwrap();
        assert_eq!(id, 777);
        match wire::decode_value::<Response>(&payload).unwrap() {
            Response::Error { code, .. } => assert_eq!(code, codes::FRAME_TOO_LARGE),
            other => panic!("oversized frame answered {other:?}"),
        }
        // ...then closes the connection: framing can't be trusted.
        let mut rest = Vec::new();
        assert_eq!(stream.read_to_end(&mut rest).unwrap(), 0);
        drop(stream);

        // The server itself is unharmed.
        let mut client = BinClient::connect_with_retry(addr, Duration::from_secs(10)).unwrap();
        assert!(matches!(
            client.request(&Request::Ping).unwrap(),
            Response::Pong
        ));
        assert!(matches!(
            client.request(&Request::Shutdown).unwrap(),
            Response::ShuttingDown
        ));
        drop(client);
        let summary = server.join().expect("server thread").expect("serve result");
        assert_eq!(summary.request_errors, 1);
    });
}

#[test]
fn truncated_frame_mid_read_closes_cleanly() {
    let (repo, _) = fitted_repository(45);
    let serving = ServingRepository::new(repo, ServeConfig::default());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    std::thread::scope(|scope| {
        let serving = &serving;
        let server = scope.spawn(move || serve(listener, serving, ServerConfig { workers: 1 }));

        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(&wire::preamble()).unwrap();
        // Declare 100 payload bytes, deliver 10, hang up the write half.
        let mut partial = Vec::new();
        partial.extend_from_slice(&100u32.to_le_bytes());
        partial.extend_from_slice(&5u64.to_le_bytes());
        partial.extend_from_slice(&[0xAB; 10]);
        stream.write_all(&partial).unwrap();
        stream.flush().unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();

        // Clean close: no response for the frame that never completed,
        // no wedged connection — just EOF.
        let mut rest = Vec::new();
        assert_eq!(stream.read_to_end(&mut rest).unwrap(), 0);
        drop(stream);

        // And a truncated *header* at EOF closes just as cleanly.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(&wire::preamble()).unwrap();
        stream.write_all(&[0x01, 0x02, 0x03]).unwrap();
        stream.flush().unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut rest = Vec::new();
        assert_eq!(stream.read_to_end(&mut rest).unwrap(), 0);
        drop(stream);

        let mut client = BinClient::connect_with_retry(addr, Duration::from_secs(10)).unwrap();
        assert!(matches!(
            client.request(&Request::Shutdown).unwrap(),
            Response::ShuttingDown
        ));
        drop(client);
        let summary = server.join().expect("server thread").expect("serve result");
        // Neither truncated connection produced a request or an error.
        assert_eq!(summary.request_errors, 0);
        assert_eq!(summary.requests, 1);
    });
}

#[test]
fn repeated_predicts_stay_fresh_across_re_enroll() {
    // Repeating one Predict payload over the binary protocol engages
    // the server's wire fast lane (answers from cache without decoding
    // the network). A re-enroll must invalidate those answers too: the
    // lane may only ever serve what the slow path would.
    let (repo, nets) = fitted_repository(47);
    let serving = ServingRepository::new(repo, ServeConfig::default());
    let device = serving.device_names()[0].clone();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    std::thread::scope(|scope| {
        let serving = &serving;
        let server = scope.spawn(move || serve(listener, serving, ServerConfig { workers: 1 }));

        let mut client = BinClient::connect_with_retry(addr, Duration::from_secs(10)).unwrap();
        let req = Request::Predict {
            device: device.clone(),
            network: nets[0].clone(),
        };
        let before = serving
            .with_repository(|r| r.predict(&device, &nets[0]))
            .unwrap();
        for _ in 0..3 {
            match client.request(&req).unwrap() {
                Response::Prediction { latency_ms } => {
                    assert_eq!(latency_ms.to_bits(), before.to_bits());
                }
                other => panic!("predict answered {other:?}"),
            }
        }

        // Shift the device's signature through the wire, then repeat
        // the byte-for-byte identical Predict payload.
        let shifted: Vec<f64> = serving
            .with_repository(|r| r.device_signature(&device).unwrap().to_vec())
            .iter()
            .map(|v| f64::from(*v) * 2.0 + 1.0)
            .collect();
        assert!(matches!(
            client
                .request(&Request::ReEnroll {
                    device: device.clone(),
                    signature_ms: shifted,
                })
                .unwrap(),
            Response::Ok
        ));
        let after = serving
            .with_repository(|r| r.predict(&device, &nets[0]))
            .unwrap();
        match client.request(&req).unwrap() {
            Response::Prediction { latency_ms } => {
                assert_eq!(
                    latency_ms.to_bits(),
                    after.to_bits(),
                    "fast lane served a stale pre-re-enroll prediction"
                );
            }
            other => panic!("predict answered {other:?}"),
        }

        assert!(matches!(
            client.request(&Request::Shutdown).unwrap(),
            Response::ShuttingDown
        ));
        drop(client);
        server.join().expect("server thread").expect("serve result");
    });
}

#[test]
fn garbage_payload_does_not_corrupt_neighbouring_pipelined_responses() {
    let (repo, nets) = fitted_repository(46);
    let serving = ServingRepository::new(repo, ServeConfig::default());
    let device = serving.device_names()[0].clone();
    let expected = serving
        .with_repository(|r| r.predict(&device, &nets[0]))
        .unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    std::thread::scope(|scope| {
        let serving = &serving;
        let server = scope.spawn(move || serve(listener, serving, ServerConfig { workers: 1 }));

        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        stream.write_all(&wire::preamble()).unwrap();

        // Three frames in one burst: valid, garbage payload, valid.
        let predict = Request::Predict {
            device: device.clone(),
            network: nets[0].clone(),
        };
        let mut burst = Vec::new();
        wire::append_frame(&mut burst, 1, &predict).unwrap();
        wire::append_raw_frame(&mut burst, 2, &[0xFF, 0xFE, 0xFD, 0xFC]).unwrap();
        wire::append_frame(&mut burst, 3, &predict).unwrap();
        stream.write_all(&burst).unwrap();
        stream.flush().unwrap();

        // All three answered, in order, each tagged with its own id;
        // the in-band parse error for frame 2 leaves frames 1 and 3
        // bit-identical to the clean path.
        for want_id in [1u64, 2, 3] {
            let (id, payload) = read_raw_frame(&mut stream).unwrap();
            assert_eq!(id, want_id);
            match (want_id, wire::decode_value::<Response>(&payload).unwrap()) {
                (1 | 3, Response::Prediction { latency_ms }) => {
                    assert_eq!(latency_ms.to_bits(), expected.to_bits());
                }
                (2, Response::Error { code, .. }) => assert_eq!(code, codes::PARSE_ERROR),
                (i, other) => panic!("frame {i} answered {other:?}"),
            }
        }
        drop(stream);

        let mut client = BinClient::connect_with_retry(addr, Duration::from_secs(10)).unwrap();
        assert!(matches!(
            client.request(&Request::Shutdown).unwrap(),
            Response::ShuttingDown
        ));
        drop(client);
        let summary = server.join().expect("server thread").expect("serve result");
        assert_eq!(summary.request_errors, 1);
    });
}
