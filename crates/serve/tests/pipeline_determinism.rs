//! Pipelined responses must be byte-identical to sequential ones, at
//! any `GDCM_THREADS` setting.
//!
//! `gdcm_par::set_threads` retunes the process-global pool, so this file
//! holds exactly one `#[test]` — a second test running concurrently in
//! the same binary would race the thread budget.
//!
//! The comparison is on the *raw response frames* (header + payload
//! bytes), not decoded values: the wire encoding itself must be
//! deterministic for bit-identity to mean anything over the network.

use gdcm_core::signature::{MutualInfoSelector, SignatureSelector};
use gdcm_core::{CollaborativeRepository, CostDataset, RepositoryConfig};
use gdcm_dnn::Network;
use gdcm_ml::GbdtParams;
use gdcm_serve::protocol::wire;
use gdcm_serve::{
    serve, BinClient, Request, Response, ServeConfig, ServerConfig, ServingRepository,
};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

fn fitted_repository(seed: u64) -> (CollaborativeRepository, Vec<Network>) {
    let data = CostDataset::tiny(seed, 6, 6);
    let all: Vec<usize> = (0..data.n_devices()).collect();
    let signature = MutualInfoSelector::default().select(&data.db, &all, 3);
    let mut repo = CollaborativeRepository::new(
        data.encoder.clone(),
        signature.len(),
        RepositoryConfig {
            gbdt: GbdtParams {
                n_estimators: 20,
                ..GbdtParams::default()
            },
            min_rows: 8,
        },
    );
    let open: Vec<usize> = (0..data.n_networks())
        .filter(|n| !signature.contains(n))
        .collect();
    for d in 0..data.n_devices() {
        let lat: Vec<f64> = signature.iter().map(|&n| data.db.latency(d, n)).collect();
        let name = data.devices[d].model.clone();
        repo.onboard_device(name.clone(), &lat).unwrap();
        for &n in open.iter().cycle().skip(d % open.len()).take(8) {
            repo.contribute(&name, &data.suite[n].network, data.db.latency(d, n))
                .unwrap();
        }
    }
    repo.fit().unwrap();
    let nets = open
        .iter()
        .map(|&n| data.suite[n].network.clone())
        .collect();
    (repo, nets)
}

/// Reads one complete raw response frame off a blocking stream.
fn read_raw_frame(stream: &mut TcpStream) -> Vec<u8> {
    let mut frame = vec![0u8; wire::FRAME_HEADER_LEN];
    stream.read_exact(&mut frame).unwrap();
    let header = wire::decode_frame_header(&frame).unwrap();
    let mut payload = vec![0u8; header.payload_len];
    stream.read_exact(&mut payload).unwrap();
    frame.extend_from_slice(&payload);
    frame
}

/// Encodes the request stream as frames with ids `1..=n`.
fn encode_frames(requests: &[Request]) -> Vec<Vec<u8>> {
    requests
        .iter()
        .enumerate()
        .map(|(i, req)| {
            let mut frame = Vec::new();
            wire::append_frame(&mut frame, i as u64 + 1, req).unwrap();
            frame
        })
        .collect()
}

/// Sends every frame one at a time, reading each answer before the
/// next request goes out.
fn sequential_frames(addr: std::net::SocketAddr, frames: &[Vec<u8>]) -> Vec<Vec<u8>> {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    stream.write_all(&wire::preamble()).unwrap();
    frames
        .iter()
        .map(|frame| {
            stream.write_all(frame).unwrap();
            stream.flush().unwrap();
            read_raw_frame(&mut stream)
        })
        .collect()
}

/// Blasts every frame in one burst, then reads all the answers.
fn pipelined_frames(addr: std::net::SocketAddr, frames: &[Vec<u8>]) -> Vec<Vec<u8>> {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut burst = wire::preamble().to_vec();
    for frame in frames {
        burst.extend_from_slice(frame);
    }
    stream.write_all(&burst).unwrap();
    stream.flush().unwrap();
    frames.iter().map(|_| read_raw_frame(&mut stream)).collect()
}

#[test]
fn pipelined_responses_are_byte_identical_to_sequential_across_thread_counts() {
    let original = gdcm_par::threads();
    let mut per_threads: Vec<Vec<Vec<u8>>> = Vec::new();
    for threads in [1usize, 4] {
        gdcm_par::set_threads(threads);
        let (repo, nets) = fitted_repository(51);
        let serving = ServingRepository::new(repo, ServeConfig::default());
        let device = serving.device_names()[0].clone();

        // N requests mixing verbs that answer deterministically.
        let mut requests: Vec<Request> = nets
            .iter()
            .map(|net| Request::Predict {
                device: device.clone(),
                network: net.clone(),
            })
            .collect();
        requests.push(Request::PredictBatch {
            device: device.clone(),
            networks: nets.clone(),
        });
        requests.push(Request::Ping);
        let frames = encode_frames(&requests);

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::scope(|scope| {
            let serving = &serving;
            let server =
                scope.spawn(move || serve(listener, serving, ServerConfig { workers: threads }));

            let sequential = sequential_frames(addr, &frames);
            let pipelined = pipelined_frames(addr, &frames);
            assert_eq!(
                sequential, pipelined,
                "pipelined response bytes diverged from sequential at GDCM_THREADS={threads}"
            );
            per_threads.push(sequential);

            let mut client = BinClient::connect_with_retry(addr, Duration::from_secs(10)).unwrap();
            assert!(matches!(
                client.request(&Request::Shutdown).unwrap(),
                Response::ShuttingDown
            ));
            drop(client);
            server.join().expect("server thread").expect("serve result");
        });
    }
    gdcm_par::set_threads(original);
    assert_eq!(
        per_threads[0], per_threads[1],
        "response bytes diverged between GDCM_THREADS=1 and GDCM_THREADS=4"
    );
}
