//! Exhaustiveness guarantees for the stable wire error codes: every
//! constant in `protocol::codes` is distinct, survives a round trip
//! through a binary wire error frame, and is documented in the README
//! error-code table — so a code can never silently change, collide, or
//! ship undocumented.

use std::collections::HashSet;

use gdcm_serve::protocol::{codes, wire, Response};

#[test]
fn every_code_is_distinct_and_nonempty() {
    let mut seen = HashSet::new();
    for code in codes::ALL {
        assert!(!code.is_empty());
        assert_eq!(code, code.trim(), "code {code:?} has stray whitespace");
        assert!(
            code.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
            "code {code:?} is not snake_case"
        );
        assert!(seen.insert(code), "duplicate wire error code {code:?}");
    }
    assert_eq!(seen.len(), codes::ALL.len());
}

#[test]
fn every_code_round_trips_through_a_wire_error_frame() {
    for (i, code) in codes::ALL.into_iter().enumerate() {
        let response = Response::Error {
            code: code.to_string(),
            message: format!("probe for {code}"),
        };
        let mut buf = Vec::new();
        wire::append_frame(&mut buf, i as u64, &response).expect("error frame encodes");

        let header = wire::decode_frame_header(&buf).expect("header decodes");
        assert_eq!(header.request_id, i as u64);
        let payload = &buf[wire::FRAME_HEADER_LEN..wire::FRAME_HEADER_LEN + header.payload_len];
        assert_eq!(buf.len(), wire::FRAME_HEADER_LEN + header.payload_len);
        let back: Response = wire::decode_value(payload).expect("error frame decodes");
        match back {
            Response::Error { code: got, message } => {
                assert_eq!(got, code, "code mutated across the wire");
                assert_eq!(message, format!("probe for {code}"));
            }
            other => panic!("error frame decoded as {other:?}"),
        }
    }
}

#[test]
fn every_code_is_documented_in_the_readme_table() {
    let readme_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../README.md");
    let readme = std::fs::read_to_string(readme_path).expect("README.md is readable");
    for code in codes::ALL {
        let cell = format!("`{code}`");
        assert!(
            readme.contains(&cell),
            "wire error code {code:?} is missing from the README error-code table \
             (expected to find {cell})"
        );
    }
}
