//! A refresh-swapped model must be bit-identical to a cold fit on the
//! same rows, at any `GDCM_THREADS` setting.
//!
//! `gdcm_par::set_threads` retunes the process-global pool, so this
//! file holds exactly one `#[test]` — a second test running
//! concurrently in the same binary would race the thread budget.

use gdcm_core::signature::{MutualInfoSelector, SignatureSelector};
use gdcm_core::{CollaborativeRepository, CostDataset, RepositoryConfig};
use gdcm_dnn::Network;
use gdcm_ml::GbdtParams;
use gdcm_serve::{IngestPipeline, RefreshConfig, ServeConfig, ServingRepository};

fn fitted_repository(seed: u64) -> (CollaborativeRepository, Vec<Network>) {
    let data = CostDataset::tiny(seed, 6, 6);
    let all: Vec<usize> = (0..data.n_devices()).collect();
    let signature = MutualInfoSelector::default().select(&data.db, &all, 3);
    let mut repo = CollaborativeRepository::new(
        data.encoder.clone(),
        signature.len(),
        RepositoryConfig {
            gbdt: GbdtParams {
                n_estimators: 20,
                ..GbdtParams::default()
            },
            min_rows: 8,
        },
    );
    let open: Vec<usize> = (0..data.n_networks())
        .filter(|n| !signature.contains(n))
        .collect();
    for d in 0..data.n_devices() {
        let lat: Vec<f64> = signature.iter().map(|&n| data.db.latency(d, n)).collect();
        let name = data.devices[d].model.clone();
        repo.onboard_device(name.clone(), &lat).unwrap();
        for &n in open.iter().cycle().skip(d % open.len()).take(8) {
            repo.contribute(&name, &data.suite[n].network, data.db.latency(d, n))
                .unwrap();
        }
    }
    repo.fit().unwrap();
    let nets = open
        .iter()
        .map(|&n| data.suite[n].network.clone())
        .collect();
    (repo, nets)
}

/// Runs the refresh path (contribute past the threshold, `refresh_once`
/// with `warm_boost: 0`, i.e. a cold refit) and a direct cold
/// `CollaborativeRepository::fit` on identical rows, at 1 and 4
/// threads, and demands one set of prediction bits from all four runs.
#[test]
fn refresh_swapped_predictions_equal_a_cold_fit_at_any_thread_count() {
    let original = gdcm_par::threads();
    let mut per_run: Vec<Vec<u64>> = Vec::new();
    for threads in [1usize, 4] {
        gdcm_par::set_threads(threads);

        // The refresh path: stream the extra rows through the pipeline,
        // then force the background refit + swap synchronously.
        let (repo, nets) = fitted_repository(41);
        let device = repo.device_names()[0].to_string();
        let serving = ServingRepository::new(repo, ServeConfig::default());
        let pipeline = IngestPipeline::new(
            &serving,
            RefreshConfig {
                refresh_rows: 4,
                warm_boost: 0,
                ..RefreshConfig::default()
            },
        );
        for (i, net) in nets.iter().take(4).enumerate() {
            pipeline.contribute(&device, net, 15.0 + i as f64).unwrap();
        }
        assert!(pipeline.refresh_once().unwrap());
        let swapped: Vec<u64> = nets
            .iter()
            .map(|n| {
                serving
                    .with_repository(|r| r.predict(&device, n))
                    .unwrap()
                    .to_bits()
            })
            .collect();
        per_run.push(swapped);

        // The reference: the same rows contributed directly, then a
        // plain cold fit.
        let (mut cold, nets) = fitted_repository(41);
        for (i, net) in nets.iter().take(4).enumerate() {
            cold.contribute(&device, net, 15.0 + i as f64).unwrap();
        }
        cold.fit().unwrap();
        let cold_bits: Vec<u64> = nets
            .iter()
            .map(|n| cold.predict(&device, n).unwrap().to_bits())
            .collect();
        per_run.push(cold_bits);
    }
    gdcm_par::set_threads(original);
    let first = &per_run[0];
    for (i, run) in per_run.iter().enumerate().skip(1) {
        assert_eq!(
            run, first,
            "run {i} diverged from the refresh-swapped bits at 1 thread \
             (order: swap@1, cold@1, swap@4, cold@4)"
        );
    }
}
