//! Integration tests for the streaming-ingestion stack: the
//! epoch-guarded prediction cache (a model swap racing an in-flight
//! predict must never leave a stale cached answer), atomic snapshot
//! writes, write-ahead-log crash recovery, and the background-refresh
//! pipeline end to end.

use gdcm_core::signature::{MutualInfoSelector, SignatureSelector};
use gdcm_core::{CollaborativeRepository, CostDataset, RepositoryConfig};
use gdcm_dnn::Network;
use gdcm_ml::GbdtParams;
use gdcm_serve::{
    load_repository, save_repository, IngestPipeline, RefreshConfig, ServeConfig, ServeError,
    ServingRepository, WriteAheadLog,
};
use std::path::PathBuf;

/// A small fitted repository plus the open networks it never trained on.
fn fitted_repository(seed: u64) -> (CollaborativeRepository, Vec<Network>) {
    let data = CostDataset::tiny(seed, 6, 6);
    let all: Vec<usize> = (0..data.n_devices()).collect();
    let signature = MutualInfoSelector::default().select(&data.db, &all, 3);
    let mut repo = CollaborativeRepository::new(
        data.encoder.clone(),
        signature.len(),
        RepositoryConfig {
            gbdt: GbdtParams {
                n_estimators: 20,
                ..GbdtParams::default()
            },
            min_rows: 8,
        },
    );
    let open: Vec<usize> = (0..data.n_networks())
        .filter(|n| !signature.contains(n))
        .collect();
    for d in 0..data.n_devices() {
        let lat: Vec<f64> = signature.iter().map(|&n| data.db.latency(d, n)).collect();
        let name = data.devices[d].model.clone();
        repo.onboard_device(name.clone(), &lat).unwrap();
        for &n in open.iter().cycle().skip(d % open.len()).take(8) {
            repo.contribute(&name, &data.suite[n].network, data.db.latency(d, n))
                .unwrap();
        }
    }
    repo.fit().unwrap();
    let nets = open
        .iter()
        .map(|&n| data.suite[n].network.clone())
        .collect();
    (repo, nets)
}

fn scratch_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gdcm_refresh_tests_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// The stale-insert race, forced deterministically: a model swap
/// (re-enroll) lands *between* an in-flight predict's compute and its
/// cache insert. Before the epoch guard the stale value was inserted
/// after the invalidation and served forever; with the guard the insert
/// is discarded and the next predict recomputes against the new model.
#[test]
fn mid_flight_model_swap_discards_the_stale_prediction() {
    let (repo, nets) = fitted_repository(31);
    let serving = ServingRepository::new(repo, ServeConfig::default());
    let device = serving.device_names()[0].clone();
    let sig_len = serving.with_repository(|r| r.signature_size());
    let new_sig: Vec<f64> = (0..sig_len).map(|i| 7.5 + i as f64).collect();

    let discarded_before = gdcm_obs::counter("serve/pred_cache_stale_discard").get();
    let stale = serving
        .predict_hooked(&device, &nets[0], || {
            // The racing writer: swaps the model (and clears the cache)
            // while the reader holds its computed-but-uncached value.
            serving.re_enroll(&device, &new_sig).unwrap();
        })
        .unwrap();
    let stats_after_race = serving.cache_stats();

    // The caller still gets the value it computed (it was correct when
    // computed), but it must NOT have been cached: the next predict is
    // a miss and answers the new model's bits, not the stale ones.
    let fresh = serving.predict(&device, &nets[0]).unwrap();
    let stats = serving.cache_stats();
    assert_eq!(
        stats.prediction_hits, stats_after_race.prediction_hits,
        "stale value was served from the cache after the model swap"
    );
    assert_eq!(
        stats.prediction_misses,
        stats_after_race.prediction_misses + 1
    );
    let uncached = serving
        .with_repository(|r| r.predict(&device, &nets[0]))
        .unwrap();
    assert_eq!(
        fresh.to_bits(),
        uncached.to_bits(),
        "post-swap predict does not match the new model"
    );
    assert_ne!(
        stale.to_bits(),
        fresh.to_bits(),
        "re-enroll should change this prediction; the race is not being exercised"
    );
    assert!(
        gdcm_obs::counter("serve/pred_cache_stale_discard").get() > discarded_before,
        "the discarded insert was not counted"
    );
}

/// The same race through the batch path: every miss computed before the
/// swap must be discarded, and a follow-up batch recomputes them all.
#[test]
fn mid_flight_model_swap_discards_stale_batch_inserts() {
    let (repo, nets) = fitted_repository(32);
    let serving = ServingRepository::new(repo, ServeConfig::default());
    let device = serving.device_names()[0].clone();
    let sig_len = serving.with_repository(|r| r.signature_size());
    let new_sig: Vec<f64> = (0..sig_len).map(|i| 3.25 + i as f64).collect();

    serving
        .predict_batch_hooked(&device, &nets, || {
            serving.re_enroll(&device, &new_sig).unwrap();
        })
        .unwrap();
    let after_race = serving.cache_stats();

    // Nothing from the raced batch may be cached: the re-ask misses on
    // every network and matches the new model bit for bit.
    let fresh = serving.predict_batch(&device, &nets).unwrap();
    let stats = serving.cache_stats();
    assert_eq!(
        stats.prediction_hits, after_race.prediction_hits,
        "a stale batch insert survived the model swap"
    );
    assert_eq!(
        stats.prediction_misses,
        after_race.prediction_misses + nets.len() as u64
    );
    for (i, net) in nets.iter().enumerate() {
        let uncached = serving
            .with_repository(|r| r.predict(&device, net))
            .unwrap();
        assert_eq!(fresh[i].to_bits(), uncached.to_bits());
    }
}

/// Snapshot writes go through a fsynced temp sibling + rename: no
/// `.tmp` residue on success, and a torn (truncated) snapshot is
/// rejected cleanly on load instead of half-parsing.
#[test]
fn snapshot_save_is_atomic_and_truncation_is_rejected() {
    let (repo, _) = fitted_repository(33);
    let path = scratch_path("atomic.json");
    save_repository(&repo, &path).unwrap();

    let mut tmp = path.clone().into_os_string();
    tmp.push(".tmp");
    assert!(
        !PathBuf::from(&tmp).exists(),
        "temp sibling left behind after a successful save"
    );
    assert!(load_repository(&path).is_ok());

    // A crash mid-write under the old direct-write scheme would leave
    // exactly this: a prefix of the snapshot. It must fail loudly.
    let full = std::fs::read(&path).unwrap();
    std::fs::write(&path, &full[..full.len() / 2]).unwrap();
    match load_repository(&path) {
        Err(ServeError::Json(_)) => {}
        other => panic!("torn snapshot was not rejected as corrupt JSON: {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}

/// Kill-and-replay: every record acked before the "crash" survives into
/// the recovered repository; a partial trailing record (the append the
/// crash interrupted, never acked) is truncated away cleanly.
#[test]
fn acked_wal_records_survive_a_crash_and_replay() {
    let (repo, nets) = fitted_repository(34);
    let snapshot_path = scratch_path("crash_snapshot.json");
    let wal_path = scratch_path("crash.wal");
    std::fs::remove_file(&wal_path).ok();
    save_repository(&repo, &snapshot_path).unwrap();
    let rows_before = repo.n_rows();
    let device = repo.device_names()[0].to_string();

    // A serving process acks three contributions through the pipeline...
    {
        let serving = ServingRepository::new(repo, ServeConfig::default());
        let (wal, records, _) = WriteAheadLog::open(&wal_path).unwrap();
        assert!(records.is_empty());
        let pipeline =
            IngestPipeline::with_wal(&serving, wal, &snapshot_path, RefreshConfig::default());
        for (i, net) in nets.iter().take(3).enumerate() {
            pipeline.contribute(&device, net, 10.0 + i as f64).unwrap();
        }
        assert_eq!(pipeline.wal_records(), 3);
    } // ...and dies without compacting.

    // The crash also tore the append that was in flight: chop a few
    // bytes off the tail so the last record is incomplete.
    let full = std::fs::read(&wal_path).unwrap();
    std::fs::write(&wal_path, &full[..full.len() - 5]).unwrap();

    // Next startup: snapshot + WAL replay. The two fully-acked records
    // are recovered; the torn one is dropped and the file healed.
    let mut recovered = load_repository(&snapshot_path).unwrap();
    let (wal, records, recovery) = WriteAheadLog::open(&wal_path).unwrap();
    assert_eq!(records.len(), 2, "expected exactly the intact records");
    assert!(recovery.truncated_bytes > 0);
    let mut applied = 0;
    for record in &records {
        if gdcm_serve::replay_record(&mut recovered, record) {
            applied += 1;
        }
    }
    assert_eq!(applied, 2);
    assert_eq!(recovered.n_rows(), rows_before + 2);
    drop(wal);
    std::fs::remove_file(&wal_path).ok();
    std::fs::remove_file(&snapshot_path).ok();
}

/// An unparsable `GDCM_SERVE_*` value falls back to the default and is
/// counted (and warned about via a structured event) instead of being
/// silently swallowed or crashing startup.
#[test]
fn unparsable_env_knob_warns_and_falls_back() {
    let before = gdcm_obs::counter("serve/config_env_invalid").get();
    std::env::set_var("GDCM_SERVE_REFRESH_ROWS", "a-few-hundred");
    std::env::set_var("GDCM_SERVE_REFRESH_BOOST", "-3");
    let config = RefreshConfig::from_env();
    std::env::remove_var("GDCM_SERVE_REFRESH_ROWS");
    std::env::remove_var("GDCM_SERVE_REFRESH_BOOST");
    assert_eq!(config, RefreshConfig::default());
    assert_eq!(
        gdcm_obs::counter("serve/config_env_invalid").get(),
        before + 2,
        "each unparsable knob must be counted once"
    );
}

/// A mutation the repository rejects must not leave a poison record in
/// the WAL: the frame is rolled back under the log lock, so a restart
/// replays only mutations that were actually applied. (Regression: a
/// single invalid client request used to persist a record whose replay
/// rejection aborted every subsequent startup.)
#[test]
fn rejected_mutation_is_rolled_back_out_of_the_wal() {
    let (repo, nets) = fitted_repository(36);
    let snapshot_path = scratch_path("rollback_snapshot.json");
    let wal_path = scratch_path("rollback.wal");
    std::fs::remove_file(&wal_path).ok();
    save_repository(&repo, &snapshot_path).unwrap();
    let device = repo.device_names()[0].to_string();

    let serving = ServingRepository::new(repo, ServeConfig::default());
    let (wal, _, _) = WriteAheadLog::open(&wal_path).unwrap();
    let pipeline =
        IngestPipeline::with_wal(&serving, wal, &snapshot_path, RefreshConfig::default());

    // One valid contribution, then two the repository rejects.
    pipeline.contribute(&device, &nets[0], 10.0).unwrap();
    assert!(matches!(
        pipeline.contribute("not-a-device", &nets[0], 10.0),
        Err(ServeError::Repository(_))
    ));
    assert!(matches!(
        pipeline.contribute(&device, &nets[0], f64::NAN),
        Err(ServeError::Repository(_))
    ));
    assert_eq!(
        pipeline.wal_records(),
        1,
        "rejected mutations must not stay in the log"
    );

    // A restart sees only the applied record, and the rolled-back tail
    // left the file byte-exact: recovery truncates nothing.
    drop(pipeline);
    let (_, records, recovery) = WriteAheadLog::open(&wal_path).unwrap();
    assert_eq!(records.len(), 1);
    assert_eq!(recovery.truncated_bytes, 0);
    std::fs::remove_file(&wal_path).ok();
    std::fs::remove_file(&snapshot_path).ok();
}

/// Replay tolerates *any* record the repository refuses — skip and
/// warn, never error — so a stray durable record (e.g. surviving a
/// failed rollback) can never prevent the server from starting.
#[test]
fn replay_skips_rejected_records_instead_of_failing() {
    let (mut repo, nets) = fitted_repository(37);
    let device = repo.device_names()[0].to_string();
    let skipped_before = gdcm_obs::counter("serve/wal_replay_skipped").get();

    let records = [
        // Rejected: contribution for a device the snapshot never held.
        gdcm_serve::WalRecord::Contribute {
            device: "ghost-device".into(),
            network: nets[0].clone(),
            latency_ms: 12.0,
        },
        // Rejected: re-enroll of an unknown device.
        gdcm_serve::WalRecord::ReEnroll {
            device: "ghost-device".into(),
            signature_ms: vec![1.0; repo.signature_size()],
        },
        // Rejected: wrong signature length.
        gdcm_serve::WalRecord::Onboard {
            device: "short-sig".into(),
            signature_ms: vec![1.0],
        },
        // Applied: a valid contribution after all the rejects.
        gdcm_serve::WalRecord::Contribute {
            device: device.clone(),
            network: nets[0].clone(),
            latency_ms: 12.0,
        },
    ];
    let rows_before = repo.n_rows();
    let applied: Vec<bool> = records
        .iter()
        .map(|r| gdcm_serve::replay_record(&mut repo, r))
        .collect();
    assert_eq!(applied, [false, false, false, true]);
    assert_eq!(repo.n_rows(), rows_before + 1);
    assert_eq!(
        gdcm_obs::counter("serve/wal_replay_skipped").get(),
        skipped_before + 3,
        "each skipped record must be counted"
    );
}

/// Records recovered from the WAL at startup seed the refresh backlog,
/// so a crash backlog is compacted by the next refresh instead of being
/// replayed on every start until fresh contributions arrive.
#[test]
fn recovered_wal_records_seed_the_refresh_backlog() {
    let (repo, nets) = fitted_repository(38);
    let snapshot_path = scratch_path("seed_snapshot.json");
    let wal_path = scratch_path("seed.wal");
    std::fs::remove_file(&wal_path).ok();
    save_repository(&repo, &snapshot_path).unwrap();
    let device = repo.device_names()[0].to_string();

    // First process acks three contributions and dies uncompacted.
    {
        let serving = ServingRepository::new(repo.clone(), ServeConfig::default());
        let (wal, _, _) = WriteAheadLog::open(&wal_path).unwrap();
        let pipeline = IngestPipeline::with_wal(
            &serving,
            wal,
            &snapshot_path,
            RefreshConfig {
                refresh_rows: 100,
                ..RefreshConfig::default()
            },
        );
        for (i, net) in nets.iter().take(3).enumerate() {
            pipeline.contribute(&device, net, 10.0 + i as f64).unwrap();
        }
    }

    // Second process: the recovered backlog counts toward the refresh
    // threshold immediately.
    let serving = ServingRepository::new(repo, ServeConfig::default());
    let (wal, records, _) = WriteAheadLog::open(&wal_path).unwrap();
    assert_eq!(records.len(), 3);
    let pipeline = IngestPipeline::with_wal(
        &serving,
        wal,
        &snapshot_path,
        RefreshConfig {
            refresh_rows: 100,
            ..RefreshConfig::default()
        },
    );
    assert_eq!(
        pipeline.pending_rows(),
        3,
        "crash backlog must seed the refresh threshold"
    );
    std::fs::remove_file(&wal_path).ok();
    std::fs::remove_file(&snapshot_path).ok();
}

/// With the contribution threshold disabled, the WAL must still be
/// bounded: crossing `wal_compact_records` makes the refresher run a
/// backstop cycle — refit + swap + compact, since a compacted
/// snapshot's model must match its rows to pass the load-time gate.
#[test]
fn wal_compacts_via_backstop_without_contribution_threshold() {
    let (repo, nets) = fitted_repository(39);
    let snapshot_path = scratch_path("backstop_snapshot.json");
    let wal_path = scratch_path("backstop.wal");
    std::fs::remove_file(&wal_path).ok();
    save_repository(&repo, &snapshot_path).unwrap();
    let rows_before = repo.n_rows();
    let device = repo.device_names()[0].to_string();

    let serving = ServingRepository::new(repo, ServeConfig::default());
    let (wal, _, _) = WriteAheadLog::open(&wal_path).unwrap();
    let pipeline = IngestPipeline::with_wal(
        &serving,
        wal,
        &snapshot_path,
        RefreshConfig {
            refresh_rows: 0, // contribution threshold disabled
            wal_compact_records: 2,
            ..RefreshConfig::default()
        },
    );
    assert!(
        pipeline.refresher_needed(),
        "a WAL with a record cap needs the refresher thread"
    );
    assert!(!pipeline.refresh_due());

    std::thread::scope(|scope| {
        let refresher = scope.spawn(|| pipeline.run());
        pipeline.contribute(&device, &nets[0], 21.0).unwrap();
        pipeline.contribute(&device, &nets[1], 22.0).unwrap();
        // The backstop cycle runs on the refresher thread; give it a
        // generous-but-bounded window to refit and compact.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        while pipeline.wal_records() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        pipeline.stop();
        refresher.join().unwrap();
    });
    assert_eq!(
        pipeline.wal_records(),
        0,
        "crossing the record cap must trigger a backstop compaction"
    );
    assert_eq!(pipeline.refreshes(), 1, "the backstop rides one refit");
    assert_eq!(std::fs::metadata(&wal_path).unwrap().len(), 0);
    // The compaction snapshot carries the contributed rows (and a model
    // consistent with them — it reloads through the audit gate), so a
    // restart needs no replay at all.
    let reloaded = load_repository(&snapshot_path).unwrap();
    assert_eq!(reloaded.n_rows(), rows_before + 2);
    std::fs::remove_file(&wal_path).ok();
    std::fs::remove_file(&snapshot_path).ok();
}

/// An on-demand fit through the pipeline is made durable by compaction:
/// the WAL records rows, not models, so the pipeline re-snapshots after
/// the fit and a crash-restart serves the fitted model's exact bits.
#[test]
fn pipeline_fit_compacts_so_the_model_survives_a_restart() {
    let (repo, nets) = fitted_repository(40);
    let snapshot_path = scratch_path("fit_snapshot.json");
    let wal_path = scratch_path("fit.wal");
    std::fs::remove_file(&wal_path).ok();
    save_repository(&repo, &snapshot_path).unwrap();
    let device = repo.device_names()[0].to_string();

    let serving = ServingRepository::new(repo, ServeConfig::default());
    let (wal, _, _) = WriteAheadLog::open(&wal_path).unwrap();
    let pipeline =
        IngestPipeline::with_wal(&serving, wal, &snapshot_path, RefreshConfig::default());
    for (i, net) in nets.iter().take(3).enumerate() {
        pipeline.contribute(&device, net, 17.0 + i as f64).unwrap();
    }
    pipeline.fit().unwrap();
    assert_eq!(
        pipeline.wal_records(),
        0,
        "fit must compact the log into the snapshot"
    );

    // Crash here: the reloaded snapshot alone reproduces the acked
    // fit's predictions bit for bit.
    let reloaded = load_repository(&snapshot_path).unwrap();
    for net in &nets {
        let live = serving
            .with_repository(|r| r.predict(&device, net))
            .unwrap();
        assert_eq!(
            live.to_bits(),
            reloaded.predict(&device, net).unwrap().to_bits()
        );
    }
    std::fs::remove_file(&wal_path).ok();
    std::fs::remove_file(&snapshot_path).ok();
}

/// The pipeline end to end: contributions cross the threshold, one
/// `refresh_once` fits + audits + swaps a new model (bumping the
/// epoch), and compaction folds the WAL into a fresh snapshot that
/// reloads with the new rows.
#[test]
fn refresh_swaps_a_new_model_and_compacts_the_wal() {
    let (repo, nets) = fitted_repository(35);
    let snapshot_path = scratch_path("refresh_snapshot.json");
    let wal_path = scratch_path("refresh.wal");
    std::fs::remove_file(&wal_path).ok();
    save_repository(&repo, &snapshot_path).unwrap();
    let rows_before = repo.n_rows();
    let device = repo.device_names()[0].to_string();

    let serving = ServingRepository::new(repo, ServeConfig::default());
    let (wal, _, _) = WriteAheadLog::open(&wal_path).unwrap();
    let pipeline = IngestPipeline::with_wal(
        &serving,
        wal,
        &snapshot_path,
        RefreshConfig {
            refresh_rows: 4,
            warm_boost: 8,
            ..RefreshConfig::default()
        },
    );
    let epoch_before = serving.model_epoch();

    for (i, net) in nets.iter().take(4).enumerate() {
        pipeline.contribute(&device, net, 20.0 + i as f64).unwrap();
    }
    assert_eq!(pipeline.pending_rows(), 4);
    assert_eq!(pipeline.wal_records(), 4);

    assert!(pipeline.refresh_once().unwrap());
    assert_eq!(pipeline.refreshes(), 1);
    assert_eq!(pipeline.pending_rows(), 0);
    assert_eq!(pipeline.wal_records(), 0, "WAL must compact after a swap");
    assert!(
        serving.model_epoch() > epoch_before,
        "a swapped refresh must advance the model epoch"
    );

    // The compacted snapshot alone (no WAL replay) carries all the
    // contributed rows and serves the refreshed model's exact bits.
    let reloaded = load_repository(&snapshot_path).unwrap();
    assert_eq!(reloaded.n_rows(), rows_before + 4);
    for net in &nets {
        let live = serving
            .with_repository(|r| r.predict(&device, net))
            .unwrap();
        let reread = reloaded.predict(&device, net).unwrap();
        assert_eq!(live.to_bits(), reread.to_bits());
    }
    std::fs::remove_file(&wal_path).ok();
    std::fs::remove_file(&snapshot_path).ok();
}
