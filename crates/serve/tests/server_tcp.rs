//! End-to-end test of the TCP server: real sockets, the real protocol,
//! graceful shutdown, with responses checked bit-for-bit against the
//! uncached repository.

use gdcm_core::signature::{MutualInfoSelector, SignatureSelector};
use gdcm_core::{CollaborativeRepository, CostDataset, RepositoryConfig};
use gdcm_dnn::Network;
use gdcm_ml::GbdtParams;
use gdcm_serve::{serve, Client, Request, Response, ServeConfig, ServerConfig, ServingRepository};
use std::net::TcpListener;
use std::time::Duration;

fn fitted_repository(seed: u64) -> (CollaborativeRepository, Vec<Network>) {
    let data = CostDataset::tiny(seed, 6, 6);
    let all: Vec<usize> = (0..data.n_devices()).collect();
    let signature = MutualInfoSelector::default().select(&data.db, &all, 3);
    let mut repo = CollaborativeRepository::new(
        data.encoder.clone(),
        signature.len(),
        RepositoryConfig {
            gbdt: GbdtParams {
                n_estimators: 20,
                ..GbdtParams::default()
            },
            min_rows: 8,
        },
    );
    let open: Vec<usize> = (0..data.n_networks())
        .filter(|n| !signature.contains(n))
        .collect();
    for d in 0..data.n_devices() {
        let lat: Vec<f64> = signature.iter().map(|&n| data.db.latency(d, n)).collect();
        let name = data.devices[d].model.clone();
        repo.onboard_device(name.clone(), &lat).unwrap();
        for &n in open.iter().cycle().skip(d % open.len()).take(8) {
            repo.contribute(&name, &data.suite[n].network, data.db.latency(d, n))
                .unwrap();
        }
    }
    repo.fit().unwrap();
    let nets = open
        .iter()
        .map(|&n| data.suite[n].network.clone())
        .collect();
    (repo, nets)
}

fn run_session(workers: usize, seed: u64) {
    let (repo, nets) = fitted_repository(seed);
    let serving = ServingRepository::new(repo, ServeConfig::default());
    let device = serving.device_names()[0].clone();
    let expected: Vec<f64> = nets
        .iter()
        .map(|n| serving.with_repository(|r| r.predict(&device, n)).unwrap())
        .collect();

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    std::thread::scope(|scope| {
        let serving = &serving;
        let server = scope.spawn(move || serve(listener, serving, ServerConfig { workers }));

        let mut client = Client::connect_with_retry(addr, Duration::from_secs(10)).unwrap();
        assert!(matches!(
            client.request(&Request::Ping).unwrap(),
            Response::Pong
        ));

        // Single predictions over the wire: bit-identical to local.
        for (net, want) in nets.iter().zip(&expected) {
            match client
                .request(&Request::Predict {
                    device: device.clone(),
                    network: net.clone(),
                })
                .unwrap()
            {
                Response::Prediction { latency_ms } => {
                    assert_eq!(latency_ms.to_bits(), want.to_bits());
                }
                other => panic!("predict answered {other:?}"),
            }
        }

        // Errors answer in-band and keep the connection alive.
        match client
            .request(&Request::Predict {
                device: "no-such-device".to_string(),
                network: nets[0].clone(),
            })
            .unwrap()
        {
            Response::Error { code, message } => {
                assert_eq!(code, gdcm_serve::protocol::codes::UNKNOWN_DEVICE);
                assert!(message.contains("no-such-device"));
            }
            other => panic!("unknown device answered {other:?}"),
        }
        assert!(matches!(
            client.request(&Request::Ping).unwrap(),
            Response::Pong
        ));

        // End the first connection before opening the second: at
        // workers == 1 the accept loop serves connections one at a time.
        drop(client);

        // A batch from a second connection — still the same bits.
        let mut client2 = Client::connect_with_retry(addr, Duration::from_secs(10)).unwrap();
        match client2
            .request(&Request::PredictBatch {
                device: device.clone(),
                networks: nets.clone(),
            })
            .unwrap()
        {
            Response::Predictions { latency_ms } => {
                let got: Vec<u64> = latency_ms.iter().map(|v| v.to_bits()).collect();
                let want: Vec<u64> = expected.iter().map(|v| v.to_bits()).collect();
                assert_eq!(got, want);
            }
            other => panic!("batch answered {other:?}"),
        }
        match client2.request(&Request::Stats).unwrap() {
            Response::Stats {
                fitted,
                devices,
                prediction_hits,
                ..
            } => {
                assert!(fitted);
                assert!(devices > 0);
                assert!(prediction_hits > 0, "batch should have hit the warm cache");
            }
            other => panic!("stats answered {other:?}"),
        }

        assert!(matches!(
            client2.request(&Request::Shutdown).unwrap(),
            Response::ShuttingDown
        ));
        drop(client2);
        let summary = server.join().expect("server thread").expect("serve result");
        assert!(summary.connections >= 2);
        assert!(summary.requests >= nets.len() as u64 + 5);
        assert_eq!(summary.request_errors, 1);
    });
}

#[test]
fn tcp_session_end_to_end_with_worker_pool() {
    run_session(2, 31);
}

#[test]
fn tcp_session_end_to_end_serial_inline_path() {
    run_session(1, 32);
}

#[test]
fn malformed_lines_answer_errors_without_dropping_the_connection() {
    use std::io::{BufRead, BufReader, Write};

    let (repo, _) = fitted_repository(33);
    let serving = ServingRepository::new(repo, ServeConfig::default());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    std::thread::scope(|scope| {
        let serving = &serving;
        let server = scope.spawn(move || serve(listener, serving, ServerConfig { workers: 1 }));

        let stream = std::net::TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        writer.write_all(b"this is not json\n").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        match serde_json::from_str::<Response>(&line).unwrap() {
            Response::Error { code, message } => {
                assert_eq!(code, gdcm_serve::protocol::codes::PARSE_ERROR);
                assert!(message.contains("unparsable"));
            }
            other => panic!("garbage answered {other:?}"),
        }

        // The same connection still works afterwards.
        writer.write_all(b"\"Ping\"\n").unwrap();
        writer.flush().unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(matches!(
            serde_json::from_str::<Response>(&line).unwrap(),
            Response::Pong
        ));

        writer.write_all(b"\"Shutdown\"\n").unwrap();
        writer.flush().unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(matches!(
            serde_json::from_str::<Response>(&line).unwrap(),
            Response::ShuttingDown
        ));
        let summary = server.join().expect("server thread").expect("serve result");
        assert_eq!(summary.request_errors, 1);
    });
}
