//! Integration tests for the serving façade and snapshot persistence:
//! the bit-identity contract (cached and batched answers equal the
//! uncached single-row path), snapshot round-trips, and defensive
//! rejection of corrupt or audit-failing snapshots.

use gdcm_core::signature::{MutualInfoSelector, SignatureSelector};
use gdcm_core::{CollaborativeRepository, CostDataset, RepositoryConfig};
use gdcm_dnn::Network;
use gdcm_ml::{FrozenGbdt, FrozenNodes, GbdtParams, GbdtRegressor, Tree, TreeNode};
use gdcm_serve::{
    load_repository, save_repository, RepositorySnapshot, ServeConfig, ServeError,
    ServingRepository, SNAPSHOT_FORMAT, SNAPSHOT_VERSION,
};
use std::path::PathBuf;

/// A small fitted repository plus the open networks it never trained on.
fn fitted_repository(seed: u64) -> (CollaborativeRepository, Vec<Network>) {
    let data = CostDataset::tiny(seed, 6, 6);
    let all: Vec<usize> = (0..data.n_devices()).collect();
    let signature = MutualInfoSelector::default().select(&data.db, &all, 3);
    let mut repo = CollaborativeRepository::new(
        data.encoder.clone(),
        signature.len(),
        RepositoryConfig {
            gbdt: GbdtParams {
                n_estimators: 20,
                ..GbdtParams::default()
            },
            min_rows: 8,
        },
    );
    let open: Vec<usize> = (0..data.n_networks())
        .filter(|n| !signature.contains(n))
        .collect();
    for d in 0..data.n_devices() {
        let lat: Vec<f64> = signature.iter().map(|&n| data.db.latency(d, n)).collect();
        let name = data.devices[d].model.clone();
        repo.onboard_device(name.clone(), &lat).unwrap();
        for &n in open.iter().cycle().skip(d % open.len()).take(8) {
            repo.contribute(&name, &data.suite[n].network, data.db.latency(d, n))
                .unwrap();
        }
    }
    repo.fit().unwrap();
    let nets = open
        .iter()
        .map(|&n| data.suite[n].network.clone())
        .collect();
    (repo, nets)
}

fn scratch_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("gdcm_serve_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn cached_predictions_are_bit_identical_to_cold_calls() {
    let (repo, nets) = fitted_repository(11);
    let serving = ServingRepository::new(repo, ServeConfig::default());
    let device = serving.device_names()[0].clone();
    for net in &nets {
        let cold = serving
            .with_repository(|r| r.predict(&device, net))
            .unwrap();
        let first = serving.predict(&device, net).unwrap();
        let second = serving.predict(&device, net).unwrap();
        assert_eq!(first.to_bits(), cold.to_bits(), "cold call diverged");
        assert_eq!(second.to_bits(), cold.to_bits(), "cache hit diverged");
    }
    let stats = serving.cache_stats();
    assert_eq!(stats.prediction_misses, nets.len() as u64);
    assert_eq!(stats.prediction_hits, nets.len() as u64);
    // The second pass never re-encoded: one encoding miss per network.
    assert_eq!(stats.encoding_misses, nets.len() as u64);
}

#[test]
fn batch_predictions_match_single_row_bits() {
    let (repo, nets) = fitted_repository(12);
    let serving = ServingRepository::new(repo, ServeConfig::default());
    let device = serving.device_names()[0].clone();
    let singles: Vec<f64> = nets
        .iter()
        .map(|n| serving.with_repository(|r| r.predict(&device, n)).unwrap())
        .collect();

    // All misses: the whole batch goes through the chunked predictor.
    let batch = serving.predict_batch(&device, &nets).unwrap();
    assert_eq!(batch.len(), singles.len());
    for (b, s) in batch.iter().zip(&singles) {
        assert_eq!(b.to_bits(), s.to_bits(), "batched bits diverged");
    }

    // Mixed: warm half the cache, then batch over everything.
    let serving2 = {
        let (repo, _) = fitted_repository(12);
        ServingRepository::new(repo, ServeConfig::default())
    };
    for net in nets.iter().step_by(2) {
        serving2.predict(&device, net).unwrap();
    }
    let mixed = serving2.predict_batch(&device, &nets).unwrap();
    for (m, s) in mixed.iter().zip(&singles) {
        assert_eq!(
            m.to_bits(),
            s.to_bits(),
            "mixed cached/missed batch diverged"
        );
    }

    // Fully cached: a pure cache read, same bits again.
    let hot = serving2.predict_batch(&device, &nets).unwrap();
    for (h, s) in hot.iter().zip(&singles) {
        assert_eq!(h.to_bits(), s.to_bits(), "hot batch diverged");
    }
}

#[test]
fn disabled_caches_still_serve_identical_bits() {
    let (repo, nets) = fitted_repository(13);
    let serving = ServingRepository::new(
        repo,
        ServeConfig {
            encoding_cache: 0,
            prediction_cache: 0,
        },
    );
    let device = serving.device_names()[0].clone();
    for net in &nets {
        let cold = serving
            .with_repository(|r| r.predict(&device, net))
            .unwrap();
        assert_eq!(
            serving.predict(&device, net).unwrap().to_bits(),
            cold.to_bits()
        );
        assert_eq!(
            serving.predict(&device, net).unwrap().to_bits(),
            cold.to_bits()
        );
    }
    let stats = serving.cache_stats();
    assert_eq!(stats.prediction_hits, 0, "disabled cache must never hit");
    assert_eq!(stats.encoding_hits, 0);
}

#[test]
fn snapshot_round_trip_preserves_prediction_bits() {
    let (repo, nets) = fitted_repository(14);
    let path = scratch_path("round_trip.json");
    save_repository(&repo, &path).unwrap();
    let loaded = load_repository(&path).unwrap();
    for device in repo.device_names() {
        for net in &nets {
            let before = repo.predict(device, net).unwrap();
            let after = loaded.predict(device, net).unwrap();
            assert_eq!(
                before.to_bits(),
                after.to_bits(),
                "snapshot round-trip changed a prediction"
            );
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn unfitted_snapshot_round_trips_too() {
    let (repo, _) = fitted_repository(15);
    let mut parts = repo.to_parts();
    parts.model = None;
    parts.frozen = None;
    let unfitted = CollaborativeRepository::from_parts(parts).unwrap();
    let path = scratch_path("unfitted.json");
    save_repository(&unfitted, &path).unwrap();
    let loaded = load_repository(&path).unwrap();
    assert!(!loaded.is_fitted());
    assert_eq!(loaded.n_rows(), repo.n_rows());
    std::fs::remove_file(&path).ok();
}

#[test]
fn flatcheck_rejects_snapshot_with_tampered_frozen_model() {
    let (repo, _) = fitted_repository(19);
    let mut parts = repo.to_parts();
    // Flip one frozen leaf's low mantissa bit. The arena shape, grid,
    // and metadata all still match the stored model, so structural
    // `from_parts` validation passes — only the flatcheck translation
    // validator can see that the compiled artifact no longer computes
    // the model it claims to.
    let (base, width, cuts, nodes) = parts.frozen.take().unwrap().into_raw_parts();
    let (starts, feature, bin, left, right, mut leaf) = nodes.into_raw_parts();
    let victim = leaf
        .iter()
        .position(|v| *v != 0.0)
        .expect("a fitted ensemble has non-zero leaves");
    leaf[victim] = f32::from_bits(leaf[victim].to_bits() ^ 1);
    parts.frozen = Some(FrozenGbdt::from_raw_parts(
        base,
        width,
        cuts,
        FrozenNodes::from_raw_parts(starts, feature, bin, left, right, leaf),
    ));
    let snapshot = RepositorySnapshot {
        format: SNAPSHOT_FORMAT.to_string(),
        version: SNAPSHOT_VERSION,
        parts,
    };
    let path = scratch_path("tampered_frozen.json");
    std::fs::write(&path, serde_json::to_string(&snapshot).unwrap()).unwrap();
    match load_repository(&path) {
        Err(ServeError::AuditRejected { diagnostics }) => {
            assert!(
                diagnostics.iter().any(|d| d.contains("GDCM147")),
                "expected a flat leaf-value finding, got: {diagnostics:?}"
            );
        }
        other => panic!("tampered frozen model accepted: {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn wrong_envelope_is_rejected_before_parsing_state() {
    let (repo, _) = fitted_repository(16);
    let mut snapshot = RepositorySnapshot::capture(&repo);
    snapshot.version = SNAPSHOT_VERSION + 1;
    let path = scratch_path("future_version.json");
    std::fs::write(&path, serde_json::to_string(&snapshot).unwrap()).unwrap();
    match load_repository(&path) {
        Err(ServeError::BadSnapshot { reason }) => {
            assert!(reason.contains("version"), "unhelpful reason: {reason}");
        }
        other => panic!("future version accepted: {other:?}"),
    }

    let mut snapshot = RepositorySnapshot::capture(&repo);
    snapshot.format = "something-else".to_string();
    std::fs::write(&path, serde_json::to_string(&snapshot).unwrap()).unwrap();
    assert!(matches!(
        load_repository(&path),
        Err(ServeError::BadSnapshot { .. })
    ));
    std::fs::remove_file(&path).ok();
}

#[test]
fn audit_rejects_snapshot_with_corrupt_model() {
    let (repo, _) = fitted_repository(17);
    let mut parts = repo.to_parts();
    let width = parts.x_rows[0].len();
    // A split on a feature past the model's width passes structural
    // `from_parts` validation (which checks the feature *count*, not
    // ensemble internals) and survives the JSON round trip, but must be
    // caught by the gdcm-audit ensemble pass on load.
    parts.model = Some(GbdtRegressor::from_raw_parts(
        0.0,
        vec![Tree::from_raw_nodes(vec![
            TreeNode::Split {
                feature: width + 7,
                threshold: 0.5,
                left: 1,
                right: 2,
            },
            TreeNode::Leaf { weight: 0.0 },
            TreeNode::Leaf { weight: 0.0 },
        ])],
        width,
    ));
    let snapshot = RepositorySnapshot {
        format: SNAPSHOT_FORMAT.to_string(),
        version: SNAPSHOT_VERSION,
        parts,
    };
    let path = scratch_path("corrupt_model.json");
    std::fs::write(&path, serde_json::to_string(&snapshot).unwrap()).unwrap();
    match load_repository(&path) {
        Err(ServeError::AuditRejected { diagnostics }) => {
            assert!(!diagnostics.is_empty());
            assert!(
                diagnostics.iter().any(|d| d.contains("splits feature")),
                "expected an out-of-bounds-feature finding, got: {diagnostics:?}"
            );
        }
        other => panic!("corrupt model accepted: {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn re_enroll_invalidates_cached_predictions() {
    let (repo, nets) = fitted_repository(18);
    let serving = ServingRepository::new(repo, ServeConfig::default());
    let device = serving.device_names()[0].clone();
    let sig_len = serving.with_repository(|r| r.signature_size());

    serving.predict(&device, &nets[0]).unwrap();
    let before = serving.cache_stats();
    assert_eq!(before.prediction_misses, 1);

    let new_sig: Vec<f64> = (0..sig_len).map(|i| 5.0 + i as f64).collect();
    serving.re_enroll(&device, &new_sig).unwrap();

    // The cached entry is gone: the next predict recomputes against the
    // new signature and matches an uncached call bit for bit.
    let fresh = serving.predict(&device, &nets[0]).unwrap();
    let after = serving.cache_stats();
    assert_eq!(after.prediction_hits, before.prediction_hits);
    assert_eq!(after.prediction_misses, before.prediction_misses + 1);
    let uncached = serving
        .with_repository(|r| r.predict(&device, &nets[0]))
        .unwrap();
    assert_eq!(fresh.to_bits(), uncached.to_bits());
}

#[test]
fn serving_snapshot_save_matches_direct_save() {
    let (repo, nets) = fitted_repository(19);
    let serving = ServingRepository::new(repo, ServeConfig::default());
    let device = serving.device_names()[0].clone();
    let expected = serving.predict(&device, &nets[0]).unwrap();

    let path = scratch_path("via_serving.json");
    serving.save_snapshot(&path).unwrap();
    let reloaded = ServingRepository::from_snapshot_path(&path).unwrap();
    assert_eq!(
        reloaded.predict(&device, &nets[0]).unwrap().to_bits(),
        expected.to_bits()
    );
    std::fs::remove_file(&path).ok();
}
