//! End-to-end telemetry tests: trace-id propagation over the wire
//! (success, error, and malformed-request paths), and the ops endpoint
//! (`health` / `metrics` / `slowlog` / `quiesce`) under real load.

use gdcm_core::signature::{MutualInfoSelector, SignatureSelector};
use gdcm_core::{CollaborativeRepository, CostDataset, RepositoryConfig};
use gdcm_dnn::Network;
use gdcm_ml::GbdtParams;
use gdcm_serve::protocol::codes;
use gdcm_serve::{
    serve, serve_with_ops, Client, OpsClient, Request, Response, ResponseEnvelope, ServeConfig,
    ServerConfig, ServingRepository,
};
use std::net::TcpListener;
use std::time::Duration;

fn fitted_repository(seed: u64) -> (CollaborativeRepository, Vec<Network>) {
    let data = CostDataset::tiny(seed, 6, 6);
    let all: Vec<usize> = (0..data.n_devices()).collect();
    let signature = MutualInfoSelector::default().select(&data.db, &all, 3);
    let mut repo = CollaborativeRepository::new(
        data.encoder.clone(),
        signature.len(),
        RepositoryConfig {
            gbdt: GbdtParams {
                n_estimators: 20,
                ..GbdtParams::default()
            },
            min_rows: 8,
        },
    );
    let open: Vec<usize> = (0..data.n_networks())
        .filter(|n| !signature.contains(n))
        .collect();
    for d in 0..data.n_devices() {
        let lat: Vec<f64> = signature.iter().map(|&n| data.db.latency(d, n)).collect();
        let name = data.devices[d].model.clone();
        repo.onboard_device(name.clone(), &lat).unwrap();
        for &n in open.iter().cycle().skip(d % open.len()).take(8) {
            repo.contribute(&name, &data.suite[n].network, data.db.latency(d, n))
                .unwrap();
        }
    }
    repo.fit().unwrap();
    let nets = open
        .iter()
        .map(|&n| data.suite[n].network.clone())
        .collect();
    (repo, nets)
}

/// Sends `Shutdown` to the server on drop unless disarmed. An assertion
/// failure inside `thread::scope` unwinds through the scope's implicit
/// join; without this the panic would hang forever on a server that
/// never received its shutdown request, masking the real failure.
struct ShutdownGuard {
    addr: std::net::SocketAddr,
    armed: bool,
}

impl ShutdownGuard {
    fn new(addr: std::net::SocketAddr) -> Self {
        Self { addr, armed: true }
    }

    fn disarm(&mut self) {
        self.armed = false;
    }
}

impl Drop for ShutdownGuard {
    fn drop(&mut self) {
        if self.armed {
            if let Ok(mut client) = Client::connect(self.addr) {
                let _ = client.request(&Request::Shutdown);
            }
        }
    }
}

/// Trace ids round-trip bit-stably through envelopes — on success AND
/// error responses, including ids that no f64 path could preserve —
/// while bare (un-enveloped) requests keep getting bare responses.
#[test]
fn trace_ids_round_trip_on_success_and_error() {
    let (repo, nets) = fitted_repository(41);
    let serving = ServingRepository::new(repo, ServeConfig::default());
    let device = serving.device_names()[0].clone();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    std::thread::scope(|scope| {
        let serving = &serving;
        let server = scope.spawn(move || serve(listener, serving, ServerConfig { workers: 1 }));
        let mut guard = ShutdownGuard::new(addr);
        let mut client = Client::connect_with_retry(addr, Duration::from_secs(10)).unwrap();

        let expected = serving
            .with_repository(|r| r.predict(&device, &nets[0]))
            .unwrap();
        // Every id class that could corrupt in a lossy decode path.
        for trace_id in [1u64, (1 << 53) + 1, u64::MAX - 1, u64::MAX] {
            let (echo, resp) = client
                .request_traced(
                    &Request::Predict {
                        device: device.clone(),
                        network: nets[0].clone(),
                    },
                    trace_id,
                )
                .unwrap();
            assert_eq!(echo, Some(trace_id), "id must echo back bit-stably");
            match resp {
                Response::Prediction { latency_ms } => {
                    assert_eq!(latency_ms.to_bits(), expected.to_bits());
                }
                other => panic!("traced predict answered {other:?}"),
            }
        }

        // Error responses carry the id and a stable machine code too.
        let (echo, resp) = client
            .request_traced(
                &Request::Predict {
                    device: "no-such-device".to_string(),
                    network: nets[0].clone(),
                },
                u64::MAX,
            )
            .unwrap();
        assert_eq!(echo, Some(u64::MAX));
        match resp {
            Response::Error { code, message } => {
                assert_eq!(code, codes::UNKNOWN_DEVICE);
                assert!(message.contains("no-such-device"));
            }
            other => panic!("traced error answered {other:?}"),
        }

        // A bare request on the same connection stays bare.
        assert!(matches!(
            client.request(&Request::Ping).unwrap(),
            Response::Pong
        ));

        assert!(matches!(
            client.request(&Request::Shutdown).unwrap(),
            Response::ShuttingDown
        ));
        guard.disarm();
        drop(client);
        server.join().expect("server thread").expect("serve result");
    });
}

/// An envelope whose inner request is bogus still gets its trace id
/// echoed on the parse error; raw garbage (no recoverable id) answers
/// with a bare error.
#[test]
fn parse_errors_keep_the_trace_id_when_one_was_sent() {
    use std::io::{BufRead, BufReader, Write};

    let (repo, _) = fitted_repository(42);
    let serving = ServingRepository::new(repo, ServeConfig::default());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    std::thread::scope(|scope| {
        let serving = &serving;
        let server = scope.spawn(move || serve(listener, serving, ServerConfig { workers: 1 }));
        let mut guard = ShutdownGuard::new(addr);

        let stream = std::net::TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;

        // Valid envelope, bogus request: enveloped parse error, id kept.
        writer
            .write_all(b"{\"trace_id\":7,\"req\":{\"Bogus\":1}}\n")
            .unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let envelope: ResponseEnvelope = serde_json::from_str(&line).unwrap();
        assert_eq!(envelope.trace_id, Some(7));
        match envelope.resp {
            Response::Error { code, message } => {
                assert_eq!(code, codes::PARSE_ERROR);
                assert!(message.contains("unparsable"));
            }
            other => panic!("bogus envelope answered {other:?}"),
        }

        // Raw garbage: no id to recover, so the error answers bare.
        writer.write_all(b"this is not json\n").unwrap();
        writer.flush().unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(!line.contains("trace_id"), "bare error must stay bare");
        match serde_json::from_str::<Response>(&line).unwrap() {
            Response::Error { code, .. } => assert_eq!(code, codes::PARSE_ERROR),
            other => panic!("garbage answered {other:?}"),
        }

        writer.write_all(b"\"Shutdown\"\n").unwrap();
        writer.flush().unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(matches!(
            serde_json::from_str::<Response>(&line).unwrap(),
            Response::ShuttingDown
        ));
        guard.disarm();
        let summary = server.join().expect("server thread").expect("serve result");
        assert_eq!(summary.request_errors, 2);
    });
}

/// Full ops-endpoint pass under real load: health, windowed metrics
/// with cache hit ratios and stage histograms, slow-log entries with
/// stage breakdowns, and quiesce flipping health to draining.
#[test]
fn ops_endpoint_reports_live_telemetry() {
    let (repo, nets) = fitted_repository(43);
    let serving = ServingRepository::new(repo, ServeConfig::default());
    let device = serving.device_names()[0].clone();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let ops_listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let ops_addr = ops_listener.local_addr().unwrap();

    std::thread::scope(|scope| {
        let serving = &serving;
        let server = scope.spawn(move || {
            serve_with_ops(
                listener,
                Some(ops_listener),
                serving,
                ServerConfig { workers: 2 },
            )
        });
        let mut guard = ShutdownGuard::new(addr);

        let mut client = Client::connect_with_retry(addr, Duration::from_secs(10)).unwrap();
        // Load: a miss, a hit, and one error — all traced.
        for _ in 0..2 {
            let (echo, resp) = client
                .request_traced(
                    &Request::Predict {
                        device: device.clone(),
                        network: nets[0].clone(),
                    },
                    99,
                )
                .unwrap();
            assert_eq!(echo, Some(99));
            assert!(matches!(resp, Response::Prediction { .. }));
        }
        let (_, resp) = client
            .request_traced(
                &Request::Predict {
                    device: "no-such-device".to_string(),
                    network: nets[0].clone(),
                },
                100,
            )
            .unwrap();
        assert!(matches!(resp, Response::Error { .. }));

        let mut ops = OpsClient::connect_with_retry(ops_addr, Duration::from_secs(10)).unwrap();

        let health: serde_json::Value =
            serde_json::from_str(&ops.query("health").unwrap()).unwrap();
        assert_eq!(health.get("status").and_then(|s| s.as_str()), Some("ok"));
        assert_eq!(health.get("fitted").and_then(|f| f.as_bool()), Some(true));
        assert!(
            health
                .get("requests_total")
                .and_then(|r| r.as_u64())
                .unwrap()
                >= 3
        );

        // A request's windowed telemetry is recorded just *after* its
        // response is written, so the client can observe its own reply
        // before the matching records land. Poll until the whole load
        // is visible; each record trails its response by microseconds.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let metrics: serde_json::Value = loop {
            let m: serde_json::Value =
                serde_json::from_str(&ops.query("metrics").unwrap()).unwrap();
            let w = m.get("windowed").expect("windowed block");
            let at =
                |v: &serde_json::Value, key: &str| v.get(key).and_then(|x| x.as_u64()).unwrap_or(0);
            let converged = at(w, "requests") >= 3
                && at(w, "errors") >= 1
                && w.get("latency").map(|l| at(l, "count")).unwrap_or(0) >= 2
                && w.get("prediction_cache")
                    .map(|c| at(c, "hits"))
                    .unwrap_or(0)
                    >= 1;
            if converged || std::time::Instant::now() >= deadline {
                break m;
            }
            std::thread::sleep(Duration::from_millis(2));
        };
        let windowed = metrics.get("windowed").expect("windowed block");
        assert!(windowed.get("requests").and_then(|r| r.as_u64()).unwrap() >= 3);
        assert!(windowed.get("qps").and_then(|q| q.as_f64()).unwrap() > 0.0);
        assert!(windowed.get("errors").and_then(|e| e.as_u64()).unwrap() >= 1);
        assert!(windowed.get("error_rate").and_then(|e| e.as_f64()).unwrap() > 0.0);
        let latency = windowed.get("latency").expect("latency block");
        assert!(latency.get("count").and_then(|c| c.as_u64()).unwrap() >= 2);
        assert!(latency.get("p50_ms").and_then(|p| p.as_f64()).unwrap() > 0.0);
        assert!(latency.get("p99_ms").and_then(|p| p.as_f64()).unwrap() > 0.0);
        let pred_cache = windowed.get("prediction_cache").expect("cache block");
        assert!(pred_cache.get("hits").and_then(|h| h.as_u64()).unwrap() >= 1);
        assert!(
            pred_cache
                .get("hit_ratio")
                .and_then(|h| h.as_f64())
                .unwrap()
                > 0.0,
            "the repeated predict must land as a windowed cache hit"
        );
        let cumulative = metrics.get("cumulative").expect("cumulative block");
        assert!(cumulative.get("requests").and_then(|r| r.as_u64()).unwrap() >= 3);
        let stages = cumulative
            .get("stages_us")
            .and_then(|s| s.as_array())
            .expect("stage histograms");
        assert!(
            !stages.is_empty(),
            "request traces must merge into serve/stage/* histograms"
        );

        let slowlog: serde_json::Value =
            serde_json::from_str(&ops.query("slowlog").unwrap()).unwrap();
        let entries = slowlog
            .get("entries")
            .and_then(|e| e.as_array())
            .expect("slowlog entries");
        assert!(!entries.is_empty(), "probe load must populate the slowlog");
        let stage_names: Vec<&str> = entries[0]
            .get("stages")
            .and_then(|s| s.as_array())
            .expect("stage breakdown")
            .iter()
            .filter_map(|s| s.get("stage").and_then(|n| n.as_str()))
            .collect();
        assert!(
            stage_names.contains(&"parse") && stage_names.contains(&"write"),
            "slowlog entries must carry the request's stage spans, got {stage_names:?}"
        );

        let quiesce: serde_json::Value =
            serde_json::from_str(&ops.query("quiesce").unwrap()).unwrap();
        assert_eq!(
            quiesce.get("status").and_then(|s| s.as_str()),
            Some("draining")
        );
        let health: serde_json::Value =
            serde_json::from_str(&ops.query("health").unwrap()).unwrap();
        assert_eq!(
            health.get("status").and_then(|s| s.as_str()),
            Some("draining")
        );
        drop(ops);

        // The serving path keeps answering while draining.
        assert!(matches!(
            client.request(&Request::Ping).unwrap(),
            Response::Pong
        ));
        assert!(matches!(
            client.request(&Request::Shutdown).unwrap(),
            Response::ShuttingDown
        ));
        guard.disarm();
        drop(client);
        let summary = server.join().expect("server thread").expect("serve result");
        assert!(summary.requests >= 5);
    });
}
