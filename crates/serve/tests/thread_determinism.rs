//! `predict_batch` must be bit-identical at any `GDCM_THREADS` setting.
//!
//! `gdcm_par::set_threads` retunes the process-global pool, so this file
//! holds exactly one `#[test]` — a second test running concurrently in
//! the same binary would race the thread budget.

use gdcm_core::signature::{MutualInfoSelector, SignatureSelector};
use gdcm_core::{CollaborativeRepository, CostDataset, RepositoryConfig};
use gdcm_dnn::Network;
use gdcm_ml::GbdtParams;
use gdcm_serve::{ServeConfig, ServingRepository};

fn fitted_repository(seed: u64) -> (CollaborativeRepository, Vec<Network>) {
    let data = CostDataset::tiny(seed, 6, 6);
    let all: Vec<usize> = (0..data.n_devices()).collect();
    let signature = MutualInfoSelector::default().select(&data.db, &all, 3);
    let mut repo = CollaborativeRepository::new(
        data.encoder.clone(),
        signature.len(),
        RepositoryConfig {
            gbdt: GbdtParams {
                n_estimators: 20,
                ..GbdtParams::default()
            },
            min_rows: 8,
        },
    );
    let open: Vec<usize> = (0..data.n_networks())
        .filter(|n| !signature.contains(n))
        .collect();
    for d in 0..data.n_devices() {
        let lat: Vec<f64> = signature.iter().map(|&n| data.db.latency(d, n)).collect();
        let name = data.devices[d].model.clone();
        repo.onboard_device(name.clone(), &lat).unwrap();
        for &n in open.iter().cycle().skip(d % open.len()).take(8) {
            repo.contribute(&name, &data.suite[n].network, data.db.latency(d, n))
                .unwrap();
        }
    }
    repo.fit().unwrap();
    let nets = open
        .iter()
        .map(|&n| data.suite[n].network.clone())
        .collect();
    (repo, nets)
}

#[test]
fn predict_batch_is_bit_identical_across_thread_counts() {
    let original = gdcm_par::threads();
    let mut per_threads: Vec<Vec<u64>> = Vec::new();
    for threads in [1usize, 4] {
        gdcm_par::set_threads(threads);
        // A fresh façade with caches disabled: every run recomputes the
        // full batch through the chunked predictor at this thread count.
        let (repo, nets) = fitted_repository(21);
        let serving = ServingRepository::new(
            repo,
            ServeConfig {
                encoding_cache: 0,
                prediction_cache: 0,
            },
        );
        let device = serving.device_names()[0].clone();
        let batch = serving.predict_batch(&device, &nets).unwrap();
        assert_eq!(batch.len(), nets.len());
        per_threads.push(batch.iter().map(|v| v.to_bits()).collect());
    }
    gdcm_par::set_threads(original);
    assert_eq!(
        per_threads[0], per_threads[1],
        "predict_batch diverged between GDCM_THREADS=1 and GDCM_THREADS=4"
    );
}
