//! The wire-byte → structural-hash fast lane across a snapshot
//! reload: a freshly loaded `ServingRepository` starts with a cold
//! index, warms it through live binary-protocol traffic, and stays
//! coherent with the prediction cache through the `Fit` and `ReEnroll`
//! invalidations — the lane may only ever serve what the slow path
//! would, asserted bit-for-bit over a real socket.

use gdcm_core::signature::{MutualInfoSelector, SignatureSelector};
use gdcm_core::{CollaborativeRepository, CostDataset, RepositoryConfig};
use gdcm_dnn::Network;
use gdcm_ml::GbdtParams;
use gdcm_serve::protocol::wire;
use gdcm_serve::{
    serve, BinClient, Request, Response, ServeConfig, ServerConfig, ServingRepository,
};
use std::net::TcpListener;
use std::time::Duration;

fn fitted_repository(seed: u64) -> (CollaborativeRepository, Vec<Network>) {
    let data = CostDataset::tiny(seed, 6, 6);
    let all: Vec<usize> = (0..data.n_devices()).collect();
    let signature = MutualInfoSelector::default().select(&data.db, &all, 3);
    let mut repo = CollaborativeRepository::new(
        data.encoder.clone(),
        signature.len(),
        RepositoryConfig {
            gbdt: GbdtParams {
                n_estimators: 20,
                ..GbdtParams::default()
            },
            min_rows: 8,
        },
    );
    let open: Vec<usize> = (0..data.n_networks())
        .filter(|n| !signature.contains(n))
        .collect();
    for d in 0..data.n_devices() {
        let lat: Vec<f64> = signature.iter().map(|&n| data.db.latency(d, n)).collect();
        let name = data.devices[d].model.clone();
        repo.onboard_device(name.clone(), &lat).unwrap();
        for &n in open.iter().cycle().skip(d % open.len()).take(8) {
            repo.contribute(&name, &data.suite[n].network, data.db.latency(d, n))
                .unwrap();
        }
    }
    repo.fit().unwrap();
    let nets = open
        .iter()
        .map(|&n| data.suite[n].network.clone())
        .collect();
    (repo, nets)
}

fn predict_bits(serving: &ServingRepository, device: &str, network: &Network) -> u64 {
    serving
        .with_repository(|r| r.predict(device, network))
        .unwrap()
        .to_bits()
}

fn wire_prediction_bits(client: &mut BinClient, req: &Request) -> u64 {
    match client.request(req).unwrap() {
        Response::Prediction { latency_ms } => latency_ms.to_bits(),
        other => panic!("predict answered {other:?}"),
    }
}

fn prediction_hits(client: &mut BinClient) -> u64 {
    match client.request(&Request::Stats).unwrap() {
        Response::Stats {
            prediction_hits, ..
        } => prediction_hits,
        other => panic!("stats answered {other:?}"),
    }
}

#[test]
fn fast_lane_stays_coherent_across_snapshot_load() {
    let (repo, nets) = fitted_repository(52);
    let original = ServingRepository::new(repo, ServeConfig::default());
    let device = original.device_names()[0].clone();
    let before_bits = predict_bits(&original, &device, &nets[0]);

    // Round-trip the whole repository through a snapshot on disk.
    let dir = std::env::temp_dir().join(format!("gdcm-fast-lane-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("snapshot.json");
    original.save_snapshot(&path).unwrap();
    let serving = ServingRepository::from_snapshot_path(&path).unwrap();
    let _ = std::fs::remove_dir_all(&dir);

    // The server keys the lane by a hash of the network's canonical
    // wire bytes — recompute it exactly the way the server does.
    let req = Request::Predict {
        device: device.clone(),
        network: nets[0].clone(),
    };
    let payload = wire::encode_value(&req).unwrap();
    let (probed_device, network_bytes) =
        wire::fast::probe_predict(&payload).expect("canonical Predict payload probes");
    assert_eq!(probed_device, device);
    let whash = wire::fast::wire_hash(network_bytes);

    // Cold start: the loaded repository has never seen these bytes.
    assert_eq!(serving.predict_wire_hit(&device, whash), None);

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::scope(|scope| {
        let serving = &serving;
        let server = scope.spawn(move || serve(listener, serving, ServerConfig { workers: 1 }));
        let mut client = BinClient::connect_with_retry(addr, Duration::from_secs(10)).unwrap();

        // First sighting takes the slow path, answers bit-identically
        // to the pre-snapshot repository, and warms the index.
        assert_eq!(wire_prediction_bits(&mut client, &req), before_bits);
        assert_eq!(
            serving.predict_wire_hit(&device, whash).map(f64::to_bits),
            Some(before_bits),
            "slow-path decode did not warm the wire index"
        );

        // Repeats are fast-lane hits: bit-identical answers, and each
        // one books a prediction-cache hit in the live stats.
        let hits_before = prediction_hits(&mut client);
        for _ in 0..3 {
            assert_eq!(wire_prediction_bits(&mut client, &req), before_bits);
        }
        assert_eq!(prediction_hits(&mut client), hits_before + 3);

        // A refit clears the prediction cache. The byte→structure
        // index survives (it is a pure function of the bytes), but the
        // lane must stop answering until the slow path refills the
        // cache — and then only ever with the post-fit value.
        assert!(matches!(
            client
                .request(&Request::Contribute {
                    device: device.clone(),
                    network: nets[1].clone(),
                    latency_ms: 42.5,
                })
                .unwrap(),
            Response::Ok
        ));
        assert!(matches!(
            client.request(&Request::Fit).unwrap(),
            Response::Ok
        ));
        assert_eq!(
            serving.predict_wire_hit(&device, whash),
            None,
            "fast lane answered from a cleared prediction cache"
        );
        let after_fit_bits = predict_bits(serving, &device, &nets[0]);
        assert_eq!(wire_prediction_bits(&mut client, &req), after_fit_bits);
        assert_eq!(
            serving.predict_wire_hit(&device, whash).map(f64::to_bits),
            Some(after_fit_bits)
        );

        // A re-enroll clears it again; byte-identical Predict frames
        // must track the new signature, not the indexed past.
        let shifted: Vec<f64> = serving
            .with_repository(|r| r.device_signature(&device).unwrap().to_vec())
            .iter()
            .map(|v| f64::from(*v) * 2.0 + 1.0)
            .collect();
        assert!(matches!(
            client
                .request(&Request::ReEnroll {
                    device: device.clone(),
                    signature_ms: shifted,
                })
                .unwrap(),
            Response::Ok
        ));
        assert_eq!(serving.predict_wire_hit(&device, whash), None);
        let after_enroll_bits = predict_bits(serving, &device, &nets[0]);
        assert_eq!(wire_prediction_bits(&mut client, &req), after_enroll_bits);
        assert_eq!(
            serving.predict_wire_hit(&device, whash).map(f64::to_bits),
            Some(after_enroll_bits)
        );

        assert!(matches!(
            client.request(&Request::Shutdown).unwrap(),
            Response::ShuttingDown
        ));
        drop(client);
        server.join().expect("server thread").expect("serve result");
    });
}
