//! Catalog of mobile big-core microarchitectures.
//!
//! The 22 core families mirror the paper's Fig. 3 histogram, spanning
//! almost a decade of mobile CPUs: from the in-order Cortex-A7/A53 to the
//! out-of-order, dot-product-capable Cortex-A77 / Kryo 585. Peak int8
//! MAC throughput and memory parameters are drawn from published
//! microarchitecture references; the *base efficiency* captures how well
//! int8 inference kernels typically exploit each core generation.

use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// A mobile CPU core family (microarchitecture + cache configuration).
///
/// Families are catalog constants; serialization round-trips through the
/// family *name*, which is looked up in [`CORE_CATALOG`] on the way back.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreFamily {
    /// Marketing name, e.g. `"Cortex-A53"` or `"Kryo-260-Gold"`.
    pub name: &'static str,
    /// Year of first silicon — correlates with DRAM speed and process node.
    pub year: u16,
    /// Whether the core executes out of order.
    pub out_of_order: bool,
    /// Peak 8-bit multiply-accumulates per cycle (NEON; cores with the
    /// SDOT/UDOT extension reach 2-4x the older multiply-add sequences).
    pub peak_int8_macs_per_cycle: f64,
    /// SIMD element-wise int8 operations per cycle (activations, adds).
    pub simd_elems_per_cycle: f64,
    /// Fraction of peak a well-tuned inference runtime typically sustains
    /// on this generation (older in-order cores sustain far less).
    pub base_efficiency: f64,
    /// Last-level (L2/L3) cache reachable by one big core, in KiB.
    pub l2_kib: u32,
    /// Supported big-core frequency range in GHz.
    pub freq_range_ghz: (f64, f64),
    /// Typical DRAM bandwidth range for SoCs using this core, GB/s.
    pub dram_bw_range: (f64, f64),
}

/// The 22 core families of the device population (paper Fig. 3).
pub const CORE_CATALOG: [CoreFamily; 22] = [
    CoreFamily {
        name: "Cortex-A7",
        year: 2012,
        out_of_order: false,
        peak_int8_macs_per_cycle: 4.0,
        simd_elems_per_cycle: 8.0,
        base_efficiency: 0.333,
        l2_kib: 512,
        freq_range_ghz: (1.0, 1.5),
        dram_bw_range: (2.0, 4.0),
    },
    CoreFamily {
        name: "Cortex-A17",
        year: 2014,
        out_of_order: true,
        peak_int8_macs_per_cycle: 8.0,
        simd_elems_per_cycle: 8.0,
        base_efficiency: 0.347,
        l2_kib: 1024,
        freq_range_ghz: (1.4, 1.8),
        dram_bw_range: (3.0, 6.0),
    },
    CoreFamily {
        name: "Cortex-A53",
        year: 2014,
        out_of_order: false,
        peak_int8_macs_per_cycle: 8.0,
        simd_elems_per_cycle: 8.0,
        base_efficiency: 0.358,
        l2_kib: 512,
        freq_range_ghz: (1.2, 2.0),
        dram_bw_range: (3.0, 7.0),
    },
    CoreFamily {
        name: "Cortex-A55",
        year: 2018,
        out_of_order: false,
        peak_int8_macs_per_cycle: 12.0,
        simd_elems_per_cycle: 16.0,
        base_efficiency: 0.371,
        l2_kib: 512,
        freq_range_ghz: (1.6, 2.0),
        dram_bw_range: (6.0, 12.0),
    },
    CoreFamily {
        name: "Cortex-A57",
        year: 2015,
        out_of_order: true,
        peak_int8_macs_per_cycle: 12.0,
        simd_elems_per_cycle: 16.0,
        base_efficiency: 0.32,
        l2_kib: 2048,
        freq_range_ghz: (1.8, 2.1),
        dram_bw_range: (5.0, 10.0),
    },
    CoreFamily {
        name: "Cortex-A72",
        year: 2016,
        out_of_order: true,
        peak_int8_macs_per_cycle: 12.0,
        simd_elems_per_cycle: 16.0,
        base_efficiency: 0.347,
        l2_kib: 2048,
        freq_range_ghz: (1.8, 2.5),
        dram_bw_range: (6.0, 12.0),
    },
    CoreFamily {
        name: "Cortex-A73",
        year: 2017,
        out_of_order: true,
        peak_int8_macs_per_cycle: 12.0,
        simd_elems_per_cycle: 16.0,
        base_efficiency: 0.358,
        l2_kib: 2048,
        freq_range_ghz: (1.9, 2.5),
        dram_bw_range: (8.0, 14.0),
    },
    CoreFamily {
        name: "Cortex-A75",
        year: 2018,
        out_of_order: true,
        peak_int8_macs_per_cycle: 14.0,
        simd_elems_per_cycle: 24.0,
        base_efficiency: 0.512,
        l2_kib: 2048,
        freq_range_ghz: (2.2, 2.8),
        dram_bw_range: (10.0, 17.0),
    },
    CoreFamily {
        name: "Cortex-A76",
        year: 2019,
        out_of_order: true,
        peak_int8_macs_per_cycle: 16.0,
        simd_elems_per_cycle: 32.0,
        base_efficiency: 0.486,
        l2_kib: 4096,
        freq_range_ghz: (2.2, 2.9),
        dram_bw_range: (14.0, 25.0),
    },
    CoreFamily {
        name: "Cortex-A77",
        year: 2020,
        out_of_order: true,
        peak_int8_macs_per_cycle: 16.0,
        simd_elems_per_cycle: 32.0,
        base_efficiency: 0.512,
        l2_kib: 4096,
        freq_range_ghz: (2.6, 3.1),
        dram_bw_range: (18.0, 30.0),
    },
    CoreFamily {
        name: "Kryo",
        year: 2016,
        out_of_order: true,
        peak_int8_macs_per_cycle: 12.0,
        simd_elems_per_cycle: 16.0,
        base_efficiency: 0.32,
        l2_kib: 1536,
        freq_range_ghz: (1.8, 2.4),
        dram_bw_range: (6.0, 12.0),
    },
    CoreFamily {
        name: "Kryo-250-Gold",
        year: 2017,
        out_of_order: true,
        peak_int8_macs_per_cycle: 12.0,
        simd_elems_per_cycle: 16.0,
        base_efficiency: 0.347,
        l2_kib: 1024,
        freq_range_ghz: (1.8, 2.2),
        dram_bw_range: (7.0, 12.0),
    },
    CoreFamily {
        name: "Kryo-260-Gold",
        year: 2017,
        out_of_order: true,
        peak_int8_macs_per_cycle: 12.0,
        simd_elems_per_cycle: 16.0,
        base_efficiency: 0.358,
        l2_kib: 1024,
        freq_range_ghz: (1.8, 2.2),
        dram_bw_range: (7.0, 13.0),
    },
    CoreFamily {
        name: "Kryo-280",
        year: 2017,
        out_of_order: true,
        peak_int8_macs_per_cycle: 12.0,
        simd_elems_per_cycle: 16.0,
        base_efficiency: 0.384,
        l2_kib: 2048,
        freq_range_ghz: (2.2, 2.5),
        dram_bw_range: (9.0, 15.0),
    },
    CoreFamily {
        name: "Kryo-360-Gold",
        year: 2018,
        out_of_order: true,
        peak_int8_macs_per_cycle: 14.0,
        simd_elems_per_cycle: 24.0,
        base_efficiency: 0.474,
        l2_kib: 1024,
        freq_range_ghz: (1.9, 2.3),
        dram_bw_range: (10.0, 15.0),
    },
    CoreFamily {
        name: "Kryo-385-Gold",
        year: 2018,
        out_of_order: true,
        peak_int8_macs_per_cycle: 14.0,
        simd_elems_per_cycle: 24.0,
        base_efficiency: 0.486,
        l2_kib: 2048,
        freq_range_ghz: (2.5, 2.8),
        dram_bw_range: (12.0, 18.0),
    },
    CoreFamily {
        name: "Kryo-460-Gold",
        year: 2019,
        out_of_order: true,
        peak_int8_macs_per_cycle: 16.0,
        simd_elems_per_cycle: 32.0,
        base_efficiency: 0.461,
        l2_kib: 2048,
        freq_range_ghz: (2.0, 2.4),
        dram_bw_range: (12.0, 20.0),
    },
    CoreFamily {
        name: "Kryo-485-Gold",
        year: 2019,
        out_of_order: true,
        peak_int8_macs_per_cycle: 16.0,
        simd_elems_per_cycle: 32.0,
        base_efficiency: 0.486,
        l2_kib: 2048,
        freq_range_ghz: (2.4, 2.96),
        dram_bw_range: (14.0, 25.0),
    },
    CoreFamily {
        name: "Kryo-495-Gold",
        year: 2020,
        out_of_order: true,
        peak_int8_macs_per_cycle: 16.0,
        simd_elems_per_cycle: 32.0,
        base_efficiency: 0.499,
        l2_kib: 2048,
        freq_range_ghz: (2.2, 2.4),
        dram_bw_range: (14.0, 25.0),
    },
    CoreFamily {
        name: "Kryo-585",
        year: 2020,
        out_of_order: true,
        peak_int8_macs_per_cycle: 16.0,
        simd_elems_per_cycle: 32.0,
        base_efficiency: 0.512,
        l2_kib: 4096,
        freq_range_ghz: (2.84, 3.1),
        dram_bw_range: (20.0, 34.0),
    },
    CoreFamily {
        name: "Exynos-M3",
        year: 2018,
        out_of_order: true,
        peak_int8_macs_per_cycle: 14.0,
        simd_elems_per_cycle: 24.0,
        base_efficiency: 0.436,
        l2_kib: 4096,
        freq_range_ghz: (2.5, 2.9),
        dram_bw_range: (10.0, 17.0),
    },
    CoreFamily {
        name: "Exynos-M4",
        year: 2019,
        out_of_order: true,
        peak_int8_macs_per_cycle: 18.0,
        simd_elems_per_cycle: 32.0,
        base_efficiency: 0.474,
        l2_kib: 4096,
        freq_range_ghz: (2.6, 2.9),
        dram_bw_range: (13.0, 22.0),
    },
];

impl Serialize for CoreFamily {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self.name)
    }
}

impl<'de> Deserialize<'de> for CoreFamily {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let name = String::deserialize(deserializer)?;
        CoreFamily::by_name(&name)
            .copied()
            .ok_or_else(|| D::Error::custom(format!("unknown core family {name:?}")))
    }
}

impl CoreFamily {
    /// Looks a family up by name.
    pub fn by_name(name: &str) -> Option<&'static CoreFamily> {
        CORE_CATALOG.iter().find(|f| f.name == name)
    }

    /// Index of this family within [`CORE_CATALOG`] (one-hot position for
    /// the static hardware representation).
    pub fn index(&self) -> usize {
        CORE_CATALOG
            .iter()
            .position(|f| f.name == self.name)
            .expect("family comes from the catalog")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn catalog_has_22_unique_families() {
        let names: HashSet<_> = CORE_CATALOG.iter().map(|f| f.name).collect();
        assert_eq!(names.len(), 22);
    }

    #[test]
    fn ranges_are_sane() {
        for f in &CORE_CATALOG {
            assert!(f.freq_range_ghz.0 <= f.freq_range_ghz.1, "{}", f.name);
            assert!(f.dram_bw_range.0 <= f.dram_bw_range.1, "{}", f.name);
            assert!(f.peak_int8_macs_per_cycle >= 4.0, "{}", f.name);
            assert!(
                f.base_efficiency > 0.1 && f.base_efficiency < 1.0,
                "{}",
                f.name
            );
            assert!((2010..=2021).contains(&f.year), "{}", f.name);
        }
    }

    #[test]
    fn newer_cores_are_faster_per_cycle() {
        let a53 = CoreFamily::by_name("Cortex-A53").unwrap();
        let a77 = CoreFamily::by_name("Cortex-A77").unwrap();
        assert!(
            a77.peak_int8_macs_per_cycle * a77.base_efficiency
                > 2.0 * a53.peak_int8_macs_per_cycle * a53.base_efficiency
        );
    }

    #[test]
    fn lookup_by_name_and_index_roundtrip() {
        for (i, f) in CORE_CATALOG.iter().enumerate() {
            assert_eq!(f.index(), i);
            assert_eq!(CoreFamily::by_name(f.name).unwrap().name, f.name);
        }
        assert!(CoreFamily::by_name("Pentium-III").is_none());
    }
}
