//! Devices: public specifications plus hidden execution state.

use gdcm_dnn::OpKind;
use serde::{Deserialize, Serialize};

use crate::core_model::CoreFamily;

/// Dense identifier of a device within a population.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DeviceId(pub usize);

impl DeviceId {
    /// The dense index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Operator classes with distinct kernel implementations on mobile CPUs.
///
/// Each class has its own hidden per-device efficiency factor: real
/// devices differ in which kernels their runtime build, scheduler, and
/// cache behaviour favour (e.g. depthwise convolutions are notoriously
/// uneven across devices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Dense and grouped convolutions (im2col/winograd GEMM kernels).
    Conv,
    /// Depthwise convolutions.
    Depthwise,
    /// Fully-connected layers (GEMV).
    Gemm,
    /// Spatial and global pooling.
    Pool,
    /// Activations, element-wise adds/multiplies, concatenation.
    Elementwise,
}

impl OpClass {
    /// All classes, in hidden-state vector order.
    pub const ALL: [OpClass; 5] = [
        OpClass::Conv,
        OpClass::Depthwise,
        OpClass::Gemm,
        OpClass::Pool,
        OpClass::Elementwise,
    ];

    /// Stable index into per-class arrays.
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|c| *c == self).expect("listed")
    }

    /// Maps a graph operator kind to its kernel class.
    pub fn from_kind(kind: OpKind) -> OpClass {
        match kind {
            OpKind::Conv2d => OpClass::Conv,
            OpKind::DepthwiseConv2d => OpClass::Depthwise,
            OpKind::FullyConnected => OpClass::Gemm,
            OpKind::MaxPool2d | OpKind::AvgPool2d | OpKind::GlobalAvgPool => OpClass::Pool,
            OpKind::Input
            | OpKind::Activation
            | OpKind::Add
            | OpKind::Multiply
            | OpKind::Concat => OpClass::Elementwise,
        }
    }

    /// Baseline fraction of a core's peak throughput that this kernel
    /// class sustains on a well-behaved device. Depthwise kernels are
    /// structurally unable to keep MAC units busy; GEMV is bandwidth-bound.
    pub fn base_utilization(self) -> f64 {
        match self {
            OpClass::Conv => 0.80,
            OpClass::Depthwise => 0.20,
            OpClass::Gemm => 0.45,
            OpClass::Pool => 0.60,
            OpClass::Elementwise => 0.70,
        }
    }
}

/// The per-device execution state *not* visible in public specifications.
///
/// These factors are sampled once per device and fixed thereafter; they
/// are what the signature set measures indirectly and what static-spec
/// models cannot see.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HiddenState {
    /// Global software-stack efficiency multiplier (vendor kernels,
    /// scheduler behaviour, background load, binary build flags).
    pub global_efficiency: f64,
    /// Per-[`OpClass`] kernel efficiency multipliers.
    pub class_efficiency: [f64; 5],
    /// Memory-system effectiveness multiplier (DRAM timings, memory
    /// controller configuration, cache partitioning).
    pub memory_efficiency: f64,
    /// Per-layer interpreter dispatch overhead, in microseconds.
    pub dispatch_overhead_us: f64,
    /// Sustained thermal-throttle slowdown (>= 1.0).
    pub throttle: f64,
    /// Per-run multiplicative measurement noise, log-stddev.
    pub run_noise_sigma: f64,
    /// Sustained big-core clock as a fraction of the advertised maximum.
    /// Real phones rarely hold their marketed frequency: the governor,
    /// thermal envelope and vendor tuning pin the sustained clock anywhere
    /// from ~55% to 100% of spec — one of the main reasons the paper's
    /// Fig. 5 shows a 2.5x latency spread at identical spec frequency.
    pub sustained_freq_factor: f64,
    /// Per-(device, network) idiosyncrasy, log-stddev: a *fixed* factor
    /// per network capturing layout/cache-alignment/operator-tiling luck
    /// on this particular device. Unlike run noise it does not average
    /// out over repeated runs — it is what keeps even signature-based
    /// models from perfect prediction, as in the paper's R² ≈ 0.94.
    pub pair_sigma: f64,
}

impl HiddenState {
    /// A neutral hidden state (useful in tests): every multiplier is 1
    /// and noise is zero.
    pub fn neutral() -> Self {
        Self {
            global_efficiency: 1.0,
            class_efficiency: [1.0; 5],
            memory_efficiency: 1.0,
            dispatch_overhead_us: 10.0,
            throttle: 1.0,
            run_noise_sigma: 0.0,
            pair_sigma: 0.0,
            sustained_freq_factor: 1.0,
        }
    }
}

/// A simulated mobile device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Device {
    /// Dense population index.
    pub id: DeviceId,
    /// Phone model string (e.g. `"Redmi Note 5 Pro"`).
    pub model: String,
    /// Core family of the big CPU cluster.
    pub core: CoreFamily,
    /// Big-core frequency in GHz (public spec).
    pub freq_ghz: f64,
    /// Main memory size in GB (public spec).
    pub dram_gb: u32,
    /// DRAM bandwidth in GB/s (not in the public spec vector).
    pub dram_bw_gbps: f64,
    /// Hidden execution state.
    pub hidden: HiddenState,
}

impl Device {
    /// The sustained big-core frequency in GHz (spec x governor factor).
    pub fn sustained_freq_ghz(&self) -> f64 {
        self.freq_ghz * self.hidden.sustained_freq_factor
    }

    /// Effective sustained int8 MAC throughput for a kernel class, in
    /// MACs per second.
    pub fn effective_macs_per_sec(&self, class: OpClass) -> f64 {
        self.sustained_freq_ghz()
            * 1e9
            * self.core.peak_int8_macs_per_cycle
            * self.core.base_efficiency
            * class.base_utilization()
            * self.hidden.global_efficiency
            * self.hidden.class_efficiency[class.index()]
    }

    /// Effective element-wise int8 throughput in elements per second.
    pub fn effective_elems_per_sec(&self) -> f64 {
        self.sustained_freq_ghz()
            * 1e9
            * self.core.simd_elems_per_cycle
            * self.core.base_efficiency
            * self.hidden.global_efficiency
            * self.hidden.class_efficiency[OpClass::Elementwise.index()]
    }

    /// Effective streaming bandwidth in bytes per second for a working
    /// set of the given size: fits-in-L2 traffic streams several times
    /// faster than DRAM-resident traffic.
    pub fn effective_bandwidth(&self, working_set_bytes: u64) -> f64 {
        let l2_bytes = self.core.l2_kib as u64 * 1024;
        let dram = self.dram_bw_gbps * 1e9 * 0.6; // single-core streaming share
        let bw = if working_set_bytes <= l2_bytes {
            // L2 bandwidth scales with frequency; ~8 bytes/cycle sustained.
            (self.sustained_freq_ghz() * 1e9 * 8.0).max(dram)
        } else {
            dram
        };
        bw * self.hidden.memory_efficiency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core_model::CORE_CATALOG;

    fn test_device() -> Device {
        Device {
            id: DeviceId(0),
            model: "test".into(),
            core: CORE_CATALOG[2], // Cortex-A53
            freq_ghz: 1.8,
            dram_gb: 3,
            dram_bw_gbps: 5.0,
            hidden: HiddenState::neutral(),
        }
    }

    #[test]
    fn op_class_mapping_covers_all_kinds() {
        for kind in OpKind::ALL {
            let _ = OpClass::from_kind(kind); // must not panic
        }
        assert_eq!(OpClass::from_kind(OpKind::Conv2d), OpClass::Conv);
        assert_eq!(
            OpClass::from_kind(OpKind::DepthwiseConv2d),
            OpClass::Depthwise
        );
        assert_eq!(OpClass::from_kind(OpKind::GlobalAvgPool), OpClass::Pool);
        assert_eq!(OpClass::from_kind(OpKind::Add), OpClass::Elementwise);
    }

    #[test]
    fn class_indices_stable() {
        for (i, c) in OpClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn throughput_scales_with_frequency() {
        let slow = test_device();
        let mut fast = test_device();
        fast.freq_ghz = 3.6;
        assert!(
            fast.effective_macs_per_sec(OpClass::Conv)
                > 1.9 * slow.effective_macs_per_sec(OpClass::Conv)
        );
    }

    #[test]
    fn depthwise_sustains_less_than_dense() {
        let d = test_device();
        assert!(
            d.effective_macs_per_sec(OpClass::Depthwise)
                < 0.5 * d.effective_macs_per_sec(OpClass::Conv)
        );
    }

    #[test]
    fn cache_resident_traffic_is_faster() {
        let d = test_device();
        let small = d.effective_bandwidth(64 * 1024);
        let large = d.effective_bandwidth(64 * 1024 * 1024);
        assert!(small > large);
    }

    #[test]
    fn hidden_factors_scale_throughput() {
        let base = test_device();
        let mut tuned = test_device();
        tuned.hidden.global_efficiency = 2.0;
        assert!(
            (tuned.effective_macs_per_sec(OpClass::Conv)
                / base.effective_macs_per_sec(OpClass::Conv)
                - 2.0)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn a53_effective_gmacs_is_realistic() {
        // TFLite int8 on a Cortex-A53 big cluster sustains roughly
        // 1-4 GMAC/s; the neutral-device model should land there.
        let d = test_device();
        let gmacs = d.effective_macs_per_sec(OpClass::Conv) / 1e9;
        assert!((1.0..8.0).contains(&gmacs), "got {gmacs} GMAC/s");
    }
}
