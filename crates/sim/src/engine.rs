//! Roofline latency engine: network × device → milliseconds.

use gdcm_dnn::{Network, OpKind};
use serde::{Deserialize, Serialize};

use crate::device::{Device, OpClass};

/// Timing of a single graph node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerTiming {
    /// Node index within the network.
    pub node: usize,
    /// Kernel class the node executed as.
    pub class: OpClass,
    /// Compute-bound time in milliseconds.
    pub compute_ms: f64,
    /// Memory-bound time in milliseconds.
    pub memory_ms: f64,
    /// Dispatch overhead in milliseconds.
    pub overhead_ms: f64,
}

impl LayerTiming {
    /// The node's total contribution: roofline max plus dispatch.
    pub fn total_ms(&self) -> f64 {
        self.compute_ms.max(self.memory_ms) + self.overhead_ms
    }

    /// Whether the node is memory-bound under the roofline.
    pub fn memory_bound(&self) -> bool {
        self.memory_ms > self.compute_ms
    }
}

/// Full latency decomposition of one inference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    /// Per-node timings in topological order (input node excluded).
    pub layers: Vec<LayerTiming>,
    /// End-to-end single-threaded latency in milliseconds (including the
    /// device's sustained thermal throttle).
    pub total_ms: f64,
}

impl LatencyBreakdown {
    /// Sums the per-class compute+memory time, in milliseconds.
    pub fn class_totals(&self) -> [f64; 5] {
        let mut totals = [0f64; 5];
        for l in &self.layers {
            totals[l.class.index()] += l.total_ms();
        }
        totals
    }
}

/// The deterministic latency model.
///
/// Each node runs for `max(compute, memory) + dispatch` where compute
/// time uses the device's sustained per-class MAC/element throughput and
/// memory time uses the working-set-dependent streaming bandwidth; the
/// network total is scaled by the device's thermal throttle. All hidden
/// device factors enter through [`Device`]; the engine itself has no
/// state, so one engine serves every device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyEngine {
    _private: (),
}

impl LatencyEngine {
    /// Creates the engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Computes the noise-free latency decomposition of `network` on
    /// `device`.
    pub fn breakdown(&self, network: &Network, device: &Device) -> LatencyBreakdown {
        let cost = network.cost();
        let mut layers = Vec::with_capacity(network.len());
        let overhead_ms = device.hidden.dispatch_overhead_us / 1e3;

        for (node, _inputs) in network.layers() {
            let kind = node.op.kind();
            let class = OpClass::from_kind(kind);
            let lc = cost.per_node[node.id.index()];

            // Compute time: MAC work at the class's sustained rate plus
            // element-wise work at SIMD rate. Grouped (non-depthwise)
            // convolutions lose some GEMM efficiency to fragmentation.
            let mut macs_rate = device.effective_macs_per_sec(class);
            if let gdcm_dnn::Op::Conv2d(p) = &node.op {
                if p.groups > 1 {
                    macs_rate *= 0.6;
                }
            }
            let elem_ops = lc.flops.saturating_sub(2 * lc.macs);
            let compute_s = if lc.macs > 0 {
                lc.macs as f64 / macs_rate
            } else {
                0.0
            } + elem_ops as f64 / device.effective_elems_per_sec();

            // Memory time: total traffic at working-set-dependent bandwidth.
            let bytes = lc.total_bytes();
            let memory_s = if bytes > 0 {
                bytes as f64 / device.effective_bandwidth(bytes)
            } else {
                0.0
            };

            // Concat and input are free in fused runtimes apart from the
            // copy, which the byte model already covers.
            let overhead = if kind == OpKind::Concat {
                overhead_ms * 0.25
            } else {
                overhead_ms
            };

            layers.push(LayerTiming {
                node: node.id.index(),
                class,
                compute_ms: compute_s * 1e3,
                memory_ms: memory_s * 1e3,
                overhead_ms: overhead,
            });
        }

        let raw: f64 = layers.iter().map(LayerTiming::total_ms).sum();
        LatencyBreakdown {
            layers,
            total_ms: raw * device.hidden.throttle,
        }
    }

    /// Noise-free end-to-end latency in milliseconds.
    pub fn latency_ms(&self, network: &Network, device: &Device) -> f64 {
        self.breakdown(network, device).total_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core_model::{CoreFamily, CORE_CATALOG};
    use crate::device::{DeviceId, HiddenState};
    use gdcm_gen::zoo;

    fn device(core: &CoreFamily, freq: f64) -> Device {
        Device {
            id: DeviceId(0),
            model: "test".into(),
            core: *core,
            freq_ghz: freq,
            dram_gb: 4,
            dram_bw_gbps: (core.dram_bw_range.0 + core.dram_bw_range.1) / 2.0,
            hidden: HiddenState::neutral(),
        }
    }

    #[test]
    fn mobilenet_v2_latencies_match_field_reports() {
        let net = zoo::mobilenet_v2(1.0).unwrap();
        let engine = LatencyEngine::new();

        // Budget A53 phone ~1.8 GHz: field TFLite int8 reports >= 100 ms.
        let slow = device(CoreFamily::by_name("Cortex-A53").unwrap(), 1.8);
        let ms_slow = engine.latency_ms(&net, &slow);
        assert!((60.0..400.0).contains(&ms_slow), "A53: {ms_slow} ms");

        // Flagship A77-class: tens of milliseconds.
        let fast = device(CoreFamily::by_name("Cortex-A77").unwrap(), 2.8);
        let ms_fast = engine.latency_ms(&net, &fast);
        assert!((4.0..60.0).contains(&ms_fast), "A77: {ms_fast} ms");

        assert!(ms_slow > 3.0 * ms_fast);
    }

    #[test]
    fn latency_decreases_with_frequency() {
        let net = zoo::mobilenet_v2(1.0).unwrap();
        let engine = LatencyEngine::new();
        let core = CoreFamily::by_name("Cortex-A73").unwrap();
        let lo = engine.latency_ms(&net, &device(core, 1.5));
        let hi = engine.latency_ms(&net, &device(core, 2.5));
        assert!(lo > hi);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let net = zoo::mobilenet_v3_small().unwrap();
        let engine = LatencyEngine::new();
        let d = device(CoreFamily::by_name("Kryo-280").unwrap(), 2.3);
        let b = engine.breakdown(&net, &d);
        let sum: f64 = b.layers.iter().map(LayerTiming::total_ms).sum();
        assert!((sum * d.hidden.throttle - b.total_ms).abs() < 1e-9);
        assert_eq!(b.layers.len(), net.layer_count());
    }

    #[test]
    fn bigger_network_takes_longer() {
        let small = zoo::mobilenet_v3_small().unwrap();
        let big = zoo::mobilenet_v1(1.0).unwrap();
        let engine = LatencyEngine::new();
        let d = device(CoreFamily::by_name("Cortex-A72").unwrap(), 2.0);
        assert!(engine.latency_ms(&big, &d) > engine.latency_ms(&small, &d));
    }

    #[test]
    fn hidden_state_moves_latency() {
        let net = zoo::mobilenet_v2(1.0).unwrap();
        let engine = LatencyEngine::new();
        let core = CoreFamily::by_name("Cortex-A72").unwrap();
        let base = device(core, 2.0);
        let mut slowed = device(core, 2.0);
        slowed.hidden.global_efficiency = 0.5;
        slowed.hidden.throttle = 1.3;
        let r = engine.latency_ms(&net, &slowed) / engine.latency_ms(&net, &base);
        assert!(r > 1.8, "hidden state should dominate: ratio {r}");
    }

    #[test]
    fn depthwise_heavy_network_is_relatively_slower_when_dw_kernels_bad() {
        let engine = LatencyEngine::new();
        let core = CoreFamily::by_name("Cortex-A73").unwrap();
        let dw_heavy = zoo::mobilenet_v1(1.0).unwrap();
        let conv_heavy = zoo::squeezenet_v1_1().unwrap();

        let good = device(core, 2.2);
        let mut bad_dw = device(core, 2.2);
        bad_dw.hidden.class_efficiency[OpClass::Depthwise.index()] = 0.4;

        let ratio_dw = engine.latency_ms(&dw_heavy, &bad_dw) / engine.latency_ms(&dw_heavy, &good);
        let ratio_conv =
            engine.latency_ms(&conv_heavy, &bad_dw) / engine.latency_ms(&conv_heavy, &good);
        assert!(
            ratio_dw > ratio_conv,
            "dw-heavy {ratio_dw} vs conv-heavy {ratio_conv}"
        );
    }

    #[test]
    fn all_catalog_cores_produce_finite_positive_latency() {
        let net = zoo::mobilenet_v2(1.0).unwrap();
        let engine = LatencyEngine::new();
        for core in &CORE_CATALOG {
            let d = device(core, core.freq_range_ghz.1);
            let ms = engine.latency_ms(&net, &d);
            assert!(ms.is_finite() && ms > 0.0, "{}: {ms}", core.name);
        }
    }
}

#[cfg(test)]
mod class_totals_tests {
    use super::*;
    use crate::core_model::CoreFamily;
    use crate::device::{DeviceId, HiddenState, OpClass};
    use gdcm_gen::zoo;

    #[test]
    fn class_totals_partition_the_breakdown() {
        let net = zoo::mobilenet_v2(1.0).unwrap();
        let device = crate::Device {
            id: DeviceId(0),
            model: "t".into(),
            core: *CoreFamily::by_name("Cortex-A73").unwrap(),
            freq_ghz: 2.2,
            dram_gb: 4,
            dram_bw_gbps: 10.0,
            hidden: HiddenState::neutral(),
        };
        let b = LatencyEngine::new().breakdown(&net, &device);
        let totals = b.class_totals();
        let sum: f64 = totals.iter().sum();
        let direct: f64 = b.layers.iter().map(LayerTiming::total_ms).sum();
        assert!((sum - direct).abs() < 1e-9);
        // MobileNetV2 is conv+depthwise dominated.
        assert!(totals[OpClass::Conv.index()] > 0.0);
        assert!(totals[OpClass::Depthwise.index()] > 0.0);
    }

    #[test]
    fn memory_bound_flag_is_consistent() {
        let net = zoo::mobilenet_v2(1.0).unwrap();
        let device = crate::DevicePopulation::sample(1, 0).devices.remove(0);
        let b = LatencyEngine::new().breakdown(&net, &device);
        for layer in &b.layers {
            assert_eq!(layer.memory_bound(), layer.memory_ms > layer.compute_ms);
            assert!(layer.total_ms() >= layer.overhead_ms);
        }
    }
}
