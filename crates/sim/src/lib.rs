//! # gdcm-sim — analytical mobile-CPU latency simulator
//!
//! Stands in for the paper's measurement substrate: 118 int8 TFLite
//! networks executed on the single big core of 105 crowd-sourced Android
//! phones, each latency averaged over 30 runs.
//!
//! The simulator's causal structure encodes the paper's central empirical
//! finding. A device's latency is a roofline-style function of
//!
//! * **public specifications** — core family, frequency, DRAM size — the
//!   features a software developer can query, and
//! * **hidden state** — per-operator-class kernel efficiency, memory-system
//!   effectiveness, dispatch overhead and thermal throttling — the
//!   microarchitectural and software-stack factors that are *not*
//!   queryable and that the paper shows dominate real-device variance
//!   (devices with identical CPU model, frequency, and DRAM differed by
//!   over 2.5x; the same CPU appears in all three speed clusters).
//!
//! Consequently, models trained on static specs predict poorly while
//! models given measured signature-set latencies (which observe the
//! hidden state directly) predict well — the paper's Fig. 8 vs Fig. 9.
//!
//! ```
//! use gdcm_sim::{DevicePopulation, LatencyEngine};
//! use gdcm_gen::zoo;
//!
//! let devices = DevicePopulation::paper(7).devices;
//! assert_eq!(devices.len(), 105);
//! let net = zoo::mobilenet_v2(1.0).unwrap();
//! let engine = LatencyEngine::default();
//! let ms = engine.latency_ms(&net, &devices[0]);
//! assert!(ms > 1.0 && ms < 2000.0);
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![warn(missing_docs)]

mod core_model;
mod device;
mod engine;
mod measure;
mod population;

pub use core_model::{CoreFamily, CORE_CATALOG};
pub use device::{Device, DeviceId, HiddenState, OpClass};
pub use engine::{LatencyBreakdown, LatencyEngine, LayerTiming};
pub use measure::{measure, LatencyDb, Measurement, MeasurementCache, MeasurementConfig};
pub use population::{DevicePopulation, PAPER_DEVICE_COUNT};
