//! Measurement harness and latency database.
//!
//! Mirrors the paper's Android-app protocol: each network is scheduled on
//! the device's big core and timed 30 times; the mean is reported to a
//! central database. Per-run noise is multiplicative log-normal with a
//! device-specific magnitude (budget phones jitter more).

use gdcm_gen::NamedNetwork;
use parking_lot::RwLock;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use crate::device::Device;
use crate::engine::LatencyEngine;

/// Measurement protocol parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeasurementConfig {
    /// Number of timed runs averaged per (network, device) pair.
    pub runs: u32,
    /// Seed for the per-run noise stream.
    pub seed: u64,
}

impl Default for MeasurementConfig {
    fn default() -> Self {
        // The paper averages 30 runs.
        Self { runs: 30, seed: 0 }
    }
}

/// A measured latency: the statistic the Android app uploads.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Mean latency over all runs, in milliseconds.
    pub mean_ms: f64,
    /// Sample standard deviation over the runs, in milliseconds.
    pub std_ms: f64,
    /// Number of runs averaged.
    pub runs: u32,
}

/// Standard normal via Box-Muller (local copy to keep the measurement
/// noise stream independent of the population sampler's).
fn randn(rng: &mut ChaCha8Rng) -> f64 {
    use rand::Rng;
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Times one network on one device under the protocol.
///
/// Noise is keyed by `(config.seed, device id, network index)` so every
/// (network, device) cell is reproducible in isolation, regardless of
/// measurement order.
pub fn measure(
    engine: &LatencyEngine,
    network: &NamedNetwork,
    device: &Device,
    config: &MeasurementConfig,
) -> Measurement {
    let true_ms = engine.latency_ms(&network.network, device);
    let stream = config
        .seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((device.id.index() as u64) << 32)
        .wrapping_add(network.index as u64);
    let mut rng = ChaCha8Rng::seed_from_u64(stream);

    // The fixed idiosyncrasy of this (device, network) pair: drawn once
    // from the pair stream, constant across all runs (it does not average
    // out), re-derivable in any measurement order.
    let pair_factor = (device.hidden.pair_sigma * randn(&mut rng)).exp();
    let true_ms = true_ms * pair_factor;

    let sigma = device.hidden.run_noise_sigma;
    let mut samples = Vec::with_capacity(config.runs as usize);
    for _ in 0..config.runs.max(1) {
        // Multiplicative jitter plus occasional scheduler hiccups that
        // only ever slow a run down.
        let jitter = (sigma * randn(&mut rng)).exp();
        let hiccup = if rng.gen_bool_compat(0.03) { 1.15 } else { 1.0 };
        samples.push(true_ms * jitter * hiccup);
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1.0).max(1.0);

    gdcm_obs::counter("sim/measurements").incr();
    gdcm_obs::counter("sim/noise_runs").add(config.runs.max(1) as u64);
    gdcm_obs::counter(&format!("sim/measurements/device_{:03}", device.id.index())).incr();
    gdcm_obs::histogram("sim/measured_ms").record(mean);

    Measurement {
        mean_ms: mean,
        std_ms: var.sqrt(),
        runs: config.runs,
    }
}

/// Small extension trait so the measurement path controls its own
/// Bernoulli draw (keeps rand's API surface in one place).
trait GenBoolCompat {
    fn gen_bool_compat(&mut self, p: f64) -> bool;
}

impl GenBoolCompat for ChaCha8Rng {
    fn gen_bool_compat(&mut self, p: f64) -> bool {
        use rand::Rng;
        self.gen_range(0.0..1.0) < p
    }
}

/// The central latency repository: mean latency of every network on every
/// device — the paper's 12,390-point dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyDb {
    n_devices: usize,
    n_networks: usize,
    /// Row-major `[device][network]` mean latencies in ms.
    mean_ms: Vec<f64>,
}

impl LatencyDb {
    /// Measures the full cross product of `networks` x `devices`.
    pub fn collect(
        engine: &LatencyEngine,
        networks: &[NamedNetwork],
        devices: &[Device],
        config: &MeasurementConfig,
    ) -> Self {
        let _span = gdcm_obs::span!("latency_db_collect");
        let start = std::time::Instant::now();
        let mut mean_ms = Vec::with_capacity(devices.len() * networks.len());
        for device in devices {
            for network in networks {
                mean_ms.push(measure(engine, network, device, config).mean_ms);
            }
        }
        let cells = mean_ms.len();
        let elapsed = start.elapsed().as_secs_f64();
        gdcm_obs::gauge("sim/db/devices").set(devices.len() as f64);
        gdcm_obs::gauge("sim/db/networks").set(networks.len() as f64);
        // Engine throughput: measured (network, device) cells per second.
        if elapsed > 0.0 {
            gdcm_obs::gauge("sim/engine/cells_per_sec").set(cells as f64 / elapsed);
        }
        gdcm_obs::event(
            "collect",
            "sim/latency_db",
            &[
                ("cells", gdcm_obs::FieldValue::U64(cells as u64)),
                ("wall_s", gdcm_obs::FieldValue::F64(elapsed)),
            ],
        );
        Self {
            n_devices: devices.len(),
            n_networks: networks.len(),
            mean_ms,
        }
    }

    /// Number of devices (rows).
    pub fn n_devices(&self) -> usize {
        self.n_devices
    }

    /// Number of networks (columns).
    pub fn n_networks(&self) -> usize {
        self.n_networks
    }

    /// Total number of data points.
    pub fn len(&self) -> usize {
        self.mean_ms.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.mean_ms.is_empty()
    }

    /// Mean latency of `network` on `device`, in ms.
    ///
    /// # Panics
    ///
    /// Panics when either index is out of bounds.
    pub fn latency(&self, device: usize, network: usize) -> f64 {
        assert!(device < self.n_devices, "device {device} out of bounds");
        assert!(network < self.n_networks, "network {network} out of bounds");
        self.mean_ms[device * self.n_networks + network]
    }

    /// All latencies of one device across networks (its 118-dim vector).
    ///
    /// # Panics
    ///
    /// Panics when `device` is out of bounds (same contract as
    /// [`LatencyDb::latency`]; the raw slice arithmetic used to panic
    /// with an index-out-of-range message that named neither argument).
    pub fn device_vector(&self, device: usize) -> &[f64] {
        assert!(device < self.n_devices, "device {device} out of bounds");
        &self.mean_ms[device * self.n_networks..(device + 1) * self.n_networks]
    }

    /// All latencies of one network across devices (its 105-dim vector).
    pub fn network_vector(&self, network: usize) -> Vec<f64> {
        (0..self.n_devices)
            .map(|d| self.latency(d, network))
            .collect()
    }

    /// Like [`LatencyDb::network_vector`] but restricted to a device
    /// subset — used when signature selection may only see training
    /// devices.
    pub fn network_vector_over(&self, network: usize, devices: &[usize]) -> Vec<f64> {
        devices.iter().map(|&d| self.latency(d, network)).collect()
    }

    /// Mean latency of a device over all networks.
    ///
    /// # Panics
    ///
    /// Panics when `device` is out of bounds or the database has no
    /// networks (a 0/0 division used to return NaN silently).
    pub fn device_mean(&self, device: usize) -> f64 {
        assert!(
            self.n_networks > 0,
            "device_mean over a database with 0 networks"
        );
        let v = self.device_vector(device);
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Thread-safe memoizing measurement cache.
///
/// The collaborative-repository workflow interleaves predictions with
/// on-demand measurements of single (device, network) cells; the cache
/// guarantees each cell is measured once (30 runs) and then reused.
#[derive(Debug)]
pub struct MeasurementCache {
    engine: LatencyEngine,
    config: MeasurementConfig,
    cells: RwLock<HashMap<(usize, usize), Measurement>>,
}

impl MeasurementCache {
    /// Creates an empty cache over the given protocol.
    pub fn new(engine: LatencyEngine, config: MeasurementConfig) -> Self {
        Self {
            engine,
            config,
            cells: RwLock::new(HashMap::new()),
        }
    }

    /// Returns the cached measurement for `(device, network)`, measuring
    /// on first access.
    pub fn measure(&self, network: &NamedNetwork, device: &Device) -> Measurement {
        let key = (device.id.index(), network.index);
        if let Some(m) = self.cells.read().get(&key) {
            gdcm_obs::counter("sim/cache/hits").incr();
            return *m;
        }
        gdcm_obs::counter("sim/cache/misses").incr();
        let m = measure(&self.engine, network, device, &self.config);
        self.cells.write().insert(key, m);
        m
    }

    /// Number of distinct cells measured so far.
    pub fn len(&self) -> usize {
        self.cells.read().len()
    }

    /// Whether no cells have been measured yet.
    pub fn is_empty(&self) -> bool {
        self.cells.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::DevicePopulation;
    use gdcm_gen::benchmark_suite_with;
    use gdcm_gen::SearchSpace;

    fn tiny_setup() -> (Vec<NamedNetwork>, Vec<Device>) {
        let nets = benchmark_suite_with(1, SearchSpace::tiny(), 2);
        let pop = DevicePopulation::sample(4, 5);
        (nets, pop.devices)
    }

    #[test]
    fn measurement_is_near_truth_and_positive() {
        let (nets, devices) = tiny_setup();
        let engine = LatencyEngine::new();
        let m = measure(
            &engine,
            &nets[0],
            &devices[0],
            &MeasurementConfig::default(),
        );
        let truth = engine.latency_ms(&nets[0].network, &devices[0]);
        assert!(m.mean_ms > 0.0);
        // Pair idiosyncrasy (σ ≤ 0.16) plus averaged run noise keeps the
        // reported mean within ~50% of the noise-free roofline value.
        assert!(
            (m.mean_ms - truth).abs() / truth < 0.5,
            "{} vs {truth}",
            m.mean_ms
        );
        assert!(m.std_ms >= 0.0);
        assert_eq!(m.runs, 30);
    }

    #[test]
    fn averaging_more_runs_reduces_error() {
        // Disable the fixed pair idiosyncrasy so only run noise remains —
        // that is the component averaging is supposed to shrink.
        let (nets, devices) = tiny_setup();
        let mut device = devices[0].clone();
        device.hidden.pair_sigma = 0.0;
        let engine = LatencyEngine::new();
        let truth = engine.latency_ms(&nets[0].network, &device);
        let errs = |runs: u32| -> f64 {
            (0..20)
                .map(|s| {
                    let m = measure(
                        &engine,
                        &nets[0],
                        &device,
                        &MeasurementConfig { runs, seed: s },
                    );
                    ((m.mean_ms - truth) / truth).abs()
                })
                .sum::<f64>()
                / 20.0
        };
        assert!(errs(30) < errs(1));
    }

    #[test]
    fn measurement_deterministic_per_cell() {
        let (nets, devices) = tiny_setup();
        let engine = LatencyEngine::new();
        let cfg = MeasurementConfig::default();
        let a = measure(&engine, &nets[1], &devices[2], &cfg);
        let b = measure(&engine, &nets[1], &devices[2], &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn db_shape_and_access() {
        let (nets, devices) = tiny_setup();
        let engine = LatencyEngine::new();
        let db = LatencyDb::collect(&engine, &nets, &devices, &MeasurementConfig::default());
        assert_eq!(db.n_devices(), 4);
        assert_eq!(db.n_networks(), nets.len());
        assert_eq!(db.len(), 4 * nets.len());
        let v = db.device_vector(1);
        assert_eq!(v.len(), nets.len());
        assert_eq!(db.latency(1, 3), v[3]);
        let nv = db.network_vector(0);
        assert_eq!(nv.len(), 4);
        assert_eq!(nv[2], db.latency(2, 0));
        let sub = db.network_vector_over(0, &[3, 1]);
        assert_eq!(sub, vec![db.latency(3, 0), db.latency(1, 0)]);
    }

    #[test]
    #[should_panic(expected = "device 4 out of bounds")]
    fn device_vector_panics_out_of_bounds_with_context() {
        let (nets, devices) = tiny_setup();
        let engine = LatencyEngine::new();
        let db = LatencyDb::collect(&engine, &nets, &devices, &MeasurementConfig::default());
        let _ = db.device_vector(4);
    }

    #[test]
    #[should_panic(expected = "0 networks")]
    fn device_mean_panics_instead_of_nan_on_zero_networks() {
        let (_, devices) = tiny_setup();
        let engine = LatencyEngine::new();
        let db = LatencyDb::collect(&engine, &[], &devices, &MeasurementConfig::default());
        let _ = db.device_mean(0);
    }

    #[test]
    fn db_matches_pointwise_measurement() {
        let (nets, devices) = tiny_setup();
        let engine = LatencyEngine::new();
        let cfg = MeasurementConfig::default();
        let db = LatencyDb::collect(&engine, &nets, &devices, &cfg);
        let m = measure(&engine, &nets[2], &devices[3], &cfg);
        assert_eq!(db.latency(3, 2), m.mean_ms);
    }

    #[test]
    fn measurement_counters_accumulate() {
        // Counters are process-global and tests run concurrently, so only
        // assert on deltas from this test's own calls.
        let (nets, devices) = tiny_setup();
        let engine = LatencyEngine::new();
        let before = gdcm_obs::counter("sim/measurements").get();
        let runs_before = gdcm_obs::counter("sim/noise_runs").get();
        let _ = measure(
            &engine,
            &nets[0],
            &devices[1],
            &MeasurementConfig::default(),
        );
        assert!(gdcm_obs::counter("sim/measurements").get() > before);
        assert!(gdcm_obs::counter("sim/noise_runs").get() >= runs_before + 30);
    }

    #[test]
    fn cache_measures_once() {
        let (nets, devices) = tiny_setup();
        let cache = MeasurementCache::new(LatencyEngine::new(), MeasurementConfig::default());
        assert!(cache.is_empty());
        let a = cache.measure(&nets[0], &devices[0]);
        let b = cache.measure(&nets[0], &devices[0]);
        assert_eq!(a, b);
        assert_eq!(cache.len(), 1);
        let _ = cache.measure(&nets[1], &devices[0]);
        assert_eq!(cache.len(), 2);
    }
}

#[cfg(test)]
mod serde_tests {
    use super::*;
    use crate::population::DevicePopulation;
    use gdcm_gen::{benchmark_suite_with, SearchSpace};

    #[test]
    fn latency_db_serde_round_trip() {
        let nets = benchmark_suite_with(2, SearchSpace::tiny(), 1);
        let devices = DevicePopulation::sample(3, 4).devices;
        let db = LatencyDb::collect(
            &LatencyEngine::new(),
            &nets,
            &devices,
            &MeasurementConfig::default(),
        );
        let json = serde_json::to_string(&db).expect("serializes");
        let back: LatencyDb = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(db, back);
    }

    #[test]
    fn device_serde_round_trip_preserves_core_family() {
        let device = DevicePopulation::sample(2, 9).devices.remove(1);
        let json = serde_json::to_string(&device).expect("serializes");
        let back: crate::Device = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(device, back);
        assert_eq!(device.core.name, back.core.name);
    }
}
