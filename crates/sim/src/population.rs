//! Sampling the crowd-sourced device population.
//!
//! Reproduces the shape of the paper's Fig. 3 histogram: a long tail of
//! Cortex-A53 budget phones, a broad middle of Cortex-A7x / Kryo
//! mid-rangers, and a small set of recent flagships. Every device draws
//! its public specs from its core family's ranges and its hidden state
//! from fixed log-normal priors — two devices with identical public specs
//! will still differ, exactly as the paper observed (over 2.5x at equal
//! frequency and DRAM).

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::core_model::{CoreFamily, CORE_CATALOG};
use crate::device::{Device, DeviceId, HiddenState};

/// The paper's population size.
pub const PAPER_DEVICE_COUNT: usize = 105;

/// Sampling weight per catalog family, mirroring Fig. 3's histogram.
const FAMILY_WEIGHTS: [u32; 22] = [
    0,  // Cortex-A7 (catalog-only: predates the paper's fleet)
    0,  // Cortex-A17 (catalog-only: predates the paper's fleet)
    24, // Cortex-A53 — dominant budget core
    8,  // Cortex-A55
    3,  // Cortex-A57
    8,  // Cortex-A72
    9,  // Cortex-A73
    5,  // Cortex-A75
    6,  // Cortex-A76
    2,  // Cortex-A77
    4,  // Kryo
    3,  // Kryo-250-Gold
    6,  // Kryo-260-Gold
    7,  // Kryo-280
    4,  // Kryo-360-Gold
    3,  // Kryo-385-Gold
    3,  // Kryo-460-Gold
    3,  // Kryo-485-Gold
    1,  // Kryo-495-Gold
    2,  // Kryo-585
    2,  // Exynos-M3
    2,  // Exynos-M4
];

/// Hidden-state priors (log-stddevs of log-normal multipliers).
mod priors {
    /// Global software-stack efficiency spread. Large by design: the paper
    /// found the same CPU model in all three speed clusters.
    pub const GLOBAL_EFF_SIGMA: f64 = 0.42;
    /// Per-operator-class kernel spread.
    pub const CLASS_EFF_SIGMA: f64 = 0.28;
    /// Memory-system effectiveness spread.
    pub const MEM_EFF_SIGMA: f64 = 0.27;
    /// Range of the per-(device, network) idiosyncrasy log-stddev.
    pub const PAIR_SIGMA_RANGE: (f64, f64) = (0.08, 0.16);
    /// Dispatch overhead: median 12 us with a wide spread.
    pub const OVERHEAD_MEDIAN_US: f64 = 12.0;
    pub const OVERHEAD_SIGMA: f64 = 0.5;
    /// Thermal throttle half-normal scale.
    pub const THROTTLE_SCALE: f64 = 0.15;
}

/// Standard normal via Box-Muller.
fn randn(rng: &mut ChaCha8Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Log-normal multiplier with median 1.
fn lognormal(rng: &mut ChaCha8Rng, sigma: f64) -> f64 {
    (sigma * randn(rng)).exp()
}

/// Log-normal multiplier truncated to `[lo, hi]` — keeps a heavy but
/// bounded spread so no single device sits unreachably outside the rest
/// of the fleet's latency range.
fn lognormal_clamped(rng: &mut ChaCha8Rng, sigma: f64, lo: f64, hi: f64) -> f64 {
    lognormal(rng, sigma).clamp(lo, hi)
}

/// A sampled device fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DevicePopulation {
    /// The devices, with dense ids `0..n`.
    pub devices: Vec<Device>,
}

impl DevicePopulation {
    /// Samples the paper's 105-device population. The fleet always
    /// contains the case-study device `"Redmi Note 5 Pro"` (Kryo 260
    /// Gold) used in Section V.
    pub fn paper(seed: u64) -> Self {
        Self::sample(PAPER_DEVICE_COUNT, seed)
    }

    /// Samples `n` devices deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics when `n` is 0.
    pub fn sample(n: usize, seed: u64) -> Self {
        assert!(n >= 1, "population needs at least one device");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let total_weight: u32 = FAMILY_WEIGHTS.iter().sum();

        let mut devices = Vec::with_capacity(n);
        // Device 0 is always the Section V case-study phone.
        devices.push(Self::sample_device(
            DeviceId(0),
            "Redmi Note 5 Pro".to_string(),
            CoreFamily::by_name("Kryo-260-Gold").expect("catalog entry"),
            Some(1.8),
            Some(4),
            &mut rng,
        ));

        for i in 1..n {
            let mut roll = rng.gen_range(0..total_weight);
            let mut family = &CORE_CATALOG[0];
            for (f, &w) in CORE_CATALOG.iter().zip(&FAMILY_WEIGHTS) {
                if roll < w {
                    family = f;
                    break;
                }
                roll -= w;
            }
            let model = format!("{}-Phone-{:03}", family.name, i);
            devices.push(Self::sample_device(
                DeviceId(i),
                model,
                family,
                None,
                None,
                &mut rng,
            ));
        }
        Self { devices }
    }

    fn sample_device(
        id: DeviceId,
        model: String,
        core: &CoreFamily,
        fixed_freq: Option<f64>,
        fixed_dram: Option<u32>,
        rng: &mut ChaCha8Rng,
    ) -> Device {
        let freq_ghz = fixed_freq.unwrap_or_else(|| {
            let (lo, hi) = core.freq_range_ghz;
            // Snap to 0.1 GHz steps, as marketed frequencies are.
            (rng.gen_range(lo..=hi) * 10.0).round() / 10.0
        });
        let dram_gb = fixed_dram.unwrap_or_else(|| {
            let choices: &[u32] = match core.year {
                ..=2015 => &[1, 2, 3],
                2016..=2017 => &[2, 3, 4],
                2018 => &[3, 4, 6],
                _ => &[4, 6, 8, 12],
            };
            choices[rng.gen_range(0..choices.len())]
        });
        let (bw_lo, bw_hi) = core.dram_bw_range;
        let dram_bw_gbps = rng.gen_range(bw_lo..=bw_hi) * lognormal(rng, 0.10);

        // The two scale-like hidden factors. Their combined spread (with
        // the kernel-class factors) is deliberately comparable to the
        // spec-explained spread: the paper found devices with identical
        // specs differing by over 2.5x and the same CPU model in all
        // three speed clusters.
        let global_efficiency = lognormal_clamped(rng, priors::GLOBAL_EFF_SIGMA, 0.4, 2.4);
        let sustained_freq_factor: f64 = rng.gen_range(0.55..1.0);
        let hidden = HiddenState {
            global_efficiency,
            class_efficiency: [
                lognormal(rng, priors::CLASS_EFF_SIGMA),
                lognormal(rng, priors::CLASS_EFF_SIGMA),
                lognormal(rng, priors::CLASS_EFF_SIGMA),
                lognormal(rng, priors::CLASS_EFF_SIGMA),
                lognormal(rng, priors::CLASS_EFF_SIGMA),
            ],
            memory_efficiency: lognormal(rng, priors::MEM_EFF_SIGMA),
            dispatch_overhead_us: priors::OVERHEAD_MEDIAN_US
                * lognormal(rng, priors::OVERHEAD_SIGMA),
            throttle: 1.0 + (randn(rng) * priors::THROTTLE_SCALE).abs().min(0.4),
            run_noise_sigma: rng.gen_range(0.02..0.08),
            sustained_freq_factor,
            pair_sigma: rng.gen_range(priors::PAIR_SIGMA_RANGE.0..priors::PAIR_SIGMA_RANGE.1),
        };

        Device {
            id,
            model,
            core: *core,
            freq_ghz,
            dram_gb,
            dram_bw_gbps,
            hidden,
        }
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the population is empty (never true after sampling).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Finds a device by model name.
    pub fn device_by_model(&self, model: &str) -> Option<&Device> {
        self.devices.iter().find(|d| d.model == model)
    }

    /// Histogram of core-family names, descending by count — the data
    /// behind Fig. 3.
    pub fn family_histogram(&self) -> Vec<(&'static str, usize)> {
        let mut counts: Vec<(&'static str, usize)> = CORE_CATALOG
            .iter()
            .map(|f| {
                (
                    f.name,
                    self.devices
                        .iter()
                        .filter(|d| d.core.name == f.name)
                        .count(),
                )
            })
            .collect();
        counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_population_has_105_devices() {
        let pop = DevicePopulation::paper(7);
        assert_eq!(pop.len(), 105);
        for (i, d) in pop.devices.iter().enumerate() {
            assert_eq!(d.id.index(), i);
            assert!(d.freq_ghz > 0.5 && d.freq_ghz < 4.0);
            assert!(d.dram_gb >= 1);
            assert!(d.hidden.global_efficiency > 0.1 && d.hidden.global_efficiency < 10.0);
            assert!(d.hidden.throttle >= 1.0);
        }
    }

    #[test]
    fn case_study_device_present() {
        let pop = DevicePopulation::paper(7);
        let d = pop.device_by_model("Redmi Note 5 Pro").unwrap();
        assert_eq!(d.core.name, "Kryo-260-Gold");
        assert_eq!(d.freq_ghz, 1.8);
        assert_eq!(d.dram_gb, 4);
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(DevicePopulation::paper(3), DevicePopulation::paper(3));
        assert_ne!(DevicePopulation::paper(3), DevicePopulation::paper(4));
    }

    #[test]
    fn histogram_dominated_by_a53() {
        let pop = DevicePopulation::paper(42);
        let hist = pop.family_histogram();
        assert_eq!(hist.iter().map(|(_, c)| c).sum::<usize>(), 105);
        // Cortex-A53 carries the largest weight and should be near the top.
        let a53 = hist.iter().find(|(n, _)| *n == "Cortex-A53").unwrap().1;
        assert!(a53 >= 10, "expected many A53 devices, got {a53}");
        // Diversity: at least 12 distinct families present.
        let present = hist.iter().filter(|(_, c)| *c > 0).count();
        assert!(present >= 12, "only {present} families present");
    }

    #[test]
    fn same_specs_different_hidden_state() {
        // Two devices with the same family can differ substantially in
        // hidden efficiency — the premise of the whole study.
        let pop = DevicePopulation::sample(400, 11);
        let a53: Vec<_> = pop
            .devices
            .iter()
            .filter(|d| d.core.name == "Cortex-A53")
            .collect();
        assert!(a53.len() >= 20);
        let effs: Vec<f64> = a53.iter().map(|d| d.hidden.global_efficiency).collect();
        let max = effs.iter().cloned().fold(f64::MIN, f64::max);
        let min = effs.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min > 2.0, "hidden spread too small: {min}..{max}");
    }

    #[test]
    fn small_population_works() {
        let pop = DevicePopulation::sample(1, 0);
        assert_eq!(pop.len(), 1);
        assert_eq!(pop.devices[0].model, "Redmi Note 5 Pro");
    }
}
