//! Pass 1 — codec equivalence (GDCM160–163).
//!
//! The fast codec in `gdcm-serve` claims two contracts: its encoder is
//! **byte-identical** to the generic tagged encoder, and its decoder
//! accepts a superset that always agrees with the generic decoder's
//! verdict. This pass verifies both differentially over the
//! [`crate::corpus`] enumeration, then sweeps the scalar layer:
//! every LEB128 length boundary round-trips bit-exactly, over-long and
//! non-canonical varints are rejected at every byte length, zigzag
//! survives `i64::MIN`/`MAX`, and f64 travels by raw bits (NaN
//! payloads, signed zero, subnormals).

use gdcm_analyze::{DiagCode, Diagnostic, Report};
use gdcm_serve::protocol::{wire, Request};
use serde::__private::Content;

/// One differential encoding observation: the same request through
/// both encoders.
#[derive(Debug, Clone)]
pub struct EncodePair {
    /// Which corpus entry produced the pair.
    pub label: String,
    /// The hand-rolled fast encoder's bytes.
    pub fast: Vec<u8>,
    /// The generic tagged encoder's bytes.
    pub generic: Vec<u8>,
}

/// One differential decoding observation: the same payload through
/// both decoders, outcomes reduced to `Ok(Request)` / `Err(message)`.
#[derive(Debug, Clone)]
pub struct DecodePair {
    /// Which payload produced the pair.
    pub label: String,
    /// The fast decoder's verdict.
    pub fast: Result<Request, String>,
    /// The generic decoder's verdict.
    pub generic: Result<Request, String>,
}

/// One scalar round-trip observation, reduced to bit patterns so a
/// varint value, a zigzag i64, and an f64 all judge identically.
#[derive(Debug, Clone)]
pub struct ScalarProbe {
    /// What was encoded (value and encoding named).
    pub label: String,
    /// The bits that went in.
    pub want_bits: u64,
    /// The bits that came back, `None` when decoding failed.
    pub got_bits: Option<u64>,
}

/// One strictness observation: a deliberately non-canonical or
/// over-long encoding and whether the decoder accepted it.
#[derive(Debug, Clone)]
pub struct StrictnessProbe {
    /// Which hostile encoding was probed.
    pub label: String,
    /// Whether the decoder accepted it (it must not).
    pub accepted: bool,
}

/// Emits GDCM160 for every pair whose encodings differ.
pub fn judge_encode_pairs(subject: &str, pairs: &[EncodePair], diags: &mut Vec<Diagnostic>) {
    for pair in pairs {
        if pair.fast != pair.generic {
            let at = pair
                .fast
                .iter()
                .zip(&pair.generic)
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| pair.fast.len().min(pair.generic.len()));
            diags.push(Diagnostic::network_level(
                DiagCode::WireFastEncodeDivergence,
                subject,
                format!(
                    "{}: fast encoder produced {} byte(s), generic {}, first difference at byte {at}",
                    pair.label,
                    pair.fast.len(),
                    pair.generic.len()
                ),
            ));
        }
    }
}

/// Emits GDCM161 for every pair whose decode verdicts disagree —
/// different values, or one side accepting what the other rejects.
pub fn judge_decode_pairs(subject: &str, pairs: &[DecodePair], diags: &mut Vec<Diagnostic>) {
    for pair in pairs {
        let agree = match (&pair.fast, &pair.generic) {
            (Ok(a), Ok(b)) => a == b,
            (Err(_), Err(_)) => true,
            _ => false,
        };
        if !agree {
            diags.push(Diagnostic::network_level(
                DiagCode::WireFastDecodeDivergence,
                subject,
                format!(
                    "{}: fast decoder {} while generic decoder {}",
                    pair.label,
                    verdict(&pair.fast),
                    verdict(&pair.generic)
                ),
            ));
        }
    }
}

fn verdict(r: &Result<Request, String>) -> String {
    match r {
        Ok(req) => format!("accepted ({})", gdcm_serve::protocol::request_label(req)),
        Err(e) => format!("rejected ({e})"),
    }
}

/// Emits GDCM162 for every probe whose bits did not survive.
pub fn judge_scalar_probes(subject: &str, probes: &[ScalarProbe], diags: &mut Vec<Diagnostic>) {
    for probe in probes {
        if probe.got_bits != Some(probe.want_bits) {
            diags.push(Diagnostic::network_level(
                DiagCode::WireScalarRoundTripMismatch,
                subject,
                format!(
                    "{}: encoded bits {:#018x}, decoded {}",
                    probe.label,
                    probe.want_bits,
                    match probe.got_bits {
                        Some(bits) => format!("{bits:#018x}"),
                        None => "nothing (decode failed)".to_string(),
                    }
                ),
            ));
        }
    }
}

/// Emits GDCM163 for every hostile varint encoding the decoder let
/// through.
pub fn judge_strictness_probes(
    subject: &str,
    probes: &[StrictnessProbe],
    diags: &mut Vec<Diagnostic>,
) {
    for probe in probes {
        if probe.accepted {
            diags.push(Diagnostic::network_level(
                DiagCode::WireOverlongVarintAccepted,
                subject,
                format!("{}: decoder accepted a non-canonical encoding", probe.label),
            ));
        }
    }
}

/// Every 7-bit LEB128 length boundary: the largest value of each
/// encoded byte length and the smallest value of the next, 1 through
/// 10 bytes.
#[must_use]
pub fn varint_boundaries() -> Vec<u64> {
    let mut values = vec![0u64, 1];
    for k in 1..=9usize {
        let edge = 1u64 << (7 * k);
        values.push(edge - 1);
        values.push(edge);
    }
    values.push(u64::MAX - 1);
    values.push(u64::MAX);
    values
}

/// The f64 bit patterns the wire must carry exactly: ±0.0, subnormals,
/// infinities, quiet/signalling-style NaN payloads, and ordinary
/// magnitudes.
#[must_use]
pub fn f64_bit_corpus() -> Vec<(String, u64)> {
    let named: Vec<(&str, f64)> = vec![
        ("+0.0", 0.0),
        ("-0.0", -0.0),
        ("1.5", 1.5),
        ("min-positive-subnormal", f64::from_bits(1)),
        ("max-subnormal", f64::from_bits(0x000f_ffff_ffff_ffff)),
        ("min-positive-normal", f64::MIN_POSITIVE),
        ("max", f64::MAX),
        ("min", f64::MIN),
        ("+inf", f64::INFINITY),
        ("-inf", f64::NEG_INFINITY),
        ("pi-ish", 123.456_789_012_345_67),
    ];
    let mut out: Vec<(String, u64)> = named
        .into_iter()
        .map(|(name, v)| (name.to_string(), v.to_bits()))
        .collect();
    // NaNs compare unequal as floats, so they travel here as raw bits:
    // the canonical quiet NaN, a payload-carrying NaN, and a negative
    // NaN — different bit patterns that must all survive verbatim.
    out.push(("quiet-nan".to_string(), f64::NAN.to_bits()));
    out.push(("payload-nan".to_string(), 0x7ff8_0000_dead_beef));
    out.push(("negative-nan".to_string(), 0xfff8_0000_0000_0001));
    out
}

/// Builds the differential encoding observations from the live codec.
#[must_use]
pub fn encode_pairs() -> Vec<EncodePair> {
    crate::corpus::all_requests()
        .iter()
        .map(|req| {
            let mut fast = Vec::new();
            wire::fast::append_request(&mut fast, req);
            let generic = wire::encode_value(req).unwrap_or_default();
            EncodePair {
                label: gdcm_serve::protocol::request_label(req).to_string(),
                fast,
                generic,
            }
        })
        .collect()
}

/// Builds the differential decoding observations: every canonical
/// corpus encoding, a non-canonical-but-valid spelling (f64 sequence
/// fields reordered would need map keys, so the probe uses trailing
/// garbage and truncation instead), through both decoders.
#[must_use]
pub fn decode_pairs() -> Vec<DecodePair> {
    let mut payloads: Vec<(String, Vec<u8>)> = Vec::new();
    for req in crate::corpus::all_requests() {
        let mut bytes = Vec::new();
        wire::fast::append_request(&mut bytes, &req);
        let label = gdcm_serve::protocol::request_label(&req).to_string();
        // The canonical bytes, a truncated prefix, and a trailing-byte
        // extension: accept/reject verdicts must match pairwise.
        payloads.push((format!("{label}/canonical"), bytes.clone()));
        let cut = bytes.len() / 2;
        payloads.push((format!("{label}/prefix-{cut}"), bytes[..cut].to_vec()));
        let mut extended = bytes;
        extended.push(0x00);
        payloads.push((format!("{label}/trailing-byte"), extended));
    }
    payloads.push(("garbage".to_string(), vec![0xff, 0xfe, 0xfd]));
    payloads.push(("empty".to_string(), Vec::new()));
    payloads
        .into_iter()
        .map(|(label, payload)| DecodePair {
            label,
            fast: wire::fast::decode_request(&payload).map_err(|e| e.to_string()),
            generic: wire::decode_value::<Request>(&payload).map_err(|e| e.to_string()),
        })
        .collect()
}

/// Builds the scalar round-trip observations from the live codec:
/// varint boundaries, zigzag extremes through `Content::I64`, and the
/// f64 bit corpus through `Content::F64`.
#[must_use]
pub fn scalar_probes() -> Vec<ScalarProbe> {
    let mut probes = Vec::new();
    for value in varint_boundaries() {
        let bytes = wire::encode_varint(value);
        let got = wire::decode_varint(&bytes)
            .ok()
            .filter(|&(_, used)| used == bytes.len())
            .map(|(v, _)| v);
        probes.push(ScalarProbe {
            label: format!("varint {value} ({} byte(s))", bytes.len()),
            want_bits: value,
            got_bits: got,
        });
    }
    for value in [0i64, 1, -1, 63, -64, 64, -65, i64::MIN, i64::MAX] {
        let bytes = wire::encode_content_tree(&Content::I64(value));
        let got = match wire::decode_content_tree(&bytes) {
            Ok(Content::I64(back)) => Some(back as u64),
            _ => None,
        };
        probes.push(ScalarProbe {
            label: format!("zigzag i64 {value}"),
            want_bits: value as u64,
            got_bits: got,
        });
    }
    for (name, bits) in f64_bit_corpus() {
        let bytes = wire::encode_content_tree(&Content::F64(f64::from_bits(bits)));
        let got = match wire::decode_content_tree(&bytes) {
            Ok(Content::F64(back)) => Some(back.to_bits()),
            _ => None,
        };
        probes.push(ScalarProbe {
            label: format!("f64 {name}"),
            want_bits: bits,
            got_bits: got,
        });
    }
    probes
}

/// Builds the strictness observations from the live decoder: every
/// boundary value padded with zero continuation bytes to every longer
/// length up to the 10-byte cap, an 11-byte over-long encoding, a
/// 10-byte overflow, and non-canonical varints embedded in a full
/// content payload (a string length and a u64 scalar).
#[must_use]
pub fn strictness_probes() -> Vec<StrictnessProbe> {
    let mut probes = Vec::new();
    for value in varint_boundaries() {
        let canonical = wire::encode_varint(value);
        for padded_len in canonical.len() + 1..=10 {
            let mut bytes = canonical.clone();
            while bytes.len() < padded_len {
                let last = bytes.len() - 1;
                bytes[last] |= 0x80;
                bytes.push(0x00);
            }
            probes.push(StrictnessProbe {
                label: format!("varint {value} padded to {padded_len} byte(s)"),
                accepted: wire::decode_varint(&bytes).is_ok(),
            });
        }
    }
    probes.push(StrictnessProbe {
        label: "11-byte over-long varint".to_string(),
        accepted: wire::decode_varint(&[0x80u8; 11]).is_ok(),
    });
    let mut overflow = vec![0xffu8; 9];
    overflow.push(0x02);
    probes.push(StrictnessProbe {
        label: "10-byte varint overflowing u64".to_string(),
        accepted: wire::decode_varint(&overflow).is_ok(),
    });
    // Embedded in payloads: a Str whose length varint is the padded
    // spelling of 4, and a U64 scalar spelled non-canonically.
    let mut padded_str = vec![wire::tags::STR, 0x84, 0x00];
    padded_str.extend_from_slice(b"Ping");
    probes.push(StrictnessProbe {
        label: "payload: Str with padded length varint".to_string(),
        accepted: wire::decode_content_tree(&padded_str).is_ok(),
    });
    let padded_u64 = vec![wire::tags::U64, 0x85, 0x00];
    probes.push(StrictnessProbe {
        label: "payload: U64 scalar spelled non-canonically".to_string(),
        accepted: wire::decode_content_tree(&padded_u64).is_ok(),
    });
    probes
}

/// Runs the whole pass against the live codec.
#[must_use]
pub fn check_codec() -> Report {
    let mut report = Report::new("wire/codec");
    judge_encode_pairs("wire/codec", &encode_pairs(), &mut report.diagnostics);
    judge_decode_pairs("wire/codec", &decode_pairs(), &mut report.diagnostics);
    judge_scalar_probes("wire/codec", &scalar_probes(), &mut report.diagnostics);
    judge_strictness_probes("wire/codec", &strictness_probes(), &mut report.diagnostics);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_codec_is_clean() {
        let report = check_codec();
        assert!(report.is_clean(), "{:?}", report.diagnostics);
    }

    #[test]
    fn scalar_probe_counts_cover_the_boundaries() {
        // 22 varint boundaries + 9 zigzag extremes + the f64 corpus.
        assert_eq!(varint_boundaries().len(), 22);
        assert!(scalar_probes().len() >= 22 + 9 + 14);
    }
}
