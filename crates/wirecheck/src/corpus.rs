//! The symbolic enumeration of the request grammar the passes sweep.
//!
//! The fast codec special-cases every [`Request`] variant and every
//! operator, padding, and activation the graph IR can spell, so the
//! corpus must cover each of them at least once — including raw-parts
//! graphs the builder would reject, because the codec must handle
//! anything the *type system* allows, not only validated graphs.

use gdcm_dnn::{
    Activation, Conv2dParams, DepthwiseConv2dParams, Network, Node, NodeId, Op, Padding,
    PoolParams, TensorShape,
};
use gdcm_serve::protocol::Request;

/// A structurally diverse graph exercising every operator variant,
/// every padding, and every activation, built from raw parts.
#[must_use]
pub fn kitchen_sink_network() -> Network {
    let shape = TensorShape::new(16, 16, 8);
    let ops: Vec<Op> = vec![
        Op::Input {
            shape: TensorShape::new(32, 32, 3),
        },
        Op::Conv2d(Conv2dParams {
            out_channels: 8,
            kernel: 3,
            stride: 2,
            padding: Padding::Same,
            groups: 2,
            bias: false,
        }),
        Op::Conv2d(Conv2dParams {
            padding: Padding::Explicit(3),
            ..Conv2dParams::dense(16, 5, 1)
        }),
        Op::DepthwiseConv2d(DepthwiseConv2dParams {
            kernel: 3,
            stride: 1,
            padding: Padding::Valid,
            multiplier: 2,
            bias: true,
        }),
        Op::FullyConnected {
            out_features: 100,
            bias: false,
        },
        Op::MaxPool2d(PoolParams::new(2, 2)),
        Op::AvgPool2d(PoolParams {
            kernel: 3,
            stride: 1,
            padding: Padding::Same,
        }),
        Op::GlobalAvgPool,
        Op::Add,
        Op::Multiply,
        Op::Concat,
    ];
    let ops = ops
        .into_iter()
        .chain(Activation::ALL.into_iter().map(Op::Activation));
    let nodes: Vec<Node> = ops
        .enumerate()
        .map(|(i, op)| Node {
            id: NodeId::from_index(i),
            op,
            inputs: (0..i.min(3)).map(NodeId::from_index).collect(),
            output_shape: shape,
        })
        .collect();
    let last = nodes.len() - 1;
    Network::from_raw_parts("kitchen-sink", nodes, NodeId::from_index(last))
}

/// Every request variant, with extreme field values where the wire
/// layer has edges: empty strings and sequences, non-ASCII device
/// names, signed-zero / subnormal / max-magnitude floats.
#[must_use]
pub fn all_requests() -> Vec<Request> {
    let net = kitchen_sink_network();
    vec![
        Request::Ping,
        Request::Stats,
        Request::Fit,
        Request::Shutdown,
        Request::Predict {
            device: "pixel-4".to_string(),
            network: net.clone(),
        },
        Request::PredictBatch {
            device: String::new(),
            networks: vec![net.clone(), net.clone()],
        },
        Request::PredictBatch {
            device: "empty-batch".to_string(),
            networks: vec![],
        },
        Request::PredictForNewDevice {
            signature_ms: vec![1.5, -0.0, f64::MAX, f64::MIN_POSITIVE],
            network: net.clone(),
        },
        Request::OnboardDevice {
            device: "héllo-wörld".to_string(),
            signature_ms: vec![],
        },
        Request::ReEnroll {
            device: "mate-30".to_string(),
            signature_ms: vec![0.25; 7],
        },
        Request::Contribute {
            device: "pixel-4".to_string(),
            network: net,
            latency_ms: 123.456_789_012_345_67,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_covers_every_request_variant() {
        let reqs = all_requests();
        let covered = |f: fn(&Request) -> bool| reqs.iter().any(f);
        assert!(covered(|r| matches!(r, Request::Ping)));
        assert!(covered(|r| matches!(r, Request::Stats)));
        assert!(covered(|r| matches!(r, Request::Fit)));
        assert!(covered(|r| matches!(r, Request::Shutdown)));
        assert!(covered(|r| matches!(r, Request::Predict { .. })));
        assert!(covered(|r| matches!(r, Request::PredictBatch { .. })));
        assert!(covered(|r| matches!(
            r,
            Request::PredictForNewDevice { .. }
        )));
        assert!(covered(|r| matches!(r, Request::OnboardDevice { .. })));
        assert!(covered(|r| matches!(r, Request::ReEnroll { .. })));
        assert!(covered(|r| matches!(r, Request::Contribute { .. })));
    }

    #[test]
    fn kitchen_sink_covers_every_op_padding_and_activation() {
        let net = kitchen_sink_network();
        let ops: Vec<&Op> = net.nodes().iter().map(|n| &n.op).collect();
        assert!(ops.iter().any(|o| matches!(o, Op::Input { .. })));
        assert!(ops.iter().any(|o| matches!(o, Op::Conv2d(_))));
        assert!(ops.iter().any(|o| matches!(o, Op::DepthwiseConv2d(_))));
        assert!(ops.iter().any(|o| matches!(o, Op::FullyConnected { .. })));
        assert!(ops.iter().any(|o| matches!(o, Op::MaxPool2d(_))));
        assert!(ops.iter().any(|o| matches!(o, Op::AvgPool2d(_))));
        assert!(ops.iter().any(|o| matches!(o, Op::GlobalAvgPool)));
        assert!(ops.iter().any(|o| matches!(o, Op::Add)));
        assert!(ops.iter().any(|o| matches!(o, Op::Multiply)));
        assert!(ops.iter().any(|o| matches!(o, Op::Concat)));
        for a in Activation::ALL {
            assert!(ops
                .iter()
                .any(|o| matches!(o, Op::Activation(x) if *x == a)));
        }
    }
}
