//! Pass 2 — frame-grammar soundness (GDCM164–169).
//!
//! Works below the `Request`/`Response` types, on the tagged content
//! grammar itself: every enumerated tree must survive
//! encode→decode→equality (GDCM164) and re-encode to its own bytes
//! (GDCM165); every strict prefix of a valid encoding must be rejected
//! (GDCM166); adversarial headers — lying lengths, depth bombs — must
//! be refused before any allocation happens (GDCM167); frame headers
//! must round-trip extreme request ids (GDCM168); and nothing above
//! [`wire::MAX_PAYLOAD`] may ever be framed (GDCM169).

use gdcm_analyze::{DiagCode, Diagnostic, Report};
use gdcm_serve::protocol::wire;
use serde::__private::Content;

/// One tree round-trip observation.
#[derive(Debug, Clone)]
pub struct TreeFact {
    /// Which grammar tree was probed.
    pub label: String,
    /// Whether decode(encode(tree)) equalled the tree.
    pub round_tripped: bool,
}

/// One canonical re-encode observation.
#[derive(Debug, Clone)]
pub struct CanonicalFact {
    /// Which payload was probed.
    pub label: String,
    /// Whether `reencode(bytes)` returned exactly `bytes`.
    pub identical: bool,
}

/// One truncation observation: a strict prefix of a valid encoding.
#[derive(Debug, Clone)]
pub struct PrefixFact {
    /// Which encoding was truncated and where.
    pub label: String,
    /// Whether the decoder accepted the prefix (it must not).
    pub accepted: bool,
}

/// One hostile-header observation: a declared length or depth designed
/// to trigger a huge allocation or unbounded recursion.
#[derive(Debug, Clone)]
pub struct HostileFact {
    /// Which hostile input was probed.
    pub label: String,
    /// Whether the decoder rejected it (it must).
    pub rejected: bool,
}

/// One frame-header observation.
#[derive(Debug, Clone)]
pub struct HeaderFact {
    /// Which id/length combination was probed.
    pub label: String,
    /// Whether both header fields round-tripped.
    pub round_tripped: bool,
}

/// One payload-cap observation: an attempt to frame an oversized
/// payload.
#[derive(Debug, Clone)]
pub struct CapFact {
    /// Which oversized framing was attempted.
    pub label: String,
    /// Whether the framing call refused (it must).
    pub refused: bool,
}

/// Emits GDCM164 for every tree that failed its round trip.
pub fn judge_tree_facts(subject: &str, facts: &[TreeFact], diags: &mut Vec<Diagnostic>) {
    for fact in facts {
        if !fact.round_tripped {
            diags.push(Diagnostic::network_level(
                DiagCode::WireContentRoundTripMismatch,
                subject,
                format!("{}: decode(encode(tree)) != tree", fact.label),
            ));
        }
    }
}

/// Emits GDCM165 for every payload whose re-encoding differed.
pub fn judge_canonical_facts(subject: &str, facts: &[CanonicalFact], diags: &mut Vec<Diagnostic>) {
    for fact in facts {
        if !fact.identical {
            diags.push(Diagnostic::network_level(
                DiagCode::WireReencodeMismatch,
                subject,
                format!("{}: reencode(bytes) != bytes", fact.label),
            ));
        }
    }
}

/// Emits GDCM166 for every accepted strict prefix.
pub fn judge_prefix_facts(subject: &str, facts: &[PrefixFact], diags: &mut Vec<Diagnostic>) {
    for fact in facts {
        if fact.accepted {
            diags.push(Diagnostic::network_level(
                DiagCode::WireTruncationAccepted,
                subject,
                format!("{}: a strict prefix decoded successfully", fact.label),
            ));
        }
    }
}

/// Emits GDCM167 for every hostile input that was not rejected.
pub fn judge_hostile_facts(subject: &str, facts: &[HostileFact], diags: &mut Vec<Diagnostic>) {
    for fact in facts {
        if !fact.rejected {
            diags.push(Diagnostic::network_level(
                DiagCode::WireHostileLengthAccepted,
                subject,
                format!("{}: hostile declared length/depth was accepted", fact.label),
            ));
        }
    }
}

/// Emits GDCM168 for every header that failed to round-trip.
pub fn judge_header_facts(subject: &str, facts: &[HeaderFact], diags: &mut Vec<Diagnostic>) {
    for fact in facts {
        if !fact.round_tripped {
            diags.push(Diagnostic::network_level(
                DiagCode::WireFrameHeaderMismatch,
                subject,
                format!("{}: header fields did not round-trip", fact.label),
            ));
        }
    }
}

/// Emits GDCM169 for every oversized framing that was not refused.
pub fn judge_cap_facts(subject: &str, facts: &[CapFact], diags: &mut Vec<Diagnostic>) {
    for fact in facts {
        if !fact.refused {
            diags.push(Diagnostic::network_level(
                DiagCode::WireOversizedFrameUnrefused,
                subject,
                format!("{}: payload above MAX_PAYLOAD was framed", fact.label),
            ));
        }
    }
}

/// The symbolic enumeration of the content-tree grammar: every tag,
/// scalars at their encoding edges, strings across length-varint
/// boundaries and non-ASCII content, empty/nested/mixed containers,
/// and a sequence nested to exactly the depth cap. NaN payloads are
/// deliberately absent — floats here travel through an equality check,
/// and NaN bit-exactness is covered by the codec pass's scalar probes.
#[must_use]
pub fn grammar_trees() -> Vec<(String, Content)> {
    let mut trees: Vec<(String, Content)> = vec![
        ("null".into(), Content::Null),
        ("false".into(), Content::Bool(false)),
        ("true".into(), Content::Bool(true)),
        ("i64 0".into(), Content::I64(0)),
        ("i64 min".into(), Content::I64(i64::MIN)),
        ("i64 max".into(), Content::I64(i64::MAX)),
        ("u64 0".into(), Content::U64(0)),
        ("u64 max".into(), Content::U64(u64::MAX)),
        ("f64 -0.0".into(), Content::F64(-0.0)),
        ("f64 max".into(), Content::F64(f64::MAX)),
        ("f64 subnormal".into(), Content::F64(f64::from_bits(1))),
        ("str empty".into(), Content::Str(String::new())),
        ("str ascii".into(), Content::Str("Ping".into())),
        ("str utf8".into(), Content::Str("héllo-wörld-λ-⊕".into())),
        (
            "str 2-byte length varint".into(),
            Content::Str("x".repeat(200)),
        ),
        ("seq empty".into(), Content::Seq(vec![])),
        (
            "seq mixed scalars".into(),
            Content::Seq(vec![
                Content::Null,
                Content::Bool(true),
                Content::I64(-1),
                Content::U64(128),
                Content::F64(1.5),
                Content::Str("mix".into()),
            ]),
        ),
        ("map empty".into(), Content::Map(vec![])),
        (
            "map nested".into(),
            Content::Map(vec![
                ("".into(), Content::Null),
                ("kéy".into(), Content::Seq(vec![Content::U64(7)])),
                (
                    "inner".into(),
                    Content::Map(vec![("x".into(), Content::Bool(false))]),
                ),
            ]),
        ),
    ];
    // Every u64 varint length boundary as a scalar inside a container,
    // so length varints and value varints are both swept in context.
    for value in crate::codec::varint_boundaries() {
        trees.push((
            format!("seq[u64 {value}]"),
            Content::Seq(vec![Content::U64(value)]),
        ));
    }
    // The deepest legal tree: MAX_DEPTH nested singleton sequences.
    let mut deep = Content::Null;
    for _ in 0..wire::MAX_DEPTH {
        deep = Content::Seq(vec![deep]);
    }
    trees.push((format!("seq nested to depth {}", wire::MAX_DEPTH), deep));
    trees
}

/// Builds tree round-trip facts from the live codec.
#[must_use]
pub fn tree_facts() -> Vec<TreeFact> {
    grammar_trees()
        .into_iter()
        .map(|(label, tree)| {
            let bytes = wire::encode_content_tree(&tree);
            let round_tripped = matches!(
                wire::decode_content_tree(&bytes),
                Ok(back) if back == tree
            );
            TreeFact {
                label,
                round_tripped,
            }
        })
        .collect()
}

/// Builds canonical re-encode facts: every grammar tree's encoder
/// output must be a fixed point of decode→encode.
#[must_use]
pub fn canonical_facts() -> Vec<CanonicalFact> {
    grammar_trees()
        .into_iter()
        .map(|(label, tree)| {
            let bytes = wire::encode_content_tree(&tree);
            let identical = wire::reencode(&bytes).is_ok_and(|back| back == bytes);
            CanonicalFact { label, identical }
        })
        .collect()
}

/// Builds truncation facts: every strict prefix of every grammar
/// encoding is offered to the decoder.
#[must_use]
pub fn prefix_facts() -> Vec<PrefixFact> {
    let mut facts = Vec::new();
    for (label, tree) in grammar_trees() {
        let bytes = wire::encode_content_tree(&tree);
        for cut in 0..bytes.len() {
            facts.push(PrefixFact {
                label: format!("{label} cut to {cut}/{} byte(s)", bytes.len()),
                accepted: wire::decode_content_tree(&bytes[..cut]).is_ok(),
            });
        }
    }
    facts
}

/// Builds hostile-header facts: declared lengths far beyond the buffer
/// (which must be refused by arithmetic on the remaining input, not by
/// attempting the allocation) and nesting past the depth cap.
#[must_use]
pub fn hostile_facts() -> Vec<HostileFact> {
    let mut inputs: Vec<(String, Vec<u8>)> = Vec::new();
    for (name, claimed) in [
        ("u32::MAX", u64::from(u32::MAX)),
        ("u64::MAX/2", u64::MAX / 2),
        ("MAX_PAYLOAD", wire::MAX_PAYLOAD as u64),
    ] {
        for (tag_name, tag) in [
            ("seq", wire::tags::SEQ),
            ("map", wire::tags::MAP),
            ("str", wire::tags::STR),
        ] {
            let mut bytes = vec![tag];
            bytes.extend_from_slice(&wire::encode_varint(claimed));
            inputs.push((format!("{tag_name} claiming {name} elements"), bytes));
        }
    }
    // A map whose declared entry count narrowly overruns the input.
    inputs.push((
        "map declaring 2 entries with bytes for 1".into(),
        vec![wire::tags::MAP, 0x02, 0x01, b'k', wire::tags::NULL],
    ));
    // Depth bombs: one just past the cap, one far past it (the second
    // must be refused without exhausting the stack).
    for extra in [1usize, 10_000] {
        let depth = wire::MAX_DEPTH + extra;
        let mut bytes = Vec::with_capacity(2 * depth + 1);
        for _ in 0..depth {
            bytes.push(wire::tags::SEQ);
            bytes.push(0x01);
        }
        bytes.push(wire::tags::NULL);
        inputs.push((format!("seq nested to depth {depth}"), bytes));
    }
    inputs
        .into_iter()
        .map(|(label, bytes)| HostileFact {
            rejected: wire::decode_content_tree(&bytes).is_err(),
            label,
        })
        .collect()
}

/// Builds frame-header facts over extreme request ids and payload
/// lengths.
#[must_use]
pub fn header_facts() -> Vec<HeaderFact> {
    let ids = [0u64, 1, 1 << 32, 1 << 53, u64::MAX - 1, u64::MAX];
    let lens = [0usize, 1, 4096];
    let mut facts = Vec::new();
    for &id in &ids {
        for &len in &lens {
            let payload = vec![0xabu8; len];
            let mut buf = Vec::new();
            let round_tripped = wire::append_raw_frame(&mut buf, id, &payload).is_ok()
                && matches!(
                    wire::decode_frame_header(&buf),
                    Ok(h) if h.request_id == id && h.payload_len == len
                );
            facts.push(HeaderFact {
                label: format!("id {id}, {len}-byte payload"),
                round_tripped,
            });
        }
    }
    facts
}

/// Builds payload-cap facts: framing one byte over [`wire::MAX_PAYLOAD`]
/// must refuse on both the raw and the encoding path.
#[must_use]
pub fn cap_facts() -> Vec<CapFact> {
    let oversized = vec![0u8; wire::MAX_PAYLOAD + 1];
    let mut raw_buf = Vec::new();
    let raw_refused = wire::append_raw_frame(&mut raw_buf, 1, &oversized).is_err();
    // A string whose encoding (tag + length varint + bytes) lands just
    // over the cap exercises the post-encode check in append_frame.
    let big_string = "x".repeat(wire::MAX_PAYLOAD);
    let mut enc_buf = Vec::new();
    let enc_refused = wire::append_frame(&mut enc_buf, 1, &big_string).is_err();
    vec![
        CapFact {
            label: format!("raw frame of {} byte(s)", oversized.len()),
            refused: raw_refused && raw_buf.is_empty(),
        },
        CapFact {
            label: "encoded frame just over MAX_PAYLOAD".into(),
            refused: enc_refused && enc_buf.is_empty(),
        },
    ]
}

/// Runs the whole pass against the live codec.
#[must_use]
pub fn check_frames() -> Report {
    let mut report = Report::new("wire/frame");
    judge_tree_facts("wire/frame", &tree_facts(), &mut report.diagnostics);
    judge_canonical_facts("wire/frame", &canonical_facts(), &mut report.diagnostics);
    judge_prefix_facts("wire/frame", &prefix_facts(), &mut report.diagnostics);
    judge_hostile_facts("wire/frame", &hostile_facts(), &mut report.diagnostics);
    judge_header_facts("wire/frame", &header_facts(), &mut report.diagnostics);
    judge_cap_facts("wire/frame", &cap_facts(), &mut report.diagnostics);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_frame_grammar_is_clean() {
        let report = check_frames();
        assert!(report.is_clean(), "{:?}", report.diagnostics);
    }

    #[test]
    fn frame_at_exactly_max_payload_is_accepted() {
        // The cap is inclusive: exactly MAX_PAYLOAD must still frame.
        let payload = vec![0u8; wire::MAX_PAYLOAD];
        let mut buf = Vec::new();
        wire::append_raw_frame(&mut buf, 7, &payload).expect("at-cap frame");
        let header = wire::decode_frame_header(&buf).expect("header");
        assert_eq!(header.payload_len, wire::MAX_PAYLOAD);
    }

    #[test]
    fn grammar_covers_every_tag() {
        let trees = grammar_trees();
        let has = |f: fn(&Content) -> bool| trees.iter().any(|(_, t)| f(t));
        assert!(has(|t| matches!(t, Content::Null)));
        assert!(has(|t| matches!(t, Content::Bool(false))));
        assert!(has(|t| matches!(t, Content::Bool(true))));
        assert!(has(|t| matches!(t, Content::I64(_))));
        assert!(has(|t| matches!(t, Content::U64(_))));
        assert!(has(|t| matches!(t, Content::F64(_))));
        assert!(has(|t| matches!(t, Content::Str(_))));
        assert!(has(|t| matches!(t, Content::Seq(_))));
        assert!(has(|t| matches!(t, Content::Map(_))));
    }
}
