//! Pass 3 — bounded model check of the connection state machine
//! (GDCM170–175).
//!
//! Drives the **production** per-connection FSM — the same `Conn::pump`
//! a live TCP socket runs, reached through the socket-free
//! [`gdcm_serve::harness`] — through exhaustively enumerated event
//! schedules and checks the serving contract:
//!
//! - every accepted request frame is answered exactly once, with a
//!   matching id (GDCM170/171);
//! - an in-band error response never kills pipelined siblings
//!   (GDCM172);
//! - buffers respect their documented caps — unprocessed input under
//!   [`MAX_BUFFERED_INPUT`], pending output under
//!   [`WRITE_HIGH_WATER`] plus one response of slack (GDCM173);
//! - the drain loop terminates within a fixed sweep budget (GDCM174);
//! - the first-byte protocol sniff routes binary, legacy, and garbage
//!   openings correctly (GDCM175).
//!
//! The schedule space is the full set of 1-, 2-, and 3-way contiguous
//! chunk splits of a pipelined conversation (~1.7k schedules), plus
//! targeted scenarios: write backpressure against a stalled peer,
//! version skew, oversized frame headers, mid-frame disconnect, and
//! quiesce after `Shutdown`.

use gdcm_analyze::{DiagCode, Diagnostic, Report};
use gdcm_serve::harness::{ConnHarness, MAX_BUFFERED_INPUT, WRITE_HIGH_WATER};
use gdcm_serve::protocol::{codes, wire, Request, Response};
use gdcm_serve::ServingRepository;

/// Sweeps a conversation may spend before the model check calls the
/// connection stuck (GDCM174). Every legal schedule drains in far
/// fewer; the backpressure scenario's megabyte of pipelined output
/// needs the head-room.
pub const DRAIN_BUDGET: usize = 2_000;

/// Pending output may overshoot [`WRITE_HIGH_WATER`] by at most the
/// response that crossed the line; 64 KiB bounds every response in the
/// model-check conversations with a wide margin.
pub const OUTPUT_SLACK: usize = 64 * 1024;

/// What the script says must happen to one request frame.
#[derive(Debug, Clone)]
pub struct ExpectedFrame {
    /// The request id the client chose.
    pub id: u64,
    /// Whether the (exactly one) answer must be an in-band error.
    pub expect_error: bool,
}

/// One response frame actually observed on the wire.
#[derive(Debug, Clone)]
pub struct AnsweredFrame {
    /// The echoed request id.
    pub id: u64,
    /// Whether the response was [`Response::Error`].
    pub is_error: bool,
}

/// Everything observed while driving one scheduled conversation.
#[derive(Debug, Clone)]
pub struct ConversationOutcome {
    /// Which schedule produced the outcome.
    pub label: String,
    /// The script's per-frame expectations.
    pub expected: Vec<ExpectedFrame>,
    /// The response frames observed, in wire order.
    pub answered: Vec<AnsweredFrame>,
    /// Set when the captured output failed to parse as response frames.
    pub parse_failure: Option<String>,
    /// High-water mark of unprocessed input across the drive.
    pub max_buffered_input: usize,
    /// High-water mark of unflushed output across the drive.
    pub max_pending_output: usize,
    /// Whether the connection went quiet within [`DRAIN_BUDGET`].
    pub drained: bool,
}

/// One protocol-sniff observation.
#[derive(Debug, Clone)]
pub struct SniffOutcome {
    /// Which opening bytes were probed.
    pub label: String,
    /// Whether the connection behaved as the scenario demands.
    pub ok: bool,
    /// What was seen instead, for the diagnostic message.
    pub detail: String,
}

/// Judges scheduled conversations: emits GDCM170–174 as described on
/// the module.
pub fn judge_conversations(
    subject: &str,
    outcomes: &[ConversationOutcome],
    diags: &mut Vec<Diagnostic>,
) {
    for o in outcomes {
        if !o.drained {
            diags.push(Diagnostic::network_level(
                DiagCode::FsmDrainStuck,
                subject,
                format!(
                    "{}: still making progress after {DRAIN_BUDGET} sweeps",
                    o.label
                ),
            ));
        }
        if let Some(why) = &o.parse_failure {
            diags.push(Diagnostic::network_level(
                DiagCode::FsmResponseMissing,
                subject,
                format!("{}: response stream unparseable ({why})", o.label),
            ));
        }
        let mut counts: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for a in &o.answered {
            *counts.entry(a.id).or_insert(0) += 1;
        }
        let expected_ids: std::collections::HashSet<u64> =
            o.expected.iter().map(|e| e.id).collect();
        let any_error_answered = o.answered.iter().any(|a| a.is_error);
        for exp in &o.expected {
            match counts.get(&exp.id).copied().unwrap_or(0) {
                0 if any_error_answered => diags.push(Diagnostic::network_level(
                    DiagCode::FsmErrorKilledPipeline,
                    subject,
                    format!(
                        "{}: id {} unanswered while an in-band error was sent",
                        o.label, exp.id
                    ),
                )),
                0 => diags.push(Diagnostic::network_level(
                    DiagCode::FsmResponseMissing,
                    subject,
                    format!("{}: id {} was never answered", o.label, exp.id),
                )),
                1 => {}
                n => diags.push(Diagnostic::network_level(
                    DiagCode::FsmResponseIdMismatch,
                    subject,
                    format!("{}: id {} answered {n} times", o.label, exp.id),
                )),
            }
        }
        for a in &o.answered {
            if !expected_ids.contains(&a.id) {
                diags.push(Diagnostic::network_level(
                    DiagCode::FsmResponseIdMismatch,
                    subject,
                    format!("{}: unexpected response id {}", o.label, a.id),
                ));
            }
        }
        if o.max_buffered_input > MAX_BUFFERED_INPUT {
            diags.push(Diagnostic::network_level(
                DiagCode::FsmBufferOverCap,
                subject,
                format!(
                    "{}: buffered input peaked at {} byte(s), cap {}",
                    o.label, o.max_buffered_input, MAX_BUFFERED_INPUT
                ),
            ));
        }
        if o.max_pending_output > WRITE_HIGH_WATER + OUTPUT_SLACK {
            diags.push(Diagnostic::network_level(
                DiagCode::FsmBufferOverCap,
                subject,
                format!(
                    "{}: pending output peaked at {} byte(s), high water {} (+{} slack)",
                    o.label, o.max_pending_output, WRITE_HIGH_WATER, OUTPUT_SLACK
                ),
            ));
        }
    }
}

/// Judges sniff scenarios: emits GDCM175 for every scenario whose
/// connection took the wrong protocol path.
pub fn judge_sniffs(subject: &str, outcomes: &[SniffOutcome], diags: &mut Vec<Diagnostic>) {
    for o in outcomes {
        if !o.ok {
            diags.push(Diagnostic::network_level(
                DiagCode::FsmSniffMismatch,
                subject,
                format!("{}: {}", o.label, o.detail),
            ));
        }
    }
}

fn frame(id: u64, req: &Request) -> Vec<u8> {
    let mut buf = Vec::new();
    // Request encoding of plain data never fails.
    let _ = wire::append_frame(&mut buf, id, req);
    buf
}

/// The pipelined conversation every schedule re-chunks: preamble, a
/// good `Ping` (id 1), a frame whose payload is garbage (id 2, answered
/// with an in-band `parse_error`), and a second good `Ping` (id 3) that
/// must survive its sibling's failure.
#[must_use]
pub fn conversation_bytes() -> Vec<u8> {
    let mut bytes = wire::preamble().to_vec();
    bytes.extend_from_slice(&frame(1, &Request::Ping));
    let mut garbage = Vec::new();
    let _ = wire::append_raw_frame(&mut garbage, 2, &[0xff, 0xfe]);
    bytes.extend_from_slice(&garbage);
    bytes.extend_from_slice(&frame(3, &Request::Ping));
    bytes
}

/// What [`conversation_bytes`] must produce, schedule-independently.
#[must_use]
pub fn conversation_expectations() -> Vec<ExpectedFrame> {
    vec![
        ExpectedFrame {
            id: 1,
            expect_error: false,
        },
        ExpectedFrame {
            id: 2,
            expect_error: true,
        },
        ExpectedFrame {
            id: 3,
            expect_error: false,
        },
    ]
}

/// Every 1-, 2-, and 3-way contiguous chunk split of the conversation:
/// each chunk arrives in a distinct `read` call, so every frame/header
/// boundary is crossed mid-read somewhere in the enumeration.
#[must_use]
pub fn chunk_schedules() -> Vec<(String, Vec<Vec<u8>>)> {
    let bytes = conversation_bytes();
    let n = bytes.len();
    let mut schedules = vec![("whole".to_string(), vec![bytes.clone()])];
    for i in 1..n {
        schedules.push((
            format!("split@{i}"),
            vec![bytes[..i].to_vec(), bytes[i..].to_vec()],
        ));
    }
    for i in 1..n {
        for j in i + 1..n {
            schedules.push((
                format!("split@{i},{j}"),
                vec![
                    bytes[..i].to_vec(),
                    bytes[i..j].to_vec(),
                    bytes[j..].to_vec(),
                ],
            ));
        }
    }
    schedules
}

/// Drives one scheduled conversation to quiescence and records what
/// happened. Chunks arrive one per pump; EOF follows the last chunk.
#[must_use]
pub fn drive_conversation(
    serving: &ServingRepository,
    label: &str,
    chunks: &[Vec<u8>],
    expected: Vec<ExpectedFrame>,
) -> ConversationOutcome {
    let mut h = ConnHarness::new(serving);
    let mut max_in = 0usize;
    let mut max_out = 0usize;
    for chunk in chunks {
        h.deliver(chunk);
        h.pump();
        max_in = max_in.max(h.buffered_input());
        max_out = max_out.max(h.pending_output());
    }
    h.eof();
    let spent = h.pump_until_quiet(DRAIN_BUDGET);
    max_in = max_in.max(h.buffered_input());
    max_out = max_out.max(h.pending_output());
    finish(h, label, expected, max_in, max_out, spent)
}

fn finish(
    mut h: ConnHarness<'_>,
    label: &str,
    expected: Vec<ExpectedFrame>,
    max_in: usize,
    max_out: usize,
    spent: usize,
) -> ConversationOutcome {
    let out = h.take_output();
    let (answered, parse_failure) = match crate::parse_response_frames(&out) {
        Ok(frames) => (
            frames
                .into_iter()
                .map(|(id, resp)| AnsweredFrame {
                    id,
                    is_error: matches!(resp, Response::Error { .. }),
                })
                .collect(),
            None,
        ),
        Err(why) => (Vec::new(), Some(why)),
    };
    ConversationOutcome {
        label: label.to_string(),
        expected,
        answered,
        parse_failure,
        max_buffered_input: max_in,
        max_pending_output: max_out,
        drained: spent < DRAIN_BUDGET,
    }
}

/// The targeted single-schedule scenarios: version skew, an oversized
/// frame header (refused in-band, before allocation), a mid-frame
/// disconnect, and quiesce after `Shutdown`.
#[must_use]
pub fn targeted_outcomes(serving: &ServingRepository) -> Vec<ConversationOutcome> {
    let mut outcomes = Vec::new();

    // A from-the-future client: right magic, version 2. The server must
    // answer one unsupported_protocol error on id 0 (no request was
    // accepted) and close; the Ping pipelined behind the preamble must
    // NOT be processed.
    let mut skew = wire::preamble().to_vec();
    skew[6] = 2;
    outcomes.push(drive_conversation(
        serving,
        "version-skew preamble",
        &[skew, frame(4, &Request::Ping)],
        vec![ExpectedFrame {
            id: 0,
            expect_error: true,
        }],
    ));

    // A header declaring MAX_PAYLOAD + 1 bytes: answered with
    // frame_too_large on the *same id*, then the connection closes
    // without reading the declared payload.
    let mut oversized = wire::preamble().to_vec();
    #[allow(clippy::cast_possible_truncation)]
    let lying = (wire::MAX_PAYLOAD as u32) + 1;
    oversized.extend_from_slice(&lying.to_le_bytes());
    oversized.extend_from_slice(&77u64.to_le_bytes());
    oversized.extend_from_slice(&[0xaa; 32]);
    outcomes.push(drive_conversation(
        serving,
        "oversized frame header",
        &[oversized],
        vec![ExpectedFrame {
            id: 77,
            expect_error: true,
        }],
    ));

    // Disconnect mid-frame: nothing may be answered for the partial
    // frame, and the connection must die rather than hang.
    let ping = frame(9, &Request::Ping);
    let mut partial = wire::preamble().to_vec();
    partial.extend_from_slice(&ping[..ping.len() / 2]);
    outcomes.push(drive_conversation(
        serving,
        "mid-frame disconnect",
        &[partial],
        vec![],
    ));

    // Shutdown quiesce: the Shutdown is acknowledged, and the frame
    // pipelined behind it is deliberately left unanswered (the drain
    // stops accepting work).
    let mut shutdown = wire::preamble().to_vec();
    shutdown.extend_from_slice(&frame(5, &Request::Shutdown));
    shutdown.extend_from_slice(&frame(6, &Request::Ping));
    outcomes.push(drive_conversation(
        serving,
        "shutdown quiesce",
        &[shutdown],
        vec![ExpectedFrame {
            id: 5,
            expect_error: false,
        }],
    ));

    outcomes
}

/// The write-backpressure scenario: enough pipelined `Ping`s to push
/// more than [`WRITE_HIGH_WATER`] bytes of response at a peer that
/// accepts nothing, then the stall lifts. Pending output must respect
/// the high-water mark the whole time, and afterwards every id must be
/// answered exactly once.
#[must_use]
pub fn backpressure_outcome(serving: &ServingRepository) -> ConversationOutcome {
    let ping = frame(0, &Request::Ping);
    // Enough responses to cross the high-water mark three times over.
    let count = (3 * WRITE_HIGH_WATER / ping.len()).max(1) as u64;
    let mut bytes = wire::preamble().to_vec();
    let mut expected = Vec::with_capacity(count as usize);
    for id in 1..=count {
        bytes.extend_from_slice(&frame(id, &Request::Ping));
        expected.push(ExpectedFrame {
            id,
            expect_error: false,
        });
    }

    let mut h = ConnHarness::new(serving);
    h.set_write_quota(Some(0));
    for chunk in bytes.chunks(64 * 1024) {
        h.deliver(chunk);
    }
    h.eof();
    let mut max_in = 0usize;
    let mut max_out = 0usize;
    let mut spent = h.pump_until_quiet(DRAIN_BUDGET);
    max_in = max_in.max(h.buffered_input());
    max_out = max_out.max(h.pending_output());
    // The stall lifts; the rest of the pipeline must drain.
    h.set_write_quota(None);
    spent += h.pump_until_quiet(DRAIN_BUDGET.saturating_sub(spent));
    max_in = max_in.max(h.buffered_input());
    max_out = max_out.max(h.pending_output());
    finish(
        h,
        &format!("backpressure: {count} pipelined pings vs stalled peer"),
        expected,
        max_in,
        max_out,
        spent,
    )
}

/// Parses a single newline-terminated legacy JSON response line.
fn parse_legacy_line(out: &[u8]) -> Option<Response> {
    let line = out.strip_suffix(b"\n").unwrap_or(out);
    serde_json::from_str::<Response>(std::str::from_utf8(line).ok()?).ok()
}

/// The protocol-sniff scenarios (GDCM175): the first byte alone must
/// route the connection.
#[must_use]
pub fn sniff_outcomes(serving: &ServingRepository) -> Vec<SniffOutcome> {
    let mut outcomes = Vec::new();

    // Binary preamble delivered one byte per read: the sniff must wait
    // for all 8 bytes, then serve binary frames.
    {
        let mut h = ConnHarness::new(serving);
        for b in wire::preamble() {
            h.deliver(&[b]);
            h.pump();
        }
        h.deliver(&frame(9, &Request::Ping));
        h.eof();
        h.pump_until_quiet(DRAIN_BUDGET);
        let out = h.take_output();
        let ok = matches!(
            crate::parse_response_frames(&out).as_deref(),
            Ok([(9, Response::Pong)])
        );
        outcomes.push(SniffOutcome {
            label: "binary preamble, one byte per read".into(),
            ok,
            detail: format!(
                "{} output byte(s), expected one Pong frame for id 9",
                out.len()
            ),
        });
    }

    // A legacy JSON line: routed to the line protocol, answered in JSON.
    {
        let mut h = ConnHarness::new(serving);
        h.deliver(b"\"Ping\"\n");
        h.eof();
        h.pump_until_quiet(DRAIN_BUDGET);
        let out = h.take_output();
        let ok = parse_legacy_line(&out).is_some_and(|r| r == Response::Pong);
        outcomes.push(SniffOutcome {
            label: "legacy JSON line".into(),
            ok,
            detail: format!(
                "output {:?}, expected a JSON Pong line",
                String::from_utf8_lossy(&out)
            ),
        });
    }

    // A legacy line that is not JSON: answered in-band with parse_error,
    // still on the legacy path.
    {
        let mut h = ConnHarness::new(serving);
        h.deliver(b"not json at all\n");
        h.eof();
        h.pump_until_quiet(DRAIN_BUDGET);
        let out = h.take_output();
        let ok = matches!(
            parse_legacy_line(&out),
            Some(Response::Error { ref code, .. }) if code == codes::PARSE_ERROR
        );
        outcomes.push(SniffOutcome {
            label: "legacy garbage line".into(),
            ok,
            detail: format!(
                "output {:?}, expected a JSON parse_error line",
                String::from_utf8_lossy(&out)
            ),
        });
    }

    // NUL-led garbage: claims binary, fails the magic. There is no
    // protocol to answer in — the connection must die silently.
    {
        let mut h = ConnHarness::new(serving);
        h.deliver(b"\0NOTGDCM");
        h.eof();
        h.pump_until_quiet(DRAIN_BUDGET);
        let out = h.take_output();
        let ok = h.is_dead() && out.is_empty();
        outcomes.push(SniffOutcome {
            label: "NUL-led garbage preamble".into(),
            ok,
            detail: format!(
                "dead={}, {} output byte(s); expected silent close",
                h.is_dead(),
                out.len()
            ),
        });
    }

    outcomes
}

/// Runs the whole bounded model check against the live state machine.
/// Schedules are independent, so they run through `gdcm-par` with
/// order-preserving results — output is identical at any thread count.
#[must_use]
pub fn check_fsm(serving: &ServingRepository) -> Report {
    let mut report = Report::new("wire/fsm");
    let schedules = chunk_schedules();
    let expected = conversation_expectations();
    let mut outcomes = gdcm_par::pool().par_map(&schedules, |(label, chunks)| {
        drive_conversation(serving, label, chunks, expected.clone())
    });
    outcomes.extend(targeted_outcomes(serving));
    outcomes.push(backpressure_outcome(serving));
    judge_conversations("wire/fsm", &outcomes, &mut report.diagnostics);
    judge_sniffs(
        "wire/fsm",
        &sniff_outcomes(serving),
        &mut report.diagnostics,
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_fsm_is_clean_across_all_schedules() {
        let serving = crate::harness_serving();
        let report = check_fsm(&serving);
        assert!(report.is_clean(), "{:?}", report.diagnostics);
    }

    #[test]
    fn schedule_space_enumerates_three_way_splits() {
        let n = conversation_bytes().len();
        // 1 whole + (n-1) two-way + C(n-1, 2) three-way schedules.
        let expected = 1 + (n - 1) + (n - 1) * (n - 2) / 2;
        assert_eq!(chunk_schedules().len(), expected);
        assert!(
            expected > 1_000,
            "schedule space is non-trivial: {expected}"
        );
    }

    #[test]
    fn shutdown_flips_the_stop_flag() {
        let serving = crate::harness_serving();
        let mut h = ConnHarness::new(&serving);
        let mut bytes = wire::preamble().to_vec();
        bytes.extend_from_slice(&frame(5, &Request::Shutdown));
        h.deliver(&bytes);
        h.eof();
        h.pump_until_quiet(DRAIN_BUDGET);
        assert!(h.shutdown_triggered());
        let out = h.take_output();
        let frames = crate::parse_response_frames(&out).expect("parses");
        assert_eq!(frames, vec![(5, Response::ShuttingDown)]);
    }
}
