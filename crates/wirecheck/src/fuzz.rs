//! Pass 4 — deterministic structure-aware frame fuzzer (GDCM176–179).
//!
//! A seeded [`rand_chacha::ChaCha8Rng`] corpus of mutated frames —
//! truncations, byte flips, lying header lengths, depth bombs, version
//! skew, interleaved legacy bytes, raw garbage — is thrown at the
//! in-memory connection harness. Three invariants are asserted on
//! every iteration:
//!
//! - the server **never panics** and never wedges (GDCM178);
//! - every in-band error carries a code from
//!   [`gdcm_serve::protocol::codes::ALL`] (GDCM177) and the response
//!   stream always re-decodes as well-formed `Response` frames
//!   (GDCM179);
//! - the fast and generic request decoders agree on every mutated
//!   payload (GDCM176).
//!
//! Iterations are fully determined by `(seed, index)`: each index
//! derives its own stream cipher state, so results are identical at
//! any `GDCM_THREADS` setting and any schedule of the worker pool.

use std::panic::{catch_unwind, AssertUnwindSafe};

use gdcm_analyze::{DiagCode, Diagnostic, Report};
use gdcm_serve::harness::ConnHarness;
use gdcm_serve::protocol::{codes, wire, Request, Response};
use gdcm_serve::ServingRepository;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The request id of the trailing canonical `Ping` every fuzz
/// conversation ends with: if the server still considers the
/// connection healthy after the mutated bytes, it must answer it.
pub const SENTINEL_ID: u64 = u64::MAX;

/// Sweep budget per fuzz conversation before the server counts as
/// wedged.
pub const FUZZ_DRAIN_BUDGET: usize = 256;

/// Everything observed while running one fuzz iteration.
#[derive(Debug, Clone)]
pub struct FuzzFact {
    /// `iter N: mutation` — deterministic from `(seed, index)`.
    pub label: String,
    /// The server panicked while handling the conversation.
    pub panicked: bool,
    /// The connection was still making progress when the sweep budget
    /// ran out.
    pub wedged: bool,
    /// Neither answered the sentinel nor stopped accepting input.
    pub abandoned_sentinel: bool,
    /// Why the captured response stream failed to decode, if it did.
    pub undecodable_output: Option<String>,
    /// Error codes observed that are not in [`codes::ALL`].
    pub unknown_codes: Vec<String>,
    /// How the fast and generic decoders disagreed, if they did.
    pub decoder_divergence: Option<String>,
}

/// Judges fuzz facts into GDCM176–179 diagnostics.
pub fn judge_fuzz_facts(subject: &str, facts: &[FuzzFact], diags: &mut Vec<Diagnostic>) {
    for f in facts {
        if let Some(d) = &f.decoder_divergence {
            diags.push(Diagnostic::network_level(
                DiagCode::FuzzDecodeDivergence,
                subject,
                format!("{}: {d}", f.label),
            ));
        }
        for code in &f.unknown_codes {
            diags.push(Diagnostic::network_level(
                DiagCode::FuzzErrorCodeUnstable,
                subject,
                format!("{}: error code {code:?} is not a documented code", f.label),
            ));
        }
        if f.panicked {
            diags.push(Diagnostic::network_level(
                DiagCode::FuzzConnectionPolicyViolation,
                subject,
                format!("{}: the server panicked", f.label),
            ));
        } else if f.wedged {
            diags.push(Diagnostic::network_level(
                DiagCode::FuzzConnectionPolicyViolation,
                subject,
                format!(
                    "{}: still making progress after {FUZZ_DRAIN_BUDGET} sweeps",
                    f.label
                ),
            ));
        } else if f.abandoned_sentinel {
            diags.push(Diagnostic::network_level(
                DiagCode::FuzzConnectionPolicyViolation,
                subject,
                format!(
                    "{}: sentinel unanswered on a connection that never stopped accepting",
                    f.label
                ),
            ));
        }
        if let Some(e) = &f.undecodable_output {
            diags.push(Diagnostic::network_level(
                DiagCode::FuzzResponseUndecodable,
                subject,
                format!("{}: {e}", f.label),
            ));
        }
    }
}

fn base_frames() -> Vec<Vec<u8>> {
    crate::corpus::all_requests()
        .iter()
        .enumerate()
        .map(|(i, req)| {
            let mut buf = Vec::new();
            let _ = wire::append_frame(&mut buf, i as u64 + 1, req);
            buf
        })
        .collect()
}

/// Applies one named structure-aware mutation. Returns the mutated
/// frame bytes and the mutation's label.
fn mutate(rng: &mut ChaCha8Rng, base: &[u8]) -> (String, Vec<u8>) {
    match rng.gen_range(0..10u32) {
        0 => {
            let cut = rng.gen_range(0..=base.len());
            ("truncate".into(), base[..cut].to_vec())
        }
        1 => {
            let mut bytes = base.to_vec();
            if !bytes.is_empty() {
                let at = rng.gen_range(0..bytes.len());
                bytes[at] ^= 1 << rng.gen_range(0..8u32);
            }
            ("bit-flip".into(), bytes)
        }
        2 => {
            // Lying length inside the cap: the header claims more (or
            // fewer) payload bytes than follow.
            let mut bytes = base.to_vec();
            let lie: u32 = rng.gen_range(0..4096);
            bytes[..4].copy_from_slice(&lie.to_le_bytes());
            ("lying-length".into(), bytes)
        }
        3 => {
            // Declared length above MAX_PAYLOAD: must be refused before
            // allocation.
            let mut bytes = base.to_vec();
            let lie = (wire::MAX_PAYLOAD as u32) + 1 + rng.gen_range(0..1024u32);
            bytes[..4].copy_from_slice(&lie.to_le_bytes());
            ("oversized-length".into(), bytes)
        }
        4 => {
            // Depth bomb: nested singleton sequences past the cap,
            // correctly framed.
            let depth = wire::MAX_DEPTH + rng.gen_range(1..256usize);
            let mut payload = Vec::with_capacity(2 * depth + 1);
            for _ in 0..depth {
                payload.push(wire::tags::SEQ);
                payload.push(0x01);
            }
            payload.push(wire::tags::NULL);
            let mut bytes = Vec::new();
            let _ = wire::append_raw_frame(&mut bytes, rng.gen(), &payload);
            ("depth-bomb".into(), bytes)
        }
        5 => {
            // Interleaved legacy bytes where a frame should start.
            let mut bytes = b"\"Ping\"\n".to_vec();
            bytes.extend_from_slice(base);
            ("interleaved-legacy".into(), bytes)
        }
        6 => {
            let len = rng.gen_range(1..64usize);
            let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u8)).collect();
            ("raw-garbage".into(), bytes)
        }
        7 => {
            let mut bytes = base.to_vec();
            bytes.extend_from_slice(base);
            ("duplicated-frame".into(), bytes)
        }
        8 => {
            // A frame with an empty payload: a zero-byte value is
            // malformed but must be answered in-band.
            let mut bytes = Vec::new();
            let _ = wire::append_raw_frame(&mut bytes, rng.gen(), &[]);
            ("empty-payload".into(), bytes)
        }
        _ => {
            // Non-canonical varint spliced into an otherwise valid
            // payload: a padded spelling of the string length.
            let mut payload = vec![wire::tags::STR, 0x84, 0x00];
            payload.extend_from_slice(b"Ping");
            let mut bytes = Vec::new();
            let _ = wire::append_raw_frame(&mut bytes, rng.gen(), &payload);
            ("padded-varint-payload".into(), bytes)
        }
    }
}

/// Compares the fast and generic request decoders on one payload
/// (GDCM176). Returns a description of the disagreement, if any.
fn decoder_divergence(payload: &[u8]) -> Option<String> {
    let fast = wire::fast::decode_request(payload);
    let generic = wire::decode_value::<Request>(payload);
    match (fast, generic) {
        (Ok(a), Ok(b)) if a == b => None,
        (Ok(_), Ok(_)) => Some("both accepted, different values".to_string()),
        (Ok(_), Err(e)) => Some(format!("fast accepted what generic rejects ({e})")),
        (Err(e), Ok(_)) => Some(format!("fast rejected what generic accepts ({e})")),
        (Err(_), Err(_)) => None,
    }
}

/// Runs one fully deterministic fuzz iteration.
#[must_use]
pub fn run_iteration(serving: &ServingRepository, seed: u64, index: u64) -> FuzzFact {
    let mut rng =
        ChaCha8Rng::seed_from_u64(seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17));
    let bases = base_frames();
    let base = &bases[rng.gen_range(0..bases.len())];
    let skew_version = rng.gen_range(0..8u32) == 0;
    let (mutation, mutated) = mutate(&mut rng, base);

    // Conversation: (possibly skewed) preamble, the mutated material,
    // then a canonical sentinel Ping.
    let mut bytes = wire::preamble().to_vec();
    let label = if skew_version {
        bytes[6] = rng.gen_range(2..=255u8);
        format!("iter {index}: version-skew + {mutation}")
    } else {
        format!("iter {index}: {mutation}")
    };
    bytes.extend_from_slice(&mutated);
    let mut sentinel = Vec::new();
    let _ = wire::append_frame(&mut sentinel, SENTINEL_ID, &Request::Ping);
    bytes.extend_from_slice(&sentinel);

    // Random chunking: 1–4 read boundaries at random offsets.
    let mut cuts: Vec<usize> = (0..rng.gen_range(0..4u32))
        .map(|_| rng.gen_range(1..bytes.len()))
        .collect();
    cuts.sort_unstable();
    cuts.dedup();

    // The payload-level differential check runs outside the harness so
    // it also covers material the framing layer would refuse.
    let divergence = decoder_divergence(&mutated);

    let driven = catch_unwind(AssertUnwindSafe(|| {
        let mut h = ConnHarness::new(serving);
        let mut prev = 0usize;
        for &cut in &cuts {
            h.deliver(&bytes[prev..cut]);
            h.pump();
            prev = cut;
        }
        h.deliver(&bytes[prev..]);
        h.eof();
        let spent = h.pump_until_quiet(FUZZ_DRAIN_BUDGET);
        let stopped = h.is_dead() || h.is_closing();
        (h.take_output(), spent, stopped)
    }));

    let Ok((out, spent, stopped)) = driven else {
        return FuzzFact {
            label,
            panicked: true,
            wedged: false,
            abandoned_sentinel: false,
            undecodable_output: None,
            unknown_codes: Vec::new(),
            decoder_divergence: divergence,
        };
    };

    let mut undecodable = None;
    let mut unknown_codes = Vec::new();
    let mut sentinel_answered = false;
    match crate::parse_response_frames(&out) {
        Ok(frames) => {
            for (id, resp) in frames {
                if id == SENTINEL_ID {
                    sentinel_answered = true;
                }
                if let Response::Error { code, .. } = resp {
                    if !codes::ALL.contains(&code.as_str()) {
                        unknown_codes.push(code);
                    }
                }
            }
        }
        // Legacy-path output is JSON lines, not frames — only judge
        // frame decodability when the conversation stayed binary (it
        // always does here: the preamble leads every conversation).
        Err(why) => undecodable = Some(why),
    }

    FuzzFact {
        label,
        panicked: false,
        wedged: spent >= FUZZ_DRAIN_BUDGET,
        abandoned_sentinel: !sentinel_answered && !stopped,
        undecodable_output: undecodable,
        unknown_codes,
        decoder_divergence: divergence,
    }
}

/// Runs `iters` seeded iterations — through the `gdcm-par` pool, with
/// order-preserving results — and judges every fact.
#[must_use]
pub fn check_fuzz(serving: &ServingRepository, seed: u64, iters: usize) -> Report {
    let mut report = Report::new("wire/fuzz");
    let indices: Vec<u64> = (0..iters as u64).collect();
    let facts = gdcm_par::pool().par_map(&indices, |&i| run_iteration(serving, seed, i));
    judge_fuzz_facts("wire/fuzz", &facts, &mut report.diagnostics);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_protocol_survives_a_seeded_burst() {
        let serving = crate::harness_serving();
        let report = check_fuzz(&serving, 0xC0FFEE, 128);
        assert!(report.is_clean(), "{:?}", report.diagnostics);
    }

    #[test]
    fn iterations_are_deterministic_in_seed_and_index() {
        let serving = crate::harness_serving();
        let a = run_iteration(&serving, 7, 13);
        let b = run_iteration(&serving, 7, 13);
        assert_eq!(a.label, b.label);
        assert_eq!(a.panicked, b.panicked);
        assert_eq!(a.unknown_codes, b.unknown_codes);
        assert_eq!(a.decoder_divergence, b.decoder_divergence);
    }

    #[test]
    fn mutations_cover_every_kind() {
        let serving = crate::harness_serving();
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..200 {
            let fact = run_iteration(&serving, 99, i);
            let name = fact
                .label
                .rsplit(": ")
                .next()
                .unwrap_or_default()
                .to_string();
            seen.insert(name);
        }
        assert!(seen.len() >= 9, "mutation kinds seen: {seen:?}");
    }
}
