//! # gdcm-wirecheck — wire-protocol conformance verification
//!
//! The serving tier's binary protocol (`binary-v1`) is ~2.5k lines of
//! hand-written codec and state-machine logic carrying every production
//! prediction; this crate statically certifies it the way `gdcm-audit`
//! certifies trained artifacts, with stable diagnostic codes
//! **GDCM160–GDCM179** rendered through the shared
//! [`gdcm_analyze`] diagnostics model. Four pass groups:
//!
//! 1. [`codec`] — **codec equivalence** (GDCM160–163): differential
//!    validation of the hand-rolled fast `Request` codec against the
//!    generic tagged encoder over an enumeration of the request
//!    grammar, plus edge-complete scalar coverage (every LEB128 length
//!    boundary, over-long varints, zigzag `i64::MIN`/`MAX`, f64 NaN
//!    payloads / ±0.0 / subnormals — bit-exactness asserted).
//! 2. [`frame`] — **frame-grammar soundness** (GDCM164–169): encoder
//!    outputs re-decode to equal trees, decoder acceptances re-encode
//!    canonically, and length/depth/payload caps are proven enforced
//!    *before* allocation by decoding adversarial headers.
//! 3. [`fsm`] — **bounded model check** (GDCM170–175): drives the real
//!    per-connection state machine — via the socket-free
//!    [`gdcm_serve::harness`] — through exhaustively enumerated event
//!    schedules (k-way chunk splits, stalled writes, backpressure,
//!    protocol sniffing, mid-frame disconnect) and checks invariants:
//!    every accepted frame answered exactly once with a matching id,
//!    errors never kill pipelined siblings, buffers stay under caps,
//!    drain terminates.
//! 4. [`fuzz`] — **deterministic structure-aware fuzzer**
//!    (GDCM176–179): a seeded corpus of mutated frames (truncations,
//!    lying lengths, depth bombs, version skew, interleaved legacy
//!    bytes) run against the in-memory harness asserting no panic,
//!    stable error codes, and the connection-survival policy.
//!
//! Every check function appends [`gdcm_analyze::Diagnostic`]s to a
//! caller-owned vector; judge functions take *computed facts* (byte
//! pairs, drive outcomes) so the negative tests can pin each code with
//! deliberately corrupted inputs, mirroring the GDCM1xx corruption-test
//! pattern. Output is deterministic and identical at any
//! `GDCM_THREADS` setting.
//!
//! Environment knobs: `GDCM_WIRECHECK_ITERS` (fuzzer iterations,
//! default [`WIRECHECK_ITERS`]), `GDCM_THREADS` (parallelism, via
//! `gdcm-par`).

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![warn(missing_docs)]

pub mod codec;
pub mod corpus;
pub mod frame;
pub mod fsm;
pub mod fuzz;

use gdcm_analyze::Report;
use gdcm_serve::protocol::{wire, Response};
use gdcm_serve::{ServeConfig, ServingRepository};

/// Default fuzzer iteration count. Override per process with the
/// `GDCM_WIRECHECK_ITERS` environment variable (see
/// [`wirecheck_iters`]); CI runs the sweep at 10k.
pub const WIRECHECK_ITERS: usize = 2_000;

/// Parses a `GDCM_WIRECHECK_ITERS` value into an iteration budget.
/// Accepts any positive integer (whitespace-trimmed); everything else
/// — unset, empty, zero, garbage — falls back to [`WIRECHECK_ITERS`].
pub fn parse_wirecheck_iters(raw: Option<&str>) -> usize {
    raw.and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(WIRECHECK_ITERS)
}

/// The effective fuzzer iteration budget: `GDCM_WIRECHECK_ITERS` when
/// set to a positive integer, [`WIRECHECK_ITERS`] otherwise. Read once
/// per process; the resolved value is published through gdcm-obs
/// (gauge `wirecheck/iters` plus a one-shot event) so sweep logs
/// record which budget produced a report.
pub fn wirecheck_iters() -> usize {
    static CACHE: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHE.get_or_init(|| {
        let raw = std::env::var("GDCM_WIRECHECK_ITERS").ok();
        let n = parse_wirecheck_iters(raw.as_deref());
        gdcm_obs::gauge("wirecheck/iters").set(n as f64);
        gdcm_obs::event(
            "wirecheck/iters",
            "gdcm_wirecheck",
            &[
                ("iters", gdcm_obs::FieldValue::U64(n as u64)),
                (
                    "source",
                    gdcm_obs::FieldValue::Str(if raw.is_some() {
                        "GDCM_WIRECHECK_ITERS".into()
                    } else {
                        "default".into()
                    }),
                ),
            ],
        );
        n
    })
}

/// A small, unfitted serving repository for the state-machine and
/// fuzzer passes: real validation (`unknown_device`, `not_fitted`
/// answers) without training cost. The conformance properties under
/// check are about the *wire layer*, not the model.
#[must_use]
pub fn harness_serving() -> ServingRepository {
    let data = gdcm_core::CostDataset::tiny(11, 4, 4);
    let repo = gdcm_core::CollaborativeRepository::new(
        data.encoder.clone(),
        2,
        gdcm_core::RepositoryConfig {
            gbdt: gdcm_ml::GbdtParams {
                n_estimators: 4,
                ..gdcm_ml::GbdtParams::default()
            },
            min_rows: 1,
        },
    );
    ServingRepository::new(repo, ServeConfig::default())
}

/// Splits a captured binary output stream into `(request_id, Response)`
/// pairs, or describes the first framing/decoding violation.
///
/// # Errors
///
/// A human-readable description of the first malformed frame.
pub fn parse_response_frames(bytes: &[u8]) -> Result<Vec<(u64, Response)>, String> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let header = wire::decode_frame_header(&bytes[pos..])
            .map_err(|e| format!("frame header at byte {pos}: {e}"))?;
        let start = pos + wire::FRAME_HEADER_LEN;
        let end = start + header.payload_len;
        if end > bytes.len() {
            return Err(format!(
                "frame at byte {pos} declares {} payload byte(s) but only {} remain",
                header.payload_len,
                bytes.len() - start
            ));
        }
        let resp: Response = wire::decode_value(&bytes[start..end])
            .map_err(|e| format!("frame id {} payload: {e}", header.request_id))?;
        out.push((header.request_id, resp));
        pos = end;
    }
    Ok(out)
}

/// Runs all four pass groups and returns one report per pass, in
/// stable order. `iters` bounds the fuzzer; schedules and corpora are
/// fixed. A clean protocol yields four empty reports.
#[must_use]
pub fn full_sweep(seed: u64, iters: usize) -> Vec<Report> {
    let serving = harness_serving();
    vec![
        codec::check_codec(),
        frame::check_frames(),
        fsm::check_fsm(&serving),
        fuzz::check_fuzz(&serving, seed, iters),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iters_knob_parses_like_the_audit_knob() {
        assert_eq!(parse_wirecheck_iters(None), WIRECHECK_ITERS);
        assert_eq!(parse_wirecheck_iters(Some("")), WIRECHECK_ITERS);
        assert_eq!(parse_wirecheck_iters(Some("0")), WIRECHECK_ITERS);
        assert_eq!(parse_wirecheck_iters(Some("-3")), WIRECHECK_ITERS);
        assert_eq!(parse_wirecheck_iters(Some("junk")), WIRECHECK_ITERS);
        assert_eq!(parse_wirecheck_iters(Some(" 512 ")), 512);
    }

    #[test]
    fn full_sweep_is_clean_on_the_shipped_protocol() {
        let reports = full_sweep(42, 64);
        for report in &reports {
            assert!(
                report.is_clean(),
                "{}: {:?}",
                report.network,
                report.diagnostics
            );
        }
        assert_eq!(reports.len(), 4);
    }

    #[test]
    fn response_frame_parser_rejects_garbage() {
        assert!(parse_response_frames(&[1, 2, 3]).is_err());
        let mut buf = Vec::new();
        wire::append_frame(&mut buf, 9, &Response::Pong).expect("frames");
        let parsed = parse_response_frames(&buf).expect("parses");
        assert_eq!(parsed, vec![(9, Response::Pong)]);
        // Lying length: declared payload runs past the buffer.
        buf[0] = 0xff;
        assert!(parse_response_frames(&buf).is_err());
    }
}
