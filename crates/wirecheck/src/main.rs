//! `gdcm-wirecheck` — sweep the binary wire protocol and the serving
//! connection state machine through the conformance passes.
//!
//! ```text
//! gdcm-wirecheck [--seed S] [--iters N] [--json PATH]
//! ```
//!
//! Runs all four pass groups — codec equivalence, frame-grammar
//! soundness, the bounded model check of the connection FSM, and the
//! deterministic frame fuzzer — against the live `gdcm-serve` codec
//! and a real in-memory serving repository. Writes one JSON report per
//! pass (default `target/reports/gdcm-wirecheck.json`) and exits
//! non-zero if *any* GDCM160–179 diagnostic was produced.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

use gdcm_analyze::Report;
use serde::Serialize;

struct Args {
    seed: u64,
    iters: Option<usize>,
    json: PathBuf,
}

const USAGE: &str = "usage: gdcm-wirecheck [--seed S] [--iters N] [--json PATH]

Sweeps the binary wire protocol through the conformance passes
(GDCM160-179): codec equivalence, frame-grammar soundness, the bounded
model check of the connection state machine, and the deterministic
frame fuzzer. Exits non-zero on any diagnostic.

  --seed S     fuzzer seed (default 42, the suite seed)
  --iters N    fuzzer iterations (default GDCM_WIRECHECK_ITERS or 2000)
  --json PATH  where to write the JSON pass reports
               (default target/reports/gdcm-wirecheck.json)";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 42,
        iters: None,
        json: PathBuf::from("target/reports/gdcm-wirecheck.json"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--iters" => {
                args.iters = Some(
                    value("--iters")?
                        .parse()
                        .map_err(|e| format!("--iters: {e}"))?,
                );
            }
            "--json" => args.json = PathBuf::from(value("--json")?),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other:?}\n\n{USAGE}")),
        }
    }
    Ok(args)
}

/// The JSON document written next to the pipeline's other run reports.
#[derive(Serialize)]
struct SweepReport {
    seed: u64,
    iters: usize,
    passes: usize,
    diagnostics_total: usize,
    errors_total: usize,
    reports: Vec<Report>,
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let _span = gdcm_obs::span!("wirecheck/sweep");
    let iters = args.iters.unwrap_or_else(gdcm_wirecheck::wirecheck_iters);

    let reports = gdcm_wirecheck::full_sweep(args.seed, iters);
    for report in &reports {
        report.emit();
    }

    let diagnostics_total: usize = reports.iter().map(|r| r.diagnostics.len()).sum();
    let errors_total: usize = reports.iter().map(Report::error_count).sum();
    let sweep = SweepReport {
        seed: args.seed,
        iters,
        passes: reports.len(),
        diagnostics_total,
        errors_total,
        reports,
    };
    if let Err(e) = write_json(&args.json, &sweep) {
        eprintln!("gdcm-wirecheck: cannot write {}: {e}", args.json.display());
        return ExitCode::FAILURE;
    }

    let mut run = gdcm_obs::RunReport::new("gdcm-wirecheck");
    run.set_dim("passes", sweep.passes as u64);
    run.set_dim("fuzz_iters", iters as u64);
    run.set_dim("threads", gdcm_par::pool().threads() as u64);
    run.set_metric("diagnostics_total", diagnostics_total as f64);
    run.set_metric("errors_total", errors_total as f64);
    if let Err(e) = run.finalize_and_write() {
        eprintln!("gdcm-wirecheck: cannot write run report: {e}");
    }

    println!(
        "gdcm-wirecheck: {} passes, {} fuzz iterations, {} diagnostics ({} errors) -> {}",
        sweep.passes,
        iters,
        diagnostics_total,
        errors_total,
        args.json.display()
    );
    if diagnostics_total > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn write_json(path: &PathBuf, sweep: &SweepReport) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut file = std::fs::File::create(path)?;
    let body = serde_json::to_string_pretty(sweep).map_err(std::io::Error::other)?;
    file.write_all(body.as_bytes())?;
    file.write_all(b"\n")
}
