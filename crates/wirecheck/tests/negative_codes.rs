//! Negative tests pinning every GDCM160–179 diagnostic: each judge is
//! fed deliberately corrupted facts — divergent byte pairs, accepted
//! hostile inputs, broken conversation outcomes — and must emit
//! exactly the advertised stable code, mirroring the GDCM1xx
//! corruption-test pattern (judges take computed facts, so corruption
//! is injected at the fact layer without breaking the live codec).

use gdcm_analyze::{DiagCode, Diagnostic};
use gdcm_wirecheck::{codec, frame, fsm, fuzz};

fn codes_of(diags: &[Diagnostic]) -> Vec<String> {
    diags.iter().map(|d| d.code.code()).collect()
}

#[test]
fn gdcm160_pins_fast_encoder_divergence() {
    let mut diags = Vec::new();
    codec::judge_encode_pairs(
        "neg",
        &[codec::EncodePair {
            label: "corrupted".into(),
            fast: vec![1, 2, 3],
            generic: vec![1, 2, 4],
        }],
        &mut diags,
    );
    assert_eq!(codes_of(&diags), ["GDCM160"]);
    assert_eq!(diags[0].code, DiagCode::WireFastEncodeDivergence);
    assert!(diags[0].message.contains("byte 2"), "{}", diags[0].message);
}

#[test]
fn gdcm161_pins_fast_decoder_divergence() {
    let mut diags = Vec::new();
    codec::judge_decode_pairs(
        "neg",
        &[codec::DecodePair {
            label: "corrupted".into(),
            fast: Ok(gdcm_serve::protocol::Request::Ping),
            generic: Err("rejected".into()),
        }],
        &mut diags,
    );
    assert_eq!(codes_of(&diags), ["GDCM161"]);
    assert_eq!(diags[0].code, DiagCode::WireFastDecodeDivergence);
}

#[test]
fn gdcm162_pins_scalar_round_trip_mismatch() {
    let mut diags = Vec::new();
    codec::judge_scalar_probes(
        "neg",
        &[
            codec::ScalarProbe {
                label: "lost bits".into(),
                want_bits: 0xdead_beef,
                got_bits: Some(0xdead_bee0),
            },
            codec::ScalarProbe {
                label: "decode failed".into(),
                want_bits: 1,
                got_bits: None,
            },
        ],
        &mut diags,
    );
    assert_eq!(codes_of(&diags), ["GDCM162", "GDCM162"]);
    assert_eq!(diags[0].code, DiagCode::WireScalarRoundTripMismatch);
}

#[test]
fn gdcm163_pins_accepted_overlong_varint() {
    let mut diags = Vec::new();
    codec::judge_strictness_probes(
        "neg",
        &[codec::StrictnessProbe {
            label: "padded varint".into(),
            accepted: true,
        }],
        &mut diags,
    );
    assert_eq!(codes_of(&diags), ["GDCM163"]);
    assert_eq!(diags[0].code, DiagCode::WireOverlongVarintAccepted);
}

#[test]
fn gdcm164_pins_content_round_trip_mismatch() {
    let mut diags = Vec::new();
    frame::judge_tree_facts(
        "neg",
        &[frame::TreeFact {
            label: "corrupted tree".into(),
            round_tripped: false,
        }],
        &mut diags,
    );
    assert_eq!(codes_of(&diags), ["GDCM164"]);
    assert_eq!(diags[0].code, DiagCode::WireContentRoundTripMismatch);
}

#[test]
fn gdcm165_pins_reencode_mismatch() {
    let mut diags = Vec::new();
    frame::judge_canonical_facts(
        "neg",
        &[frame::CanonicalFact {
            label: "drifted bytes".into(),
            identical: false,
        }],
        &mut diags,
    );
    assert_eq!(codes_of(&diags), ["GDCM165"]);
    assert_eq!(diags[0].code, DiagCode::WireReencodeMismatch);
}

#[test]
fn gdcm166_pins_accepted_truncation() {
    let mut diags = Vec::new();
    frame::judge_prefix_facts(
        "neg",
        &[frame::PrefixFact {
            label: "half a frame".into(),
            accepted: true,
        }],
        &mut diags,
    );
    assert_eq!(codes_of(&diags), ["GDCM166"]);
    assert_eq!(diags[0].code, DiagCode::WireTruncationAccepted);
}

#[test]
fn gdcm167_pins_accepted_hostile_length() {
    let mut diags = Vec::new();
    frame::judge_hostile_facts(
        "neg",
        &[frame::HostileFact {
            label: "seq claiming u32::MAX".into(),
            rejected: false,
        }],
        &mut diags,
    );
    assert_eq!(codes_of(&diags), ["GDCM167"]);
    assert_eq!(diags[0].code, DiagCode::WireHostileLengthAccepted);
}

#[test]
fn gdcm168_pins_header_mismatch() {
    let mut diags = Vec::new();
    frame::judge_header_facts(
        "neg",
        &[frame::HeaderFact {
            label: "id u64::MAX".into(),
            round_tripped: false,
        }],
        &mut diags,
    );
    assert_eq!(codes_of(&diags), ["GDCM168"]);
    assert_eq!(diags[0].code, DiagCode::WireFrameHeaderMismatch);
}

#[test]
fn gdcm169_pins_unrefused_oversized_frame() {
    let mut diags = Vec::new();
    frame::judge_cap_facts(
        "neg",
        &[frame::CapFact {
            label: "17 MiB frame".into(),
            refused: false,
        }],
        &mut diags,
    );
    assert_eq!(codes_of(&diags), ["GDCM169"]);
    assert_eq!(diags[0].code, DiagCode::WireOversizedFrameUnrefused);
}

/// A healthy outcome template the FSM negative tests corrupt.
fn clean_outcome() -> fsm::ConversationOutcome {
    fsm::ConversationOutcome {
        label: "corrupted".into(),
        expected: vec![fsm::ExpectedFrame {
            id: 1,
            expect_error: false,
        }],
        answered: vec![fsm::AnsweredFrame {
            id: 1,
            is_error: false,
        }],
        parse_failure: None,
        max_buffered_input: 0,
        max_pending_output: 0,
        drained: true,
    }
}

#[test]
fn clean_outcome_judges_clean() {
    let mut diags = Vec::new();
    fsm::judge_conversations("neg", &[clean_outcome()], &mut diags);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn gdcm170_pins_missing_response() {
    let mut o = clean_outcome();
    o.answered.clear();
    let mut diags = Vec::new();
    fsm::judge_conversations("neg", &[o], &mut diags);
    assert_eq!(codes_of(&diags), ["GDCM170"]);
    assert_eq!(diags[0].code, DiagCode::FsmResponseMissing);

    // An unparseable response stream also counts as unanswered.
    let mut o = clean_outcome();
    o.parse_failure = Some("garbage after frame 0".into());
    let mut diags = Vec::new();
    fsm::judge_conversations("neg", &[o], &mut diags);
    assert!(codes_of(&diags).iter().any(|c| c == "GDCM170"));
}

#[test]
fn gdcm171_pins_duplicate_and_alien_ids() {
    // Answered twice.
    let mut o = clean_outcome();
    o.answered.push(fsm::AnsweredFrame {
        id: 1,
        is_error: false,
    });
    let mut diags = Vec::new();
    fsm::judge_conversations("neg", &[o], &mut diags);
    assert_eq!(codes_of(&diags), ["GDCM171"]);
    assert_eq!(diags[0].code, DiagCode::FsmResponseIdMismatch);

    // Answered with an id nobody asked for.
    let mut o = clean_outcome();
    o.answered.push(fsm::AnsweredFrame {
        id: 99,
        is_error: false,
    });
    let mut diags = Vec::new();
    fsm::judge_conversations("neg", &[o], &mut diags);
    assert_eq!(codes_of(&diags), ["GDCM171"]);
}

#[test]
fn gdcm172_pins_error_killing_the_pipeline() {
    // Frame 2 errored; frame 3 was pipelined behind it and vanished.
    let o = fsm::ConversationOutcome {
        label: "corrupted".into(),
        expected: vec![
            fsm::ExpectedFrame {
                id: 2,
                expect_error: true,
            },
            fsm::ExpectedFrame {
                id: 3,
                expect_error: false,
            },
        ],
        answered: vec![fsm::AnsweredFrame {
            id: 2,
            is_error: true,
        }],
        parse_failure: None,
        max_buffered_input: 0,
        max_pending_output: 0,
        drained: true,
    };
    let mut diags = Vec::new();
    fsm::judge_conversations("neg", &[o], &mut diags);
    assert_eq!(codes_of(&diags), ["GDCM172"]);
    assert_eq!(diags[0].code, DiagCode::FsmErrorKilledPipeline);
}

#[test]
fn gdcm173_pins_buffer_over_cap() {
    let mut o = clean_outcome();
    o.max_buffered_input = gdcm_serve::harness::MAX_BUFFERED_INPUT + 1;
    let mut diags = Vec::new();
    fsm::judge_conversations("neg", &[o], &mut diags);
    assert_eq!(codes_of(&diags), ["GDCM173"]);
    assert_eq!(diags[0].code, DiagCode::FsmBufferOverCap);

    let mut o = clean_outcome();
    o.max_pending_output = gdcm_serve::harness::WRITE_HIGH_WATER + fsm::OUTPUT_SLACK + 1;
    let mut diags = Vec::new();
    fsm::judge_conversations("neg", &[o], &mut diags);
    assert_eq!(codes_of(&diags), ["GDCM173"]);
}

#[test]
fn gdcm174_pins_stuck_drain() {
    let mut o = clean_outcome();
    o.drained = false;
    let mut diags = Vec::new();
    fsm::judge_conversations("neg", &[o], &mut diags);
    assert_eq!(codes_of(&diags), ["GDCM174"]);
    assert_eq!(diags[0].code, DiagCode::FsmDrainStuck);
}

#[test]
fn gdcm175_pins_sniff_mismatch() {
    let mut diags = Vec::new();
    fsm::judge_sniffs(
        "neg",
        &[fsm::SniffOutcome {
            label: "legacy line".into(),
            ok: false,
            detail: "answered in binary".into(),
        }],
        &mut diags,
    );
    assert_eq!(codes_of(&diags), ["GDCM175"]);
    assert_eq!(diags[0].code, DiagCode::FsmSniffMismatch);
}

/// A survived-cleanly fuzz fact the fuzzer negative tests corrupt.
fn clean_fact() -> fuzz::FuzzFact {
    fuzz::FuzzFact {
        label: "iter 0: bit-flip".into(),
        panicked: false,
        wedged: false,
        abandoned_sentinel: false,
        undecodable_output: None,
        unknown_codes: Vec::new(),
        decoder_divergence: None,
    }
}

#[test]
fn clean_fuzz_fact_judges_clean() {
    let mut diags = Vec::new();
    fuzz::judge_fuzz_facts("neg", &[clean_fact()], &mut diags);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn gdcm176_pins_fuzz_decoder_divergence() {
    let mut f = clean_fact();
    f.decoder_divergence = Some("fast accepted what generic rejects".into());
    let mut diags = Vec::new();
    fuzz::judge_fuzz_facts("neg", &[f], &mut diags);
    assert_eq!(codes_of(&diags), ["GDCM176"]);
    assert_eq!(diags[0].code, DiagCode::FuzzDecodeDivergence);
}

#[test]
fn gdcm177_pins_unknown_error_code() {
    let mut f = clean_fact();
    f.unknown_codes.push("not_a_real_code".into());
    let mut diags = Vec::new();
    fuzz::judge_fuzz_facts("neg", &[f], &mut diags);
    assert_eq!(codes_of(&diags), ["GDCM177"]);
    assert_eq!(diags[0].code, DiagCode::FuzzErrorCodeUnstable);
}

#[test]
fn gdcm178_pins_every_policy_violation() {
    let corruptions: [fn(&mut fuzz::FuzzFact); 3] = [
        |f| f.panicked = true,
        |f| f.wedged = true,
        |f| f.abandoned_sentinel = true,
    ];
    for corrupt in corruptions {
        let mut f = clean_fact();
        corrupt(&mut f);
        let mut diags = Vec::new();
        fuzz::judge_fuzz_facts("neg", &[f], &mut diags);
        assert_eq!(codes_of(&diags), ["GDCM178"]);
        assert_eq!(diags[0].code, DiagCode::FuzzConnectionPolicyViolation);
    }
}

#[test]
fn gdcm179_pins_undecodable_response() {
    let mut f = clean_fact();
    f.undecodable_output = Some("frame header at byte 3: truncated".into());
    let mut diags = Vec::new();
    fuzz::judge_fuzz_facts("neg", &[f], &mut diags);
    assert_eq!(codes_of(&diags), ["GDCM179"]);
    assert_eq!(diags[0].code, DiagCode::FuzzResponseUndecodable);
}

#[test]
fn all_twenty_codes_map_to_the_wirecheck_pass() {
    for code in gdcm_analyze::DiagCode::ALL {
        let n = code.number();
        if (160..=179).contains(&n) {
            assert_eq!(code.pass(), gdcm_analyze::Pass::Wirecheck, "{code:?}");
            assert_eq!(code.severity(), gdcm_analyze::Severity::Error, "{code:?}");
            assert!(!code.description().is_empty());
        }
    }
    let wirecheck_count = gdcm_analyze::DiagCode::ALL
        .iter()
        .filter(|c| (160..=179).contains(&c.number()))
        .count();
    assert_eq!(wirecheck_count, 20);
}
