//! The wirecheck sweep must produce byte-identical diagnostics
//! regardless of the worker pool width: every fact is computed from
//! deterministic inputs (seeded RNG, exhaustive schedule enumeration)
//! and `gdcm_par::Pool::par_map` preserves input order, so
//! GDCM_THREADS=1 and GDCM_THREADS=4 must serialize to the same JSON.

use gdcm_wirecheck::full_sweep;

const SEED: u64 = 0x0D15_EA5E;
const ITERS: usize = 96;

fn sweep_json(threads: usize) -> String {
    gdcm_par::set_threads(threads);
    assert_eq!(gdcm_par::pool().threads(), threads);
    let reports = full_sweep(SEED, ITERS);
    serde_json::to_string_pretty(&reports).expect("reports serialize")
}

#[test]
fn sweep_diagnostics_are_invariant_under_thread_count() {
    let single = sweep_json(1);
    let parallel = sweep_json(4);
    assert_eq!(
        single, parallel,
        "sweep output depends on the worker pool width"
    );

    // Same seed, same width: fully reproducible run-to-run too.
    let again = sweep_json(4);
    assert_eq!(parallel, again, "sweep output is not reproducible");

    // And on the shipped protocol the sweep is clean at every width.
    let reports: Vec<gdcm_analyze::Report> =
        serde_json::from_str(&single).expect("round-trips through JSON");
    assert_eq!(reports.len(), 4);
    for report in &reports {
        assert!(
            report.is_clean(),
            "pass {} produced {} diagnostics",
            report.network,
            report.diagnostics.len()
        );
    }
}
