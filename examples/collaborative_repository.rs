//! The paper's Section V workflow, end to end: a collaborative latency
//! repository that many phone owners contribute to and everyone queries.
//!
//! ```sh
//! cargo run --release --example collaborative_repository
//! ```

use generalizable_dnn_cost_models::core::signature::{MutualInfoSelector, SignatureSelector};
use generalizable_dnn_cost_models::core::{CollaborativeRepository, CostDataset, RepositoryConfig};
use generalizable_dnn_cost_models::ml::metrics::r2_score;

fn main() {
    // The "world": simulated phones and the 118-network benchmark suite.
    println!("simulating the device fleet and benchmark suite ...");
    let data = CostDataset::paper(2020);

    // Everyone agrees on a 10-network signature set (here: chosen with
    // MIS over the first few seed devices' public measurements).
    let seed_devices: Vec<usize> = (0..20).collect();
    let signature = MutualInfoSelector::default().select(&data.db, &seed_devices, 10);
    println!(
        "agreed signature set: {:?}",
        signature
            .iter()
            .map(|&n| data.suite[n].name())
            .collect::<Vec<_>>()
    );

    let mut repo = CollaborativeRepository::new(
        data.encoder.clone(),
        signature.len(),
        RepositoryConfig::default(),
    );

    // 40 phone owners enroll. Each measures the signature set (their
    // device's representation) and donates measurements on 12 more
    // networks — about 10% of the suite.
    let open: Vec<usize> = (0..data.n_networks())
        .filter(|n| !signature.contains(n))
        .collect();
    for d in 0..40 {
        let device = &data.devices[d];
        let sig_lat: Vec<f64> = signature.iter().map(|&n| data.db.latency(d, n)).collect();
        repo.onboard_device(device.model.clone(), &sig_lat)
            .expect("signature length matches");
        for &n in open.iter().cycle().skip(d * 7).step_by(9).take(12) {
            repo.contribute(&device.model, &data.suite[n].network, data.db.latency(d, n))
                .expect("device enrolled");
        }
    }
    println!(
        "repository: {} devices enrolled, {} contributed measurements",
        repo.n_devices(),
        repo.n_rows()
    );

    repo.fit().expect("enough rows to fit");

    // A 41st phone appears. It measures ONLY the signature set, then gets
    // latency predictions for the entire suite.
    let newcomer = 63;
    let device = &data.devices[newcomer];
    println!(
        "\nnew device joins: {} ({}, {:.1} GHz, {} GB)",
        device.model, device.core.name, device.freq_ghz, device.dram_gb
    );
    let sig_lat: Vec<f64> = signature
        .iter()
        .map(|&n| data.db.latency(newcomer, n))
        .collect();

    let mut actual = Vec::new();
    let mut predicted = Vec::new();
    for &n in &open {
        actual.push(data.db.latency(newcomer, n) as f32);
        predicted.push(
            repo.predict_for_new_device(&sig_lat, &data.suite[n].network)
                .expect("model fitted") as f32,
        );
    }
    println!(
        "predicted {} networks from 10 measurements: R² = {:.3}",
        open.len(),
        r2_score(&actual, &predicted)
    );

    println!("\nsample predictions for the newcomer:");
    println!(
        "  {:<22} {:>10} {:>10}",
        "network", "pred (ms)", "true (ms)"
    );
    for &n in open.iter().take(8) {
        let p = repo
            .predict_for_new_device(&sig_lat, &data.suite[n].network)
            .expect("model fitted");
        println!(
            "  {:<22} {:>10.1} {:>10.1}",
            data.suite[n].name(),
            p,
            data.db.latency(newcomer, n)
        );
    }
    println!(
        "\ncharacterizing this phone in isolation would need ~100+ measurements\n\
         for the same accuracy (paper Fig. 13: an ~11x reduction)."
    );
}
