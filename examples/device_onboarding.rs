//! Device onboarding deep-dive: how accuracy on a brand-new device
//! depends on the signature-selection method and signature size.
//!
//! ```sh
//! cargo run --release --example device_onboarding
//! ```

use generalizable_dnn_cost_models::core::signature::{
    MutualInfoSelector, RandomSelector, SpearmanSelector,
};
use generalizable_dnn_cost_models::core::{CostDataset, CostModelPipeline, PipelineConfig};
use generalizable_dnn_cost_models::ml::GbdtParams;
use generalizable_dnn_cost_models::obs;

fn main() {
    let mut run_report = obs::RunReport::new("example_device_onboarding");
    println!("building the measured dataset ...");
    let data = CostDataset::paper(2020);

    println!(
        "\nonboarding cost = one latency measurement per signature network\n\
         (30 runs each, a few minutes on-device). Accuracy on unseen devices:\n"
    );
    println!("{:<6} {:>12} {:>12} {:>12}", "size", "RS", "MIS", "SCCS");

    for m in [2usize, 5, 10, 15] {
        let config = PipelineConfig {
            signature_size: m,
            gbdt: GbdtParams::default(),
            ..PipelineConfig::default()
        };
        let pipeline = CostModelPipeline::new(&data, config);
        let rs = pipeline.run_signature(&RandomSelector::new(3)).r2;
        let mis = pipeline.run_signature(&MutualInfoSelector::default()).r2;
        let sccs = pipeline.run_signature(&SpearmanSelector::default()).r2;
        println!("{m:<6} {rs:>12.3} {mis:>12.3} {sccs:>12.3}");
    }

    // What the chosen networks look like for the recommended setting.
    let pipeline = CostModelPipeline::new(&data, PipelineConfig::default());
    let report = pipeline.run_signature(&MutualInfoSelector::default());
    println!("\nrecommended onboarding kit (MIS, 10 networks):");
    for &n in &report.signature {
        let net = &data.suite[n];
        println!(
            "  {:<22} {:>7.0}M MACs, {:>3} layers",
            net.name(),
            net.network.cost().mmacs(),
            net.network.layer_count()
        );
    }
    println!(
        "\nmodel quality with this kit: R² = {:.3}, RMSE = {:.1} ms, MAPE = {:.1}%",
        report.r2, report.rmse_ms, report.mape_pct
    );

    run_report.set_dim("devices", data.n_devices() as u64);
    run_report.set_dim("networks", data.n_networks() as u64);
    run_report.set_metric("r2_mis_m10", report.r2);
    run_report.set_metric("rmse_ms_mis_m10", report.rmse_ms);
    if let Ok(path) = run_report.finalize_and_write() {
        eprintln!("[run report: {}]", path.display());
    }
}
