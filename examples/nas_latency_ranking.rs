//! Hardware-aware NAS use case (paper §I, §VI): rank candidate
//! architectures by predicted latency on a target phone *without ever
//! running them on it* — only the 10 signature networks are measured.
//!
//! ```sh
//! cargo run --release --example nas_latency_ranking
//! ```

use generalizable_dnn_cost_models::core::hardware::HardwareRepr;
use generalizable_dnn_cost_models::core::signature::{MutualInfoSelector, SignatureSelector};
use generalizable_dnn_cost_models::core::{
    CostDataset, CostModelPipeline, EncoderConfig, NetworkEncoder, PipelineConfig,
};
use generalizable_dnn_cost_models::gen::NamedNetwork;
use generalizable_dnn_cost_models::gen::{RandomNetworkGenerator, SearchSpace};
use generalizable_dnn_cost_models::ml::metrics::spearman;
use generalizable_dnn_cost_models::ml::DenseMatrix;
use generalizable_dnn_cost_models::ml::{GbdtRegressor, Regressor};
use generalizable_dnn_cost_models::sim::{measure, LatencyEngine, MeasurementConfig};

fn main() {
    // The shared repository: measured dataset + trained signature model.
    // Ranking *fresh* architectures benefits from the encoder's optional
    // network-level summary features (total MACs/params/bytes/depth), so
    // this application enables them — see `EncoderConfig::include_summary`.
    println!("building dataset and training the cost model ...");
    let mut data = CostDataset::paper(2020);
    let encoder = NetworkEncoder::fit(
        data.suite.iter().map(|n| &n.network),
        EncoderConfig {
            max_layers: 64,
            include_summary: true,
            ..EncoderConfig::default()
        },
    );
    let mut encodings = DenseMatrix::with_capacity(data.suite.len(), encoder.len());
    for n in &data.suite {
        encodings.push_row(&encoder.encode(&n.network));
    }
    data.encoder = encoder;
    data.encodings = encodings;
    let pipeline = CostModelPipeline::new(&data, PipelineConfig::default());

    let (train_devices, test_devices) = pipeline.device_split();
    let signature = MutualInfoSelector::default().select(&data.db, &train_devices, 10);
    let repr = HardwareRepr::Signature(signature.clone());
    let networks: Vec<usize> = (0..data.n_networks())
        .filter(|n| !signature.contains(n))
        .collect();
    let (x, y) = pipeline.build_rows(&repr, &train_devices, &networks);
    let model = GbdtRegressor::fit(&x, &y, &PipelineConfig::default().gbdt);

    // The NAS target: an unseen phone. Its only characterization cost is
    // measuring the 10 signature networks (30 runs each).
    let target = &data.devices[test_devices[0]];
    println!(
        "target device: {} ({}, {:.1} GHz, {} GB) — unseen during training",
        target.model, target.core.name, target.freq_ghz, target.dram_gb
    );
    let hw = repr.encode(target, &data.db);

    // 200 fresh candidate architectures from the mobile search space —
    // none of them exist in the training suite.
    let mut generator = RandomNetworkGenerator::new(SearchSpace::mobile(), 777);
    let engine = LatencyEngine::new();
    let mcfg = MeasurementConfig { runs: 30, seed: 9 };
    let mut candidates = Vec::new();
    for i in 0..200 {
        let network = generator.generate(format!("cand_{i:03}")).expect("valid");
        let mut row = data.encoder.encode(&network);
        row.extend_from_slice(&hw);
        // Latency can never be negative; clamp the regressor's raw output.
        let predicted = model.predict_row(&row).max(0.5);
        // Ground truth (what the NAS loop would only learn by deploying):
        let named = NamedNetwork {
            index: 10_000 + i,
            network,
            predesigned: false,
        };
        let actual = measure(&engine, &named, target, &mcfg).mean_ms;
        candidates.push((named, predicted as f64, actual));
    }

    // How good is the ranking the NAS search would consume?
    let predicted: Vec<f32> = candidates.iter().map(|c| c.1 as f32).collect();
    let actual: Vec<f32> = candidates.iter().map(|c| c.2 as f32).collect();
    let rho = spearman(&actual, &predicted);
    println!("\nranked 200 unseen candidates; Spearman(predicted, actual) = {rho:.3}");

    candidates.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    println!("\nfastest 5 candidates by *predicted* latency:");
    println!(
        "  {:<10} {:>10} {:>10} {:>9}",
        "candidate", "pred (ms)", "true (ms)", "MACs (M)"
    );
    for (named, pred, actual) in candidates.iter().take(5) {
        println!(
            "  {:<10} {:>10.1} {:>10.1} {:>9.0}",
            named.name(),
            pred,
            actual,
            named.network.cost().mmacs()
        );
    }
    println!("\nslowest 3 candidates by *predicted* latency:");
    for (named, pred, actual) in candidates.iter().rev().take(3) {
        println!(
            "  {:<10} {:>10.1} {:>10.1} {:>9.0}",
            named.name(),
            pred,
            actual,
            named.network.cost().mmacs()
        );
    }
    println!(
        "\ntotal on-device characterization cost: 10 signature measurements,\n\
         instead of 200 candidate deployments."
    );
}
