//! Quickstart: build a network, simulate a device, train a cost model,
//! and predict latency on an unseen device.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use generalizable_dnn_cost_models::core::signature::{MutualInfoSelector, SignatureSelector};
use generalizable_dnn_cost_models::core::{CostDataset, CostModelPipeline, PipelineConfig};
use generalizable_dnn_cost_models::gen::zoo;
use generalizable_dnn_cost_models::sim::{DevicePopulation, LatencyEngine};

fn main() {
    // 1. Networks are plain data structures with validated shapes.
    let net = zoo::mobilenet_v2(1.0).expect("zoo network is valid");
    let cost = net.cost();
    println!(
        "{}: {} nodes, {:.0}M MACs, {:.1}M parameters",
        net.name(),
        net.len(),
        cost.mmacs(),
        cost.total_params as f64 / 1e6
    );

    // 2. Simulate its latency on a few devices from the 105-device fleet.
    let fleet = DevicePopulation::paper(1);
    let engine = LatencyEngine::new();
    println!("\nnoise-free latency of {} on sample devices:", net.name());
    for device in fleet.devices.iter().take(5) {
        println!(
            "  {:<28} ({:>4.1} GHz {:>2} GB) -> {:>7.1} ms",
            device.model,
            device.freq_ghz,
            device.dram_gb,
            engine.latency_ms(&net, device)
        );
    }

    // 3. Build the full measured dataset (118 networks x 105 devices,
    //    mean of 30 runs each — the paper's 12,390-point database).
    println!("\ncollecting the full latency database ...");
    let data = CostDataset::paper(2020);
    println!(
        "dataset: {} networks x {} devices = {} measurements",
        data.n_networks(),
        data.n_devices(),
        data.db.len()
    );

    // 4. Train a generalizable cost model: hardware is represented by the
    //    measured latencies of a 10-network signature set chosen with
    //    mutual-information selection (MIS), exactly as in the paper.
    let pipeline = CostModelPipeline::new(&data, PipelineConfig::default());
    let selector = MutualInfoSelector::default();
    let report = pipeline.run_signature(&selector);
    println!(
        "\n{} cost model: R² = {:.3} on {} unseen-device test points (RMSE {:.1} ms)",
        selector.name(),
        report.r2,
        report.actual_ms.len(),
        report.rmse_ms
    );
    let sig_names: Vec<&str> = report
        .signature
        .iter()
        .map(|&n| data.suite[n].name())
        .collect();
    println!("signature set: {sig_names:?}");

    // 5. Compare against the static-specification baseline the paper
    //    shows to be inadequate.
    let baseline = pipeline.run_static();
    println!(
        "static-spec baseline: R² = {:.3} — the signature representation wins by {:+.3}",
        baseline.r2,
        report.r2 - baseline.r2
    );
}
