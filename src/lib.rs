//! # Generalizable DNN Cost Models for Mobile Devices
//!
//! Umbrella crate for the IISWC 2020 reproduction. Re-exports every
//! workspace crate under a stable prefix so examples and downstream users
//! can depend on a single package:
//!
//! * [`analyze`] — multi-pass static IR verifier ([`gdcm_analyze`]).
//! * [`audit`] — static verification of trained ensembles, datasets,
//!   and experiment folds ([`gdcm_audit`]).
//! * [`dnn`] — the network graph IR ([`gdcm_dnn`]).
//! * [`gen`] — random generator and model zoo ([`gdcm_gen`]).
//! * [`sim`] — the mobile-device latency simulator ([`gdcm_sim`]).
//! * [`ml`] — gradient boosting and friends ([`gdcm_ml`]).
//! * [`core`] — representations, signature sets, pipeline, collaboration
//!   ([`gdcm_core`]).
//! * [`obs`] — structured tracing, metrics, and run reports
//!   ([`gdcm_obs`]).
//! * [`par`] — deterministic data-parallel runtime ([`gdcm_par`]).
//!
//! See the repository `README.md` for the full tour and `DESIGN.md` for
//! the paper-to-module map.

#![forbid(unsafe_code)]

pub use gdcm_analyze as analyze;
pub use gdcm_audit as audit;
pub use gdcm_core as core;
pub use gdcm_dnn as dnn;
pub use gdcm_gen as gen;
pub use gdcm_ml as ml;
pub use gdcm_obs as obs;
pub use gdcm_par as par;
pub use gdcm_sim as sim;
