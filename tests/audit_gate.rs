//! End-to-end exercise of the opt-in post-training audit gate: install
//! the `gdcm-audit` gate, force `deny` mode, and run a real pipeline —
//! a clean training run must complete (and a second install must be
//! rejected, since the gate is process-global and write-once).
//!
//! One `#[test]` only: both the gate and the forced audit mode are
//! process-global, so concurrent tests would race on them.

use gdcm_core::signature::MutualInfoSelector;
use gdcm_core::{AuditMode, CostDataset, CostModelPipeline, PipelineConfig};
use gdcm_ml::GbdtParams;

#[test]
fn deny_mode_gate_passes_clean_pipeline() {
    assert!(
        gdcm_audit::install_pipeline_gate(),
        "first install claims the slot"
    );
    assert!(
        !gdcm_audit::install_pipeline_gate(),
        "the gate is write-once"
    );

    gdcm_core::force_audit_mode(Some(AuditMode::Deny));
    let data = CostDataset::tiny(7, 12, 16);
    let config = PipelineConfig {
        gbdt: GbdtParams {
            n_estimators: 30,
            ..GbdtParams::default()
        },
        signature_size: 4,
        ..PipelineConfig::default()
    };
    let pipeline = CostModelPipeline::new(&data, config);

    // Under deny, any audit finding panics inside run_*; completing is
    // the assertion. Cover both representations and a log-target run.
    let static_report = pipeline.run_static();
    let sig_report = pipeline.run_signature(&MutualInfoSelector::default());
    assert!(sig_report.r2.is_finite() && static_report.r2.is_finite());

    let audited = gdcm_obs::counter("pipeline/audited_fits").get();
    assert!(audited >= 2, "gate ran for both fits (saw {audited})");

    gdcm_core::force_audit_mode(Some(AuditMode::Off));
    let before = gdcm_obs::counter("pipeline/audited_fits").get();
    let _ = pipeline.run_static();
    let after = gdcm_obs::counter("pipeline/audited_fits").get();
    assert_eq!(before, after, "off mode skips the gate entirely");

    gdcm_core::force_audit_mode(None);
}
