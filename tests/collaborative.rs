//! Integration tests for the Section V collaborative workflow.

use generalizable_dnn_cost_models::core::collaborative::{
    collaborative_for_device, isolated_curve, simulate_collaborative, CollaborativeConfig,
};
use generalizable_dnn_cost_models::core::signature::{MutualInfoSelector, SignatureSelector};
use generalizable_dnn_cost_models::core::{CollaborativeRepository, CostDataset, RepositoryConfig};
use generalizable_dnn_cost_models::ml::GbdtParams;

fn fast_gbdt() -> GbdtParams {
    GbdtParams {
        n_estimators: 40,
        ..GbdtParams::default()
    }
}

#[test]
fn collaboration_beats_isolation_at_equal_budget() {
    // The paper's headline Section V claim: for the same number of
    // measurements taken *on the target device*, the collaborative model
    // is far more accurate than the isolated one.
    let data = CostDataset::tiny(21, 24, 40);
    let target = 0; // the Redmi Note 5 Pro stand-in
    let config = CollaborativeConfig {
        signature_size: 5,
        seed: 3,
        gbdt: fast_gbdt(),
        ..CollaborativeConfig::default()
    };

    // Collaborative: target spends 5 (signature) + 5 (contribution) = 10.
    let collab_r2 = collaborative_for_device(&data, target, 35, 5, &config);

    // Isolated: 10 of its own measurements.
    let iso = isolated_curve(&data, target, &[10], &fast_gbdt(), 3);
    let iso_r2 = iso[0].r2;

    assert!(
        collab_r2 > iso_r2,
        "collaboration ({collab_r2:.3}) should beat isolation ({iso_r2:.3}) at 10 measurements"
    );
}

#[test]
fn repository_growth_curve_trends_upward() {
    let data = CostDataset::tiny(21, 16, 36);
    let config = CollaborativeConfig {
        signature_size: 4,
        iterations: 30,
        contribution_fraction: 0.2,
        seed: 1,
        gbdt: fast_gbdt(),
        eval_every: 1,
    };
    let curve = simulate_collaborative(&data, &config);
    assert_eq!(curve.len(), 30);
    // Compare the mean of the first five points to the last five.
    let early: f64 = curve[..5].iter().map(|p| p.avg_r2).sum::<f64>() / 5.0;
    let late: f64 = curve[25..].iter().map(|p| p.avg_r2).sum::<f64>() / 5.0;
    assert!(
        late > early,
        "more devices should help: early {early:.3} vs late {late:.3}"
    );
}

#[test]
fn isolated_curve_is_learnable_and_saturates_high() {
    let data = CostDataset::tiny(21, 24, 10);
    let sizes = [3, 15, 42];
    let curve = isolated_curve(&data, 2, &sizes, &fast_gbdt(), 9);
    assert_eq!(curve.len(), 3);
    assert!(
        curve[2].r2 > 0.8,
        "full isolated model should fit: {curve:?}"
    );
}

#[test]
fn repository_round_trip_across_crates() {
    // Build the repository from simulator measurements and verify the
    // predictions come back on the millisecond scale.
    let data = CostDataset::tiny(23, 12, 20);
    let all: Vec<usize> = (0..data.n_devices()).collect();
    let sig = MutualInfoSelector::default().select(&data.db, &all, 4);

    let mut repo = CollaborativeRepository::new(
        data.encoder.clone(),
        4,
        RepositoryConfig {
            gbdt: fast_gbdt(),
            min_rows: 16,
        },
    );
    let open: Vec<usize> = (0..data.n_networks())
        .filter(|n| !sig.contains(n))
        .collect();
    for d in 0..16 {
        let lat: Vec<f64> = sig.iter().map(|&n| data.db.latency(d, n)).collect();
        let name = format!("dev{d}");
        repo.onboard_device(name.clone(), &lat).unwrap();
        for &n in open.iter().skip(d % 3).step_by(5).take(6) {
            repo.contribute(&name, &data.suite[n].network, data.db.latency(d, n))
                .unwrap();
        }
    }
    repo.fit().unwrap();

    let probe = 18;
    let lat: Vec<f64> = sig.iter().map(|&n| data.db.latency(probe, n)).collect();
    for &n in open.iter().take(10) {
        let p = repo
            .predict_for_new_device(&lat, &data.suite[n].network)
            .unwrap();
        let actual = data.db.latency(probe, n);
        assert!(p.is_finite() && p > 0.0);
        assert!(
            p / actual < 20.0 && actual / p < 20.0,
            "prediction {p:.1} ms wildly off actual {actual:.1} ms"
        );
    }
}
