//! Reproducibility guarantees: every artifact in the study regenerates
//! bit-for-bit from its seed — the property that lets `EXPERIMENTS.md` be
//! regenerated and audited.

use generalizable_dnn_cost_models::core::CostDataset;
use generalizable_dnn_cost_models::gen::benchmark_suite;
use generalizable_dnn_cost_models::sim::{
    measure, DevicePopulation, LatencyEngine, MeasurementConfig,
};

#[test]
fn paper_scale_dataset_regenerates_identically() {
    let a = CostDataset::paper(2020);
    let b = CostDataset::paper(2020);
    assert_eq!(a.db, b.db);
    assert_eq!(a.encodings, b.encodings);
    assert_eq!(a.devices, b.devices);
    assert_eq!(a.suite.len(), 118);
    assert_eq!(a.devices.len(), 105);
    assert_eq!(a.db.len(), 12_390);
}

#[test]
fn different_seeds_give_different_worlds() {
    let a = CostDataset::paper(2020);
    let b = CostDataset::paper(2021);
    assert_ne!(a.db, b.db);
}

#[test]
fn measurement_order_does_not_matter() {
    // The noise stream is keyed per (device, network) cell, so measuring
    // a single cell in isolation equals the value inside a full sweep.
    let suite = benchmark_suite(7);
    let devices = DevicePopulation::sample(6, 8).devices;
    let engine = LatencyEngine::new();
    let cfg = MeasurementConfig { runs: 30, seed: 7 };
    let db =
        generalizable_dnn_cost_models::sim::LatencyDb::collect(&engine, &suite, &devices, &cfg);
    // Probe three scattered cells out of order.
    for (d, n) in [(5usize, 100usize), (0, 3), (3, 57)] {
        let m = measure(&engine, &suite[n], &devices[d], &cfg);
        assert_eq!(db.latency(d, n), m.mean_ms, "cell ({d}, {n})");
    }
}

#[test]
fn suite_composition_matches_the_paper() {
    let suite = benchmark_suite(2020);
    assert_eq!(suite.len(), 118);
    assert_eq!(suite.iter().filter(|n| n.predesigned).count(), 18);
    assert_eq!(suite.iter().filter(|n| !n.predesigned).count(), 100);
    // The zoo's flagship members are present by name.
    for name in [
        "mobilenet_v1_1.0",
        "mobilenet_v2_1.0",
        "mobilenet_v3_large",
        "mobilenet_v3_small",
        "squeezenet_v1.1",
        "mnasnet_a1",
        "proxyless_mobile",
        "fbnet_c",
        "single_path_nas",
        "efficientnet_b0",
        "shufflenet_v2_1.0",
    ] {
        assert!(
            suite.iter().any(|n| n.name() == name),
            "{name} missing from the suite"
        );
    }
}

#[test]
fn fleet_contains_the_case_study_device() {
    let data = CostDataset::paper(2020);
    let idx = data
        .device_index("Redmi Note 5 Pro")
        .expect("Section V case-study device must exist");
    let device = &data.devices[idx];
    assert_eq!(device.core.name, "Kryo-260-Gold");
    assert_eq!(device.freq_ghz, 1.8);
}
