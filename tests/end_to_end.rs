//! End-to-end integration: generator → simulator → encoder → signature
//! selection → GBDT → evaluation, across all five crates.

use generalizable_dnn_cost_models::core::signature::{
    MutualInfoSelector, RandomSelector, SpearmanSelector,
};
use generalizable_dnn_cost_models::core::{CostDataset, CostModelPipeline, PipelineConfig};
use generalizable_dnn_cost_models::ml::GbdtParams;

fn fast_config(signature_size: usize) -> PipelineConfig {
    PipelineConfig {
        signature_size,
        gbdt: GbdtParams {
            n_estimators: 50,
            ..GbdtParams::default()
        },
        ..PipelineConfig::default()
    }
}

#[test]
fn signature_model_predicts_unseen_devices() {
    let data = CostDataset::tiny(11, 22, 30);
    let pipeline = CostModelPipeline::new(&data, fast_config(5));
    let report = pipeline.run_signature(&MutualInfoSelector::default());
    assert!(
        report.r2 > 0.6,
        "MIS signature model should predict unseen devices: R² {:.3}",
        report.r2
    );
    // Every prediction is a finite, positive latency.
    for &p in &report.predicted_ms {
        assert!(p.is_finite());
        assert!(p > 0.0, "negative latency predicted: {p}");
    }
}

#[test]
fn signature_representation_beats_static_specs() {
    let data = CostDataset::tiny(11, 22, 30);
    let pipeline = CostModelPipeline::new(&data, fast_config(5));
    let static_r2 = pipeline.run_static().r2;
    for report in [
        pipeline.run_signature(&MutualInfoSelector::default()),
        pipeline.run_signature(&SpearmanSelector::default()),
    ] {
        assert!(
            report.r2 > static_r2,
            "{} ({:.3}) should beat static ({static_r2:.3})",
            report.method,
            report.r2
        );
    }
}

#[test]
fn larger_signatures_do_not_hurt_much() {
    // Fig. 11's saturation: going from 5 to 10 networks should not
    // meaningfully degrade accuracy.
    let data = CostDataset::tiny(13, 22, 30);
    let five = CostModelPipeline::new(&data, fast_config(5))
        .run_signature(&MutualInfoSelector::default())
        .r2;
    let ten = CostModelPipeline::new(&data, fast_config(10))
        .run_signature(&MutualInfoSelector::default())
        .r2;
    assert!(
        ten > five - 0.1,
        "size 10 ({ten:.3}) collapsed vs size 5 ({five:.3})"
    );
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let data = CostDataset::tiny(5, 10, 12);
        let pipeline = CostModelPipeline::new(&data, fast_config(3));
        pipeline.run_signature(&RandomSelector::new(4))
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "two identical runs must agree bit-for-bit");
}

#[test]
fn report_metrics_are_consistent() {
    let data = CostDataset::tiny(5, 12, 14);
    let pipeline = CostModelPipeline::new(&data, fast_config(4));
    let report = pipeline.run_signature(&MutualInfoSelector::default());
    // Recompute R² from the stored scatter and compare.
    let r2 = generalizable_dnn_cost_models::ml::metrics::r2_score(
        &report.actual_ms,
        &report.predicted_ms,
    );
    assert!((r2 - report.r2).abs() < 1e-12);
    let rmse =
        generalizable_dnn_cost_models::ml::metrics::rmse(&report.actual_ms, &report.predicted_ms);
    assert!((rmse - report.rmse_ms).abs() < 1e-9);
}
