//! End-to-end parallel-vs-serial equivalence: the full pipeline, the
//! verified suite, and fold evaluation produce bit-identical artifacts
//! at `GDCM_THREADS=1` and at 4 threads.
//!
//! One `#[test]` only — `gdcm_par::set_threads` is process-global, so
//! concurrent tests inside this binary would race on the budget.

use generalizable_dnn_cost_models::analyze::{verified_benchmark_suite_with, Analyzer, Report};
use generalizable_dnn_cost_models::core::signature::RandomSelector;
use generalizable_dnn_cost_models::core::{CostDataset, CostModelPipeline, PipelineConfig};
use generalizable_dnn_cost_models::gen::SearchSpace;
use generalizable_dnn_cost_models::ml::GbdtParams;

#[test]
fn pipeline_suite_and_folds_are_identical_across_thread_counts() {
    let data = CostDataset::tiny(5, 12, 16);
    let config = PipelineConfig {
        signature_size: 4,
        gbdt: GbdtParams {
            n_estimators: 30,
            ..GbdtParams::default()
        },
        ..PipelineConfig::default()
    };
    let pipeline = CostModelPipeline::new(&data, config);
    let selector = RandomSelector::new(9);
    let folds: Vec<(Vec<usize>, Vec<usize>)> = vec![
        ((0..7).collect(), (7..10).collect()),
        ((3..10).collect(), (0..3).collect()),
    ];

    let original = generalizable_dnn_cost_models::par::threads();

    // The analyzer sweep's parallel shape: ordered par_map of per-network
    // diagnostics, exactly what crates/analyze/src/main.rs runs.
    let analyzer = Analyzer::structural();
    let sweep = |suite: &[generalizable_dnn_cost_models::gen::NamedNetwork]| -> Vec<Report> {
        generalizable_dnn_cost_models::par::pool()
            .par_map(suite, |named| analyzer.analyze(&named.network))
    };

    generalizable_dnn_cost_models::par::set_threads(1);
    let report_serial = pipeline.run_signature(&selector);
    let folds_serial = pipeline.run_signature_folds(&selector, &folds);
    let suite_serial = verified_benchmark_suite_with(5, SearchSpace::tiny(), 6);
    let diags_serial = sweep(&suite_serial);

    generalizable_dnn_cost_models::par::set_threads(4);
    let report_par = pipeline.run_signature(&selector);
    let folds_par = pipeline.run_signature_folds(&selector, &folds);
    let suite_par = verified_benchmark_suite_with(5, SearchSpace::tiny(), 6);
    let diags_par = sweep(&suite_par);

    assert_eq!(report_serial, report_par, "EvalReport differs at 4 threads");
    assert_eq!(folds_serial, folds_par, "fold reports differ at 4 threads");
    assert_eq!(
        suite_serial, suite_par,
        "verified suite differs at 4 threads"
    );
    assert_eq!(
        diags_serial, diags_par,
        "analyzer diagnostics differ at 4 threads"
    );

    generalizable_dnn_cost_models::par::set_threads(original);
}
