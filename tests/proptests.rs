//! Cross-crate property-based tests: invariants that must hold for *any*
//! seed, not just the experiment seeds.

use generalizable_dnn_cost_models::analyze::Analyzer;
use generalizable_dnn_cost_models::core::{EncoderConfig, NetworkEncoder};
use generalizable_dnn_cost_models::dnn::TensorShape;
use generalizable_dnn_cost_models::gen::{RandomNetworkGenerator, SearchSpace};
use generalizable_dnn_cost_models::ml::metrics::{pearson, r2_score, spearman};
use generalizable_dnn_cost_models::ml::mutual_info::mutual_information;
use generalizable_dnn_cost_models::sim::{DevicePopulation, LatencyEngine};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every network the generator emits is valid, has positive cost, and
    /// ends in the configured classifier.
    #[test]
    fn random_networks_are_always_valid(seed in 0u64..10_000) {
        let mut generator = RandomNetworkGenerator::new(SearchSpace::tiny(), seed);
        let net = generator.generate("prop").unwrap();
        let cost = net.cost();
        prop_assert!(cost.total_macs > 0);
        prop_assert!(cost.total_params > 0);
        prop_assert_eq!(net.output().output_shape, TensorShape::vector(10));
        // Shape inference holds at every node: outputs are non-empty.
        for node in net.nodes() {
            prop_assert!(node.output_shape.elements() > 0);
        }
    }

    /// The static analyzer agrees: any generated network passes all five
    /// verification passes (well-formedness, shape re-inference, cost
    /// audit, search-space conformance, encoding invariants).
    #[test]
    fn random_networks_pass_static_analysis(seed in 0u64..10_000) {
        let space = SearchSpace::tiny();
        let analyzer = Analyzer::for_space(&space);
        let mut generator = RandomNetworkGenerator::new(space, seed);
        let net = generator.generate("prop").unwrap();
        let report = analyzer.analyze(&net);
        prop_assert!(report.is_clean(), "{}", report);
    }

    /// Encoded vectors always have the fitted length, for any network.
    #[test]
    fn encoder_length_is_invariant(seed in 0u64..10_000) {
        let mut generator = RandomNetworkGenerator::new(SearchSpace::tiny(), seed);
        let nets: Vec<_> = (0..4).map(|i| generator.generate(format!("n{i}")).unwrap()).collect();
        let encoder = NetworkEncoder::fit(nets.iter(), EncoderConfig::default());
        for net in &nets {
            let v = encoder.encode(net);
            prop_assert_eq!(v.len(), encoder.len());
            prop_assert!(v.iter().all(|x| x.is_finite()));
        }
        // A fresh network (possibly deeper) still encodes to the same length.
        let fresh = generator.generate("fresh").unwrap();
        prop_assert_eq!(encoder.encode(&fresh).len(), encoder.len());
    }

    /// Simulated latency is finite, positive, and monotone in the
    /// device's hidden slowdown.
    #[test]
    fn simulator_latency_is_positive_and_monotone(seed in 0u64..10_000) {
        let mut generator = RandomNetworkGenerator::new(SearchSpace::tiny(), seed);
        let net = generator.generate("n").unwrap();
        let device = DevicePopulation::sample(1, seed).devices.remove(0);
        let engine = LatencyEngine::new();
        let base = engine.latency_ms(&net, &device);
        prop_assert!(base.is_finite() && base > 0.0);

        let mut slower = device.clone();
        slower.hidden.global_efficiency *= 0.5;
        prop_assert!(engine.latency_ms(&net, &slower) > base);
    }

    /// Population devices always carry physically sane parameters.
    #[test]
    fn population_devices_are_sane(seed in 0u64..10_000, n in 1usize..40) {
        let pop = DevicePopulation::sample(n, seed);
        prop_assert_eq!(pop.len(), n);
        for d in &pop.devices {
            prop_assert!(d.freq_ghz > 0.5 && d.freq_ghz < 4.0);
            prop_assert!(d.hidden.sustained_freq_factor > 0.5
                && d.hidden.sustained_freq_factor <= 1.0);
            prop_assert!(d.hidden.throttle >= 1.0);
            prop_assert!(d.hidden.global_efficiency > 0.3
                && d.hidden.global_efficiency < 3.0);
            prop_assert!(d.dram_bw_gbps > 1.0);
        }
    }

    /// Metric invariants: R² of identity is 1; Pearson/Spearman bounded;
    /// MI non-negative and symmetric.
    #[test]
    fn metric_invariants(values in prop::collection::vec(-1e4f32..1e4, 5..60)) {
        prop_assume!(values.iter().any(|&v| v != values[0]));
        prop_assert!((r2_score(&values, &values) - 1.0).abs() < 1e-9);
        let reversed: Vec<f32> = values.iter().rev().copied().collect();
        let p = pearson(&values, &reversed);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&p));
        let s = spearman(&values, &reversed);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&s));
        let mi_ab = mutual_information(&values, &reversed, 4);
        let mi_ba = mutual_information(&reversed, &values, 4);
        prop_assert!(mi_ab >= 0.0);
        prop_assert!((mi_ab - mi_ba).abs() < 1e-9);
    }

    /// Spearman is invariant under strictly monotone transforms.
    #[test]
    fn spearman_monotone_invariance(values in prop::collection::vec(0.1f32..1e3, 5..50)) {
        prop_assume!(values.iter().any(|&v| v != values[0]));
        let probe: Vec<f32> = (0..values.len()).map(|i| i as f32).collect();
        let transformed: Vec<f32> = values.iter().map(|v| v.ln() * 3.0 + 7.0).collect();
        let a = spearman(&probe, &values);
        let b = spearman(&probe, &transformed);
        prop_assert!((a - b).abs() < 1e-6);
    }
}
