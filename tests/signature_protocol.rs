//! Protocol invariants of §IV-A: what signature selection may see and
//! which rows reach the model.

use generalizable_dnn_cost_models::core::signature::{
    MutualInfoSelector, RandomSelector, SignatureSelector, SpearmanSelector,
};
use generalizable_dnn_cost_models::core::{CostDataset, CostModelPipeline, PipelineConfig};
use generalizable_dnn_cost_models::ml::GbdtParams;
use std::collections::HashSet;

fn config() -> PipelineConfig {
    PipelineConfig {
        signature_size: 4,
        gbdt: GbdtParams {
            n_estimators: 30,
            ..GbdtParams::default()
        },
        ..PipelineConfig::default()
    }
}

#[test]
fn selectors_only_observe_training_devices() {
    // Device sampling is sequential and measurement noise is keyed per
    // (device, network) cell, so two datasets of different fleet sizes
    // share their common prefix of devices exactly. Selecting on the
    // shared prefix must therefore give identical signatures — proof that
    // the devices beyond the given subset are never read.
    let small = CostDataset::tiny(9, 16, 12);
    let large = CostDataset::tiny(9, 16, 20);
    let train: Vec<usize> = (0..12).collect();
    for selector in [
        Box::new(MutualInfoSelector::default()) as Box<dyn SignatureSelector>,
        Box::new(SpearmanSelector::default()),
        Box::new(RandomSelector::new(3)),
    ] {
        let a = selector.select(&small.db, &train, 5);
        let b = selector.select(&large.db, &train, 5);
        assert_eq!(a, b, "{} read beyond the training devices", selector.name());
    }
}

#[test]
fn signature_networks_never_appear_as_rows() {
    let data = CostDataset::tiny(9, 16, 20);
    let pipeline = CostModelPipeline::new(&data, config());
    for selector in [
        Box::new(RandomSelector::new(2)) as Box<dyn SignatureSelector>,
        Box::new(MutualInfoSelector::default()),
        Box::new(SpearmanSelector::default()),
    ] {
        let report = pipeline.run_signature(selector.as_ref());
        let (train, test) = pipeline.device_split();
        let expected_rows = (data.n_networks() - report.signature.len()) * train.len();
        assert_eq!(report.n_train_rows, expected_rows, "{}", report.method);
        let expected_test = (data.n_networks() - report.signature.len()) * test.len();
        assert_eq!(report.actual_ms.len(), expected_test, "{}", report.method);
    }
}

#[test]
fn split_devices_are_disjoint_and_complete() {
    let data = CostDataset::tiny(9, 8, 21);
    let pipeline = CostModelPipeline::new(&data, config());
    let (train, test) = pipeline.device_split();
    let all: HashSet<usize> = train.iter().chain(test.iter()).copied().collect();
    assert_eq!(all.len(), data.n_devices());
    assert_eq!(train.len() + test.len(), data.n_devices());
    // 30% of 21 rounds to 6 test devices.
    assert_eq!(test.len(), 6);
}

#[test]
fn three_selectors_produce_distinct_but_valid_sets() {
    let data = CostDataset::tiny(9, 20, 24);
    let devices: Vec<usize> = (0..16).collect();
    let rs = RandomSelector::new(0).select(&data.db, &devices, 8);
    let mis = MutualInfoSelector::default().select(&data.db, &devices, 8);
    let sccs = SpearmanSelector::default().select(&data.db, &devices, 8);
    for (name, sig) in [("RS", &rs), ("MIS", &mis), ("SCCS", &sccs)] {
        let unique: HashSet<_> = sig.iter().collect();
        assert_eq!(unique.len(), 8, "{name} produced duplicates: {sig:?}");
        assert!(sig.iter().all(|&n| n < data.n_networks()), "{name}");
    }
    // The deterministic methods should usually disagree with RS.
    assert!(
        mis != rs || sccs != rs,
        "all three selectors agreeing exactly is vanishingly unlikely"
    );
}

#[test]
fn cluster_splits_cover_every_device_once() {
    // The Table-I style adversarial split must partition the fleet.
    let data = CostDataset::tiny(9, 10, 18);
    let pipeline = CostModelPipeline::new(&data, config());
    let train: Vec<usize> = (0..12).collect();
    let test: Vec<usize> = (12..18).collect();
    let report = pipeline.run_signature_with_split(&MutualInfoSelector::default(), &train, &test);
    assert_eq!(
        report.actual_ms.len(),
        test.len() * (data.n_networks() - report.signature.len())
    );
}
