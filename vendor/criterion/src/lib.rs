//! Vendored micro-benchmark harness exposing the criterion API subset the
//! workspace's benches use: `criterion_group!` / `criterion_main!`,
//! `Criterion::benchmark_group`, `sample_size`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter`, and `black_box`.
//!
//! Statistics are intentionally simple — per-sample means with a
//! `[min mean max]` report — rather than the real crate's bootstrap
//! analysis; results print in a criterion-like format on stdout.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard optimization barrier.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifies a parameterized benchmark (`function/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function}/{parameter}"),
        }
    }
}

/// Drives timed iterations of one benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    /// Times `body`, running warm-up first and then the configured number
    /// of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // Warm-up and per-iteration cost estimate (~100ms budget).
        let warmup_budget = Duration::from_millis(100);
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < warmup_budget && warmup_iters < 100_000 {
            black_box(body());
            warmup_iters += 1;
        }
        let est_iter = warmup_start.elapsed() / warmup_iters.max(1) as u32;

        // Aim for ~1s of measurement split across the samples.
        let budget = Duration::from_secs(1);
        let total_iters = (budget.as_nanos() / est_iter.as_nanos().max(1)).clamp(1, 1_000_000);
        self.iters_per_sample = (total_iters as u64 / self.sample_count as u64).max(1);

        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(body());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} time:   [no samples]");
            return;
        }
        let per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / self.iters_per_sample as f64)
            .collect();
        let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = per_iter.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!(
            "{name:<40} time:   [{} {} {}]",
            format_ns(min),
            format_ns(mean),
            format_ns(max)
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timing samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run(&mut self, id: &str, run: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count: self.sample_size,
        };
        run(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id));
    }

    /// Benchmarks a closure under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut body: F) -> &mut Self {
        self.run(id, |b| body(b));
        self
    }

    /// Benchmarks a closure that receives a borrowed input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut body: F,
    ) -> &mut Self {
        let name = id.id.clone();
        self.run(&name, |b| body(b, input));
        self
    }

    /// Ends the group (report flushing is per-benchmark; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Applies command-line configuration (accepted and ignored: the
    /// vendored harness has no CLI options, but `cargo bench` passes
    /// `--bench`).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            _criterion: self,
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut body: F) -> &mut Self {
        let mut group = self.benchmark_group("");
        let mut bencher = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count: group.sample_size,
        };
        body(&mut bencher);
        bencher.report(id);
        group.finish();
        self
    }
}

/// Declares a benchmark group function from `fn(&mut Criterion)` targets.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test");
        group.sample_size(3);
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("fit", 25);
        assert_eq!(id.id, "fit/25");
    }

    #[test]
    fn ns_formatting_scales() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(12_000_000_000.0).ends_with("s"));
    }
}
