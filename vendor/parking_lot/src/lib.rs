//! Vendored `parking_lot` facade.
//!
//! Wraps `std::sync` primitives behind the non-poisoning `parking_lot`
//! API surface the workspace uses ([`RwLock`], [`Mutex`]). A poisoned
//! lock (a panic while held) is recovered rather than propagated, which
//! matches `parking_lot` semantics closely enough for this workspace's
//! cache and metrics registries.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A reader-writer lock with the `parking_lot` (non-poisoning) API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new unlocked `RwLock`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: StdRwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RwLock")
            .field("data", &&*self.read())
            .finish()
    }
}

/// A mutual-exclusion lock with the `parking_lot` (non-poisoning) API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new unlocked `Mutex`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex")
            .field("data", &&*self.lock())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_round_trip() {
        let lock = RwLock::new(5);
        assert_eq!(*lock.read(), 5);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 6);
        assert_eq!(lock.into_inner(), 6);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let lock = Arc::new(RwLock::new(1));
        let inner = Arc::clone(&lock);
        let _ = std::thread::spawn(move || {
            let _guard = inner.write();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: the lock stays usable.
        assert_eq!(*lock.read(), 1);
    }
}
