//! Vendored property-testing framework exposing the proptest API subset
//! this workspace uses: the `proptest!` macro, `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!`, `ProptestConfig::with_cases`,
//! range / tuple / mapped strategies, `collection::vec`, and
//! `sample::select`.
//!
//! Differences from the real crate: no shrinking (a failing case panics
//! with the generated inputs' debug output where available), and the RNG
//! is seeded deterministically from the test name so failures reproduce
//! across runs.

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + offset) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                    let v = self.start as f64 + unit * (self.end as f64 - self.start as f64);
                    v as $t
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }

    /// A constant strategy: always yields a clone of the value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// Collection strategies (`vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive-exclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                start: r.start,
                end: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                start: n,
                end: n + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Sampling strategies (`select`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly among a fixed set of values.
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    /// Picks one of `items` uniformly at random.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select requires at least one item");
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            let idx = (rng.next_u64() % self.items.len() as u64) as usize;
            self.items[idx].clone()
        }
    }
}

/// Test-runner plumbing: config, RNG, and case-level error type.
pub mod test_runner {
    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` accepted cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case's preconditions (`prop_assume!`) were not met; it does
        /// not count against the configured case budget.
        Reject(String),
        /// A `prop_assert!`-family assertion failed.
        Fail(String),
    }

    /// Deterministic SplitMix64 generator seeded from the test name, so a
    /// failure reproduces on every run.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test's name.
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name gives a stable per-test stream.
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self { state: hash }
        }

        /// Next 64 random bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        if !(__left == __right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __left,
                    __right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        if !(__left == __right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

/// Rejects the current case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Declares property tests. Mirrors the real macro's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0u64..10, v in prop::collection::vec(0f32..1.0, 1..5)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@config ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            @config ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@config ($config:expr)) => {};
    (@config ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            // A tuple of strategies is itself a strategy for a tuple.
            let __strategy = ($($strat,)+);
            let mut __accepted: u32 = 0;
            let mut __attempts: u32 = 0;
            while __accepted < __config.cases {
                __attempts += 1;
                assert!(
                    __attempts <= __config.cases.saturating_mul(100).max(1000),
                    "proptest `{}`: too many rejected cases ({} attempts)",
                    stringify!($name),
                    __attempts,
                );
                let ($($pat,)+) =
                    $crate::strategy::Strategy::new_value(&__strategy, &mut __rng);
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __accepted += 1,
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {}
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(__msg),
                    ) => {
                        panic!(
                            "proptest `{}` failed at case {}: {}",
                            stringify!($name),
                            __accepted,
                            __msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl!(@config ($config) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy as _;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..1000 {
            let v = (3u64..17).new_value(&mut rng);
            assert!((3..17).contains(&v));
            let f = (-2.0f32..3.5).new_value(&mut rng);
            assert!((-2.0..3.5).contains(&f));
            let i = (-5i32..5).new_value(&mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn vec_and_select_strategies() {
        let mut rng = TestRng::from_name("vec");
        let strat = crate::collection::vec(0u64..4, 2..6);
        for _ in 0..200 {
            let v = strat.new_value(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
        let sel = crate::sample::select(vec![10usize, 20, 30]);
        for _ in 0..50 {
            assert!([10, 20, 30].contains(&sel.new_value(&mut rng)));
        }
    }

    #[test]
    fn prop_map_composes() {
        let mut rng = TestRng::from_name("map");
        let strat = (1usize..4, 1usize..4).prop_map(|(a, b)| a * 10 + b);
        for _ in 0..100 {
            let v = strat.new_value(&mut rng);
            assert!((11..=33).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_end_to_end(x in 0u64..100, v in prop::collection::vec(0f32..1.0, 1..8)) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), v.len());
            prop_assert!(v.iter().all(|p| (0.0..1.0).contains(p)), "bad {v:?}");
        }
    }
}
