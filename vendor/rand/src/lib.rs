//! Vendored subset of the `rand` 0.8 API.
//!
//! Provides the [`Rng`] extension trait (`gen_range`, `gen_bool`) and
//! [`seq::SliceRandom`] (`shuffle`, `choose`) over any
//! [`rand_core::RngCore`]. Distributions are uniform and deterministic
//! under a fixed seed, but value streams are not bit-compatible with
//! upstream `rand`.

pub use rand_core::{RngCore, SeedableRng};

use std::ops::{Range, RangeInclusive};

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`; callers guarantee `lo < hi`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Uniform draw from `[lo, hi]`; callers guarantee `lo <= hi`.
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo < hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Widening-multiply range reduction: unbiased enough for
                // simulation use, branch-free, and monotone in the raw draw.
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + draw) as $t
            }

            #[inline]
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty => $bits:expr),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo < hi, "empty range");
                let unit = (rng.next_u64() >> (64 - $bits)) as $t
                    / (1u64 << $bits) as $t;
                lo + (hi - lo) * unit
            }

            #[inline]
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo <= hi, "empty range");
                let unit = (rng.next_u64() >> (64 - $bits)) as $t
                    / ((1u64 << $bits) - 1) as $t;
                lo + (hi - lo) * unit
            }
        }
    )*};
}

impl_sample_uniform_float!(f32 => 24, f64 => 53);

/// Types that can be drawn from the "standard" distribution
/// (unit interval for floats, full range for integers).
pub trait StandardSample: Sized {
    /// Draws one value from the standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl StandardSample for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_closed(rng, lo, hi)
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a range.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Draws from the standard distribution (`[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related random operations.
pub mod seq {
    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher-Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::Rng::gen_range(rng, 0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[super::Rng::gen_range(rng, 0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct SplitMix(u64);

    impl RngCore for SplitMix {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SplitMix(1);
        for _ in 0..2000 {
            let v: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: usize = rng.gen_range(0..=4);
            assert!(w <= 4);
            let f: f64 = rng.gen_range(-2.0..5.0);
            assert!((-2.0..5.0).contains(&f));
            let g: f32 = rng.gen_range(0.5..=1.5);
            assert!((0.5..=1.5).contains(&g));
            let s: i64 = rng.gen_range(-50..-10);
            assert!((-50..-10).contains(&s));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = SplitMix(2);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SplitMix(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_handles_empty_and_full() {
        let mut rng = SplitMix(5);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let v = [7u8, 8, 9];
        for _ in 0..20 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
    }
}
