//! Vendored ChaCha8-based RNG.
//!
//! Implements the real ChaCha stream cipher core (8 rounds) behind the
//! `ChaCha8Rng` name the workspace uses. Streams are deterministic and
//! high quality, but not bit-identical to the upstream `rand_chacha`
//! crate (upstream applies a different word ordering); every consumer in
//! this workspace only relies on seeded determinism.

pub use rand_core;

use rand_core::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

/// A ChaCha stream-cipher random number generator with 8 rounds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..4 {
            // One double round: column round + diagonal round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(input.iter()) {
            *word = word.wrapping_add(*init);
        }
        self.buffer = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "{same} collisions in 64 draws");
    }

    #[test]
    fn output_looks_uniform() {
        // Crude sanity: mean of u32 draws near 2^31, all bytes exercised.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 4096;
        let mean = (0..n).map(|_| rng.next_u32() as f64).sum::<f64>() / n as f64;
        let expected = (u32::MAX as f64) / 2.0;
        assert!((mean - expected).abs() < expected * 0.05, "mean {mean}");
    }

    #[test]
    fn counter_advances_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let first_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first_block, second_block);
    }
}
