//! Vendored subset of the `rand_core` API.
//!
//! This workspace builds in a hermetic environment without crates.io
//! access, so the external RNG crates are replaced by small local
//! implementations exposing exactly the surface the workspace uses.
//! Only the trait signatures match the upstream crate; value streams are
//! deterministic but not bit-compatible with upstream `rand`.

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A random number generator seedable from fixed-size byte seeds.
pub trait SeedableRng: Sized {
    /// Seed material: a fixed-size byte array.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` by expanding it with SplitMix64,
    /// so nearby integer seeds produce unrelated streams.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.0 += 1;
            self.0 as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 += 1;
            self.0
        }
    }

    #[test]
    fn fill_bytes_covers_remainders() {
        let mut rng = Counter(0);
        let mut buf = [0u8; 7];
        rng.fill_bytes(&mut buf);
        assert_eq!(&buf[..4], &1u32.to_le_bytes());
        assert_eq!(&buf[4..], &2u32.to_le_bytes()[..3]);
    }
}
