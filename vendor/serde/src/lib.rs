//! Vendored serde core.
//!
//! This workspace builds hermetically (no crates.io), so the real serde
//! is replaced by a small local implementation that keeps the public
//! trait *shape* — `Serialize`, `Deserialize<'de>`, `Serializer`,
//! `Deserializer<'de>`, `ser::Error`, `de::Error`, and the
//! `#[derive(Serialize, Deserialize)]` macros — while collapsing the
//! data model to a JSON-shaped content tree ([`__private::Content`]).
//!
//! Every `Serializer` forwards through [`Serializer::serialize_content`];
//! the single concrete serializer lives in `__private` and is what
//! `serde_json` (also vendored) drives. Hand-written impls in the
//! workspace only use `serialize_str`, `String::deserialize`, and
//! `Error::custom`, all of which behave exactly like upstream.

pub use serde_derive::{Deserialize, Serialize};

/// Serialization error handling.
pub mod ser {
    use std::fmt::Display;

    /// Trait all serializer error types implement.
    pub trait Error: Sized + std::fmt::Debug + Display {
        /// Builds an error from any displayable message.
        fn custom<T: Display>(msg: T) -> Self;
    }
}

/// Deserialization error handling.
pub mod de {
    use std::fmt::Display;

    /// Trait all deserializer error types implement.
    pub trait Error: Sized + std::fmt::Debug + Display {
        /// Builds an error from any displayable message.
        fn custom<T: Display>(msg: T) -> Self;
    }
}

/// A data format that can serialize any data structure supported by this
/// vendored serde.
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: ser::Error;

    /// Accepts a fully-built content tree. All other methods funnel here.
    fn serialize_content(self, content: __private::Content) -> Result<Self::Ok, Self::Error>;

    /// Serializes a boolean.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(__private::Content::Bool(v))
    }

    /// Serializes a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(__private::Content::I64(v))
    }

    /// Serializes an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(__private::Content::U64(v))
    }

    /// Serializes a floating-point number.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(__private::Content::F64(v))
    }

    /// Serializes a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(__private::Content::Str(v.to_string()))
    }

    /// Serializes a unit value (`null` in JSON formats).
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(__private::Content::Null)
    }
}

/// A data structure that can be serialized.
pub trait Serialize {
    /// Serializes `self` into the given serializer.
    fn serialize<S>(&self, serializer: S) -> Result<S::Ok, S::Error>
    where
        S: Serializer;
}

/// A data format that can deserialize any supported data structure.
pub trait Deserializer<'de>: Sized {
    /// Error produced on failure.
    type Error: de::Error;

    /// Yields the input as a fully-parsed content tree.
    fn deserialize_content(self) -> Result<__private::Content, Self::Error>;
}

/// A data structure that can be deserialized.
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` from the given deserializer.
    fn deserialize<D>(deserializer: D) -> Result<Self, D::Error>
    where
        D: Deserializer<'de>;
}

/// Implementation plumbing shared by the derive macros and `serde_json`.
///
/// Public for macro hygiene only; not part of the supported API.
pub mod __private {
    use super::{de, ser, Deserialize, Deserializer, Serialize, Serializer};
    use std::fmt::Display;

    /// The JSON-shaped content tree all (de)serialization funnels through.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Content {
        /// `null`.
        Null,
        /// A boolean.
        Bool(bool),
        /// A signed integer.
        I64(i64),
        /// An unsigned integer (used when a value exceeds `i64::MAX`).
        U64(u64),
        /// A floating-point number.
        F64(f64),
        /// A string.
        Str(String),
        /// An ordered sequence.
        Seq(Vec<Content>),
        /// An ordered string-keyed map (struct fields, enum payloads).
        Map(Vec<(String, Content)>),
    }

    impl Content {
        /// Human-readable kind name for error messages.
        pub fn kind(&self) -> &'static str {
            match self {
                Content::Null => "null",
                Content::Bool(_) => "bool",
                Content::I64(_) | Content::U64(_) => "integer",
                Content::F64(_) => "float",
                Content::Str(_) => "string",
                Content::Seq(_) => "sequence",
                Content::Map(_) => "map",
            }
        }
    }

    /// Error type used while building or destructuring content trees.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct ContentError(pub String);

    impl Display for ContentError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for ContentError {}

    impl ser::Error for ContentError {
        fn custom<T: Display>(msg: T) -> Self {
            ContentError(msg.to_string())
        }
    }

    impl de::Error for ContentError {
        fn custom<T: Display>(msg: T) -> Self {
            ContentError(msg.to_string())
        }
    }

    /// The one concrete serializer: captures the content tree.
    pub struct ContentSerializer;

    impl Serializer for ContentSerializer {
        type Ok = Content;
        type Error = ContentError;

        fn serialize_content(self, content: Content) -> Result<Content, ContentError> {
            Ok(content)
        }
    }

    /// Serializes any value into a content tree.
    pub fn to_content<T: Serialize + ?Sized>(value: &T) -> Result<Content, ContentError> {
        value.serialize(ContentSerializer)
    }

    /// A deserializer that replays a content tree, generic over the error
    /// type expected by the caller.
    pub struct ContentDeserializer<E> {
        content: Content,
        _marker: std::marker::PhantomData<fn() -> E>,
    }

    impl<E> ContentDeserializer<E> {
        /// Wraps a content tree for deserialization.
        pub fn new(content: Content) -> Self {
            Self {
                content,
                _marker: std::marker::PhantomData,
            }
        }
    }

    impl<'de, E: de::Error> Deserializer<'de> for ContentDeserializer<E> {
        type Error = E;

        fn deserialize_content(self) -> Result<Content, E> {
            Ok(self.content)
        }
    }

    /// Deserializes any value out of a content tree.
    pub fn from_content<'de, T, E>(content: Content) -> Result<T, E>
    where
        T: Deserialize<'de>,
        E: de::Error,
    {
        T::deserialize(ContentDeserializer::<E>::new(content))
    }

    /// Destructures map content, naming `what` in errors.
    pub fn into_map<E: de::Error>(
        content: Content,
        what: &str,
    ) -> Result<Vec<(String, Content)>, E> {
        match content {
            Content::Map(m) => Ok(m),
            other => Err(E::custom(format!(
                "expected a map for {what}, found {}",
                other.kind()
            ))),
        }
    }

    /// Destructures sequence content, naming `what` in errors.
    pub fn into_seq<E: de::Error>(content: Content, what: &str) -> Result<Vec<Content>, E> {
        match content {
            Content::Seq(s) => Ok(s),
            other => Err(E::custom(format!(
                "expected a sequence for {what}, found {}",
                other.kind()
            ))),
        }
    }

    /// Removes and deserializes a struct field by name.
    pub fn take_field<'de, T, E>(map: &mut Vec<(String, Content)>, key: &str) -> Result<T, E>
    where
        T: Deserialize<'de>,
        E: de::Error,
    {
        match map.iter().position(|(k, _)| k == key) {
            Some(idx) => from_content(map.swap_remove(idx).1),
            None => Err(E::custom(format!("missing field `{key}`"))),
        }
    }

    /// Like [`take_field`], but an absent field yields `T::default()` —
    /// the backing for `#[serde(default)]` in the vendored derive.
    pub fn take_field_or_default<'de, T, E>(
        map: &mut Vec<(String, Content)>,
        key: &str,
    ) -> Result<T, E>
    where
        T: Deserialize<'de> + Default,
        E: de::Error,
    {
        match map.iter().position(|(k, _)| k == key) {
            Some(idx) => from_content(map.swap_remove(idx).1),
            None => Ok(T::default()),
        }
    }
}

use __private::Content;

// ---------------------------------------------------------------------------
// Serialize impls for std types used by the workspace.
// ---------------------------------------------------------------------------

macro_rules! impl_serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_u64(*self as u64)
            }
        }
    )*};
}

impl_serialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_i64(*self as i64)
            }
        }
    )*};
}

impl_serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self as f64)
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            None => serializer.serialize_unit(),
            Some(v) => v.serialize(serializer),
        }
    }
}

fn seq_to_content<'a, T, S, I>(items: I) -> Result<Content, S::Error>
where
    T: Serialize + 'a,
    S: Serializer,
    I: Iterator<Item = &'a T>,
{
    let items: Result<Vec<Content>, _> = items.map(__private::to_content).collect();
    Ok(Content::Seq(items.map_err(ser::Error::custom)?))
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(seq_to_content::<T, S, _>(self.iter())?)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(seq_to_content::<T, S, _>(self.iter())?)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(seq_to_content::<T, S, _>(self.iter())?)
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let items = vec![
                    $(__private::to_content(&self.$idx).map_err(ser::Error::custom)?,)+
                ];
                serializer.serialize_content(Content::Seq(items))
            }
        }
    )*};
}

impl_serialize_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types used by the workspace.
// ---------------------------------------------------------------------------

fn unexpected<E: de::Error>(expected: &str, found: &Content) -> E {
    E::custom(format!("expected {expected}, found {}", found.kind()))
}

macro_rules! impl_deserialize_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match deserializer.deserialize_content()? {
                    Content::I64(v) => <$t>::try_from(v)
                        .map_err(|_| de::Error::custom(format!(
                            "integer {v} out of range for {}", stringify!($t)
                        ))),
                    Content::U64(v) => <$t>::try_from(v)
                        .map_err(|_| de::Error::custom(format!(
                            "integer {v} out of range for {}", stringify!($t)
                        ))),
                    other => Err(unexpected(stringify!($t), &other)),
                }
            }
        }
    )*};
}

impl_deserialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_deserialize_float {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match deserializer.deserialize_content()? {
                    Content::F64(v) => Ok(v as $t),
                    Content::I64(v) => Ok(v as $t),
                    Content::U64(v) => Ok(v as $t),
                    other => Err(unexpected(stringify!($t), &other)),
                }
            }
        }
    )*};
}

impl_deserialize_float!(f32, f64);

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Null => Ok(()),
            other => Err(unexpected("null", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Bool(v) => Ok(v),
            other => Err(unexpected("bool", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Str(v) => Ok(v),
            other => Err(unexpected("string", &other)),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Null => Ok(None),
            other => __private::from_content(other).map(Some),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let seq = __private::into_seq::<D::Error>(deserializer.deserialize_content()?, "Vec")?;
        seq.into_iter().map(__private::from_content).collect()
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let items = Vec::<T>::deserialize(deserializer)?;
        let len = items.len();
        <[T; N]>::try_from(items).map_err(|_| {
            <D::Error as de::Error>::custom(format!(
                "expected an array of {N} elements, found {len}"
            ))
        })
    }
}

macro_rules! impl_deserialize_tuple {
    ($($len:literal => ($($name:ident),+))*) => {$(
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<__D: Deserializer<'de>>(deserializer: __D) -> Result<Self, __D::Error> {
                let seq = __private::into_seq::<__D::Error>(
                    deserializer.deserialize_content()?,
                    "tuple",
                )?;
                if seq.len() != $len {
                    return Err(de::Error::custom(format!(
                        "expected a tuple of {} elements, found {}", $len, seq.len()
                    )));
                }
                let mut iter = seq.into_iter();
                Ok((
                    $({
                        let _ = stringify!($name);
                        __private::from_content(iter.next().expect("length checked"))?
                    },)+
                ))
            }
        }
    )*};
}

impl_deserialize_tuple! {
    1 => (A)
    2 => (A, B)
    3 => (A, B, C)
    4 => (A, B, C, D)
}

#[cfg(test)]
mod tests {
    use super::__private::{from_content, to_content, Content, ContentError};
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let c = to_content(&42u32).unwrap();
        assert_eq!(c, Content::U64(42));
        let back: u32 = from_content::<u32, ContentError>(c).unwrap();
        assert_eq!(back, 42);

        let c = to_content(&-7i64).unwrap();
        assert_eq!(from_content::<i64, ContentError>(c).unwrap(), -7);

        let c = to_content(&1.5f32).unwrap();
        assert_eq!(from_content::<f32, ContentError>(c).unwrap(), 1.5);

        let c = to_content(&"hi".to_string()).unwrap();
        assert_eq!(from_content::<String, ContentError>(c).unwrap(), "hi");
    }

    #[test]
    fn vec_and_tuple_round_trip() {
        let v = vec![(1usize, 2.5f64), (3, 4.5)];
        let c = to_content(&v).unwrap();
        let back: Vec<(usize, f64)> = from_content::<_, ContentError>(c).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn option_uses_null() {
        assert_eq!(to_content(&None::<u8>).unwrap(), Content::Null);
        let c = to_content(&Some(3u8)).unwrap();
        assert_eq!(
            from_content::<Option<u8>, ContentError>(c).unwrap(),
            Some(3)
        );
        assert_eq!(
            from_content::<Option<u8>, ContentError>(Content::Null).unwrap(),
            None
        );
    }

    #[test]
    fn out_of_range_integers_error() {
        let err = from_content::<u8, ContentError>(Content::I64(300));
        assert!(err.is_err());
        let err = from_content::<u32, ContentError>(Content::I64(-1));
        assert!(err.is_err());
    }

    #[test]
    fn type_mismatch_reports_kinds() {
        let err = from_content::<String, ContentError>(Content::Bool(true)).unwrap_err();
        assert!(err.0.contains("expected string"), "{}", err.0);
    }
}
