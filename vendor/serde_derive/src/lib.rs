//! Vendored `#[derive(Serialize, Deserialize)]` macros.
//!
//! Built directly on `proc_macro` (the hermetic build has no `syn` /
//! `quote`): a small token-walker extracts the item shape — struct with
//! named fields, tuple struct, unit struct, or enum with unit / tuple /
//! struct variants — and emits impls against the vendored `serde`
//! content-tree data model. Externally-tagged enum encoding matches
//! upstream serde's JSON layout (`"Variant"`, `{"Variant": ...}`).
//!
//! The only `#[serde(...)]` attribute supported is `#[serde(default)]`
//! on named fields (absent fields deserialize to `Default::default()`);
//! anything else under `#[serde(...)]` is a compile error rather than a
//! silent no-op.
//!
//! Unsupported (not used by this workspace): generic type parameters,
//! other `#[serde(...)]` attributes, unions.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named field: its identifier plus whether `#[serde(default)]`
/// marks it.
struct Field {
    name: String,
    default: bool,
}

/// Shape of a struct body or an enum variant's payload.
enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("valid error tokens")
}

/// Skips `#[...]` attribute groups starting at `i`; returns the next index.
fn skip_attributes(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Like [`skip_attributes`], but inspects each `#[serde(...)]` group:
/// `#[serde(default)]` sets the flag; any other serde attribute is an
/// error (refusing beats silently ignoring a behavioral request).
/// Returns `(next_index, has_default)`.
fn read_field_attributes(tokens: &[TokenTree], mut i: usize) -> Result<(usize, bool), String> {
    let mut default = false;
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) =
                    (inner.first(), inner.get(1))
                {
                    if id.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis {
                        let args: Vec<String> =
                            args.stream().into_iter().map(|t| t.to_string()).collect();
                        match args.as_slice() {
                            [only] if only == "default" => default = true,
                            other => {
                                return Err(format!(
                                    "vendored serde derive supports only #[serde(default)], \
                                     found #[serde({})]",
                                    other.join("")
                                ))
                            }
                        }
                    }
                }
                i += 2;
            }
            _ => break,
        }
    }
    Ok((i, default))
}

/// Skips `pub` / `pub(...)` visibility starting at `i`.
fn skip_visibility(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Counts top-level comma-separated segments (tuple fields). Tracks angle
/// brackets so `Foo<A, B>` counts as one field; `()`/`[]`/`{}` arrive as
/// opaque groups and need no tracking.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut fields = 0usize;
    let mut in_segment = false;
    let mut angle_depth = 0i32;
    for token in stream {
        match &token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                in_segment = false;
                continue;
            }
            _ => {}
        }
        if !in_segment {
            fields += 1;
            in_segment = true;
        }
    }
    fields
}

/// Extracts fields (and their `#[serde(default)]` flags) from a
/// named-field body `{ a: T, b: U }`.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let (after_attrs, default) = read_field_attributes(&tokens, i)?;
        i = skip_visibility(&tokens, after_attrs);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("expected field name, found `{other}`")),
            None => break,
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        names.push(Field { name, default });
        // Skip the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        while let Some(token) = tokens.get(i) {
            match token {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(names)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        i = skip_attributes(&tokens, i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("expected variant name, found `{other}`")),
            None => break,
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream())?)
            }
            _ => Fields::Unit,
        };
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            Some(other) => {
                return Err(format!(
                    "unsupported token `{other}` after variant `{name}` \
                     (explicit discriminants are not supported)"
                ))
            }
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_visibility(&tokens, skip_attributes(&tokens, 0));
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found `{other:?}`")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found `{other:?}`")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "vendored serde derive does not support generic type `{name}`"
            ));
        }
    }
    match keyword.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => return Err(format!("unsupported struct body: `{other:?}`")),
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                name,
                variants: parse_variants(g.stream())?,
            }),
            other => Err(format!("unsupported enum body: `{other:?}`")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

const TO_CONTENT: &str = "::serde::__private::to_content";
const FROM_CONTENT: &str = "::serde::__private::from_content";
const CONTENT: &str = "::serde::__private::Content";

fn ser_custom(generic: &str) -> String {
    format!("<{generic}::Error as ::serde::ser::Error>::custom")
}

fn de_custom(generic: &str) -> String {
    format!("<{generic}::Error as ::serde::de::Error>::custom")
}

/// Emits an expression building the `Content` map for named fields, with
/// each value expression produced by `value_of(field_name)`.
fn named_fields_content(fields: &[Field], value_of: impl Fn(&str) -> String) -> String {
    let mut out = format!(
        "{{ let mut __fields: ::std::vec::Vec<(::std::string::String, {CONTENT})> = \
         ::std::vec::Vec::with_capacity({}); ",
        fields.len()
    );
    for field in fields {
        let name = &field.name;
        out.push_str(&format!(
            "__fields.push((::std::string::String::from({name:?}), {}.map_err({})?)); ",
            value_of(name),
            ser_custom("__S")
        ));
    }
    out.push_str(&format!("{CONTENT}::Map(__fields) }}"));
    out
}

fn tuple_content(bindings: &[String]) -> String {
    let items: Vec<String> = bindings
        .iter()
        .map(|b| format!("{TO_CONTENT}({b}).map_err({})?", ser_custom("__S")))
        .collect();
    format!("{CONTENT}::Seq(::std::vec![{}])", items.join(", "))
}

fn expand_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "__serializer.serialize_unit()".to_string(),
                Fields::Tuple(1) => {
                    "::serde::Serialize::serialize(&self.0, __serializer)".to_string()
                }
                Fields::Tuple(n) => {
                    let bindings: Vec<String> = (0..*n).map(|i| format!("&self.{i}")).collect();
                    format!(
                        "__serializer.serialize_content({})",
                        tuple_content(&bindings)
                    )
                }
                Fields::Named(fields) => {
                    let map = named_fields_content(fields, |f| format!("{TO_CONTENT}(&self.{f})"));
                    format!("__serializer.serialize_content({map})")
                }
            };
            (name, body)
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => __serializer.serialize_str({vname:?}),\n"
                    )),
                    Fields::Tuple(n) => {
                        let bindings: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let payload = if *n == 1 {
                            format!("{TO_CONTENT}(__f0).map_err({})?", ser_custom("__S"))
                        } else {
                            tuple_content(&bindings)
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => {{ let __payload = {payload}; \
                             __serializer.serialize_content({CONTENT}::Map(::std::vec![\
                             (::std::string::String::from({vname:?}), __payload)])) }},\n",
                            bindings.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let inner = named_fields_content(fields, |f| format!("{TO_CONTENT}({f})"));
                        let bindings: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{ let __payload = {inner}; \
                             __serializer.serialize_content({CONTENT}::Map(::std::vec![\
                             (::std::string::String::from({vname:?}), __payload)])) }},\n",
                            bindings.join(", ")
                        ));
                    }
                }
            }
            (name, format!("match self {{\n{arms}}}"))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S) \
                 -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

/// Emits statements + constructor expression deserializing `fields` out of
/// content held in `content_var`, constructing `ctor`.
fn fields_from_content(ctor: &str, fields: &Fields, content_var: &str, what: &str) -> String {
    match fields {
        Fields::Unit => format!(
            "match {content_var} {{ \
               {CONTENT}::Null => ::core::result::Result::Ok({ctor}), \
               __other => ::core::result::Result::Err({}(::std::format!(\
                 \"expected null for {what}, found {{}}\", __other.kind()))) }}",
            de_custom("__D")
        ),
        Fields::Tuple(n) => {
            let mut out = format!(
                "{{ let __seq = ::serde::__private::into_seq::<__D::Error>({content_var}, {what:?})?; \
                 if __seq.len() != {n} {{ return ::core::result::Result::Err({}(::std::format!(\
                   \"expected {n} elements for {what}, found {{}}\", __seq.len()))); }} \
                 let mut __iter = __seq.into_iter(); ",
                de_custom("__D")
            );
            let args: Vec<String> = (0..*n)
                .map(|_| format!("{FROM_CONTENT}(__iter.next().expect(\"length checked\"))?"))
                .collect();
            out.push_str(&format!(
                "::core::result::Result::Ok({ctor}({})) }}",
                args.join(", ")
            ));
            out
        }
        Fields::Named(fields) => {
            let mut out = format!(
                "{{ let mut __map = \
                 ::serde::__private::into_map::<__D::Error>({content_var}, {what:?})?; "
            );
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    let name = &f.name;
                    let taker = if f.default {
                        "take_field_or_default"
                    } else {
                        "take_field"
                    };
                    format!("{name}: ::serde::__private::{taker}(&mut __map, {name:?})?")
                })
                .collect();
            out.push_str(&format!(
                "::core::result::Result::Ok({ctor} {{ {} }}) }}",
                inits.join(", ")
            ));
            out
        }
    }
}

fn expand_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Tuple(1) => format!(
                    "::core::result::Result::Ok({name}(\
                     ::serde::Deserialize::deserialize(__deserializer)?))"
                ),
                other => {
                    let inner = fields_from_content(name, other, "__content", name);
                    format!("let __content = __deserializer.deserialize_content()?; {inner}")
                }
            };
            (name, body)
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                let vname = &v.name;
                let what = format!("{name}::{vname}");
                match &v.fields {
                    Fields::Unit => unit_arms.push_str(&format!(
                        "{vname:?} => ::core::result::Result::Ok({name}::{vname}),\n"
                    )),
                    Fields::Tuple(1) => payload_arms.push_str(&format!(
                        "{vname:?} => ::core::result::Result::Ok({name}::{vname}(\
                         {FROM_CONTENT}(__value)?)),\n"
                    )),
                    other => {
                        let inner = fields_from_content(
                            &format!("{name}::{vname}"),
                            other,
                            "__value",
                            &what,
                        );
                        payload_arms.push_str(&format!("{vname:?} => {inner},\n"));
                    }
                }
            }
            let custom = de_custom("__D");
            let body = format!(
                "let __content = __deserializer.deserialize_content()?;\n\
                 match __content {{\n\
                   {CONTENT}::Str(__s) => match __s.as_str() {{\n\
                     {unit_arms}\
                     __other => ::core::result::Result::Err({custom}(::std::format!(\
                       \"unknown unit variant `{{}}` of {name}\", __other))),\n\
                   }},\n\
                   {CONTENT}::Map(mut __m) if __m.len() == 1 => {{\n\
                     let (__key, __value) = __m.pop().expect(\"length checked\");\n\
                     match __key.as_str() {{\n\
                       {payload_arms}\
                       __other => ::core::result::Result::Err({custom}(::std::format!(\
                         \"unknown variant `{{}}` of {name}\", __other))),\n\
                     }}\n\
                   }},\n\
                   __other => ::core::result::Result::Err({custom}(::std::format!(\
                     \"expected enum {name}, found {{}}\", __other.kind()))),\n\
                 }}"
            );
            (name, body)
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: ::serde::Deserializer<'de>>(__deserializer: __D) \
                 -> ::core::result::Result<Self, __D::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

/// Derives `serde::Serialize` for non-generic structs and enums.
/// Registers the `serde` helper attribute so `#[serde(default)]` (a
/// deserialization concern) doesn't break serialize-side expansion.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => expand_serialize(&item)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde derive emitted bad tokens: {e}"))),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives `serde::Deserialize` for non-generic structs and enums.
/// `#[serde(default)]` on a named field makes an absent field
/// deserialize to `Default::default()`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => expand_deserialize(&item)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde derive emitted bad tokens: {e}"))),
        Err(msg) => compile_error(&msg),
    }
}
