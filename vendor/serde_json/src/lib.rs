//! Vendored JSON serialization for the hermetic build.
//!
//! Drives the vendored serde's content tree: serialization renders
//! [`serde::__private::Content`] as JSON text, deserialization parses JSON
//! text into a content tree and replays it. Supports the subset of JSON
//! this workspace produces: objects, arrays, strings (with full escape
//! handling incl. `\uXXXX` surrogate pairs), integers, floats, booleans,
//! and `null`. Rust's shortest-round-trip float formatting stands in for
//! the `float_roundtrip` feature of the real crate.

use serde::__private::{from_content, to_content, Content};
use serde::{de, ser, Deserialize, Deserializer, Serialize, Serializer};
use std::fmt::{self, Display, Write as _};

/// Error produced by JSON serialization or deserialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl ser::Error for Error {
    fn custom<T: Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl de::Error for Error {
    fn custom<T: Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Result alias matching the real crate.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Rust's Display uses shortest round-trip formatting; integral
        // values print without a fraction, which parses back as an
        // integer content node that float deserialization accepts.
        let _ = write!(out, "{v}");
    } else {
        // Match serde_json's Value behavior: non-finite floats become null.
        out.push_str("null");
    }
}

fn write_compact(out: &mut String, content: &Content) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
        Content::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Content::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Content::F64(v) => write_f64(out, *v),
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, key);
                out.push(':');
                write_compact(out, value);
            }
            out.push('}');
        }
    }
}

fn write_pretty(out: &mut String, content: &Content, indent: usize) {
    const STEP: &str = "  ";
    match content {
        Content::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                for _ in 0..=indent {
                    out.push_str(STEP);
                }
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            for _ in 0..indent {
                out.push_str(STEP);
            }
            out.push(']');
        }
        Content::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                for _ in 0..=indent {
                    out.push_str(STEP);
                }
                write_escaped(out, key);
                out.push_str(": ");
                write_pretty(out, value, indent + 1);
            }
            out.push('\n');
            for _ in 0..indent {
                out.push_str(STEP);
            }
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let content = to_content(value).map_err(|e| Error(e.to_string()))?;
    let mut out = String::new();
    write_compact(&mut out, &content);
    Ok(out)
}

/// Serializes a value to a pretty-printed (2-space indented) JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let content = to_content(value).map_err(|e| Error(e.to_string()))?;
    let mut out = String::new();
    write_pretty(&mut out, &content, 0);
    Ok(out)
}

/// Serializes a value as compact JSON into a writer.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let text = to_string(value)?;
    writer
        .write_all(text.as_bytes())
        .map_err(|e| Error(format!("io error: {e}")))
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Self {
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: impl Display) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", byte as char)))
        }
    }

    fn parse_literal(&mut self, literal: &str, value: Content) -> Result<Content> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.err(format!("invalid literal, expected `{literal}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let first = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: a low surrogate must follow.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let second = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(self.err(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err("truncated unicode escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| self.err("invalid unicode escape"))?;
        let value =
            u32::from_str_radix(text, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos = end;
        Ok(value)
    }

    fn parse_number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ascii");
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }

    fn parse_value(&mut self, depth: usize) -> Result<Content> {
        if depth > 128 {
            return Err(self.err("recursion depth exceeded"));
        }
        self.skip_whitespace();
        match self
            .peek()
            .ok_or_else(|| self.err("unexpected end of input"))?
        {
            b'n' => self.parse_literal("null", Content::Null),
            b't' => self.parse_literal("true", Content::Bool(true)),
            b'f' => self.parse_literal("false", Content::Bool(false)),
            b'"' => self.parse_string().map(Content::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_whitespace();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.parse_value(depth + 1)?);
                    self.skip_whitespace();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_whitespace();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_whitespace();
                    let key = self.parse_string()?;
                    self.skip_whitespace();
                    self.expect(b':')?;
                    let value = self.parse_value(depth + 1)?;
                    entries.push((key, value));
                    self.skip_whitespace();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(self.err(format!("unexpected byte `{}`", other as char))),
        }
    }
}

fn parse_document(input: &str) -> Result<Content> {
    let mut parser = Parser::new(input);
    let value = parser.parse_value(0)?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters"));
    }
    Ok(value)
}

/// Deserializes a value from a JSON string.
pub fn from_str<'de, T: Deserialize<'de>>(input: &str) -> Result<T> {
    from_content(parse_document(input)?)
}

// ---------------------------------------------------------------------------
// Value: a dynamically-typed JSON document (subset of the real crate's).
// ---------------------------------------------------------------------------

/// A parsed JSON document with accessors, for tests and generic tooling.
#[derive(Debug, Clone, PartialEq)]
#[repr(transparent)]
pub struct Value(Content);

impl Value {
    /// Looks up an object field by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match &self.0 {
            Content::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| Self::from_content_ref(v)),
            _ => None,
        }
    }

    fn from_content_ref(content: &Content) -> &Value {
        // SAFETY: `Value` is `#[repr(transparent)]` over `Content`.
        unsafe { &*(content as *const Content as *const Value) }
    }

    /// Returns the string payload, if this is a JSON string.
    pub fn as_str(&self) -> Option<&str> {
        match &self.0 {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the value as `f64` if it is any JSON number.
    pub fn as_f64(&self) -> Option<f64> {
        match self.0 {
            Content::F64(v) => Some(v),
            Content::I64(v) => Some(v as f64),
            Content::U64(v) => Some(v as f64),
            _ => None,
        }
    }

    /// Returns the value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            Content::U64(v) => Some(v),
            Content::I64(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    /// Returns the value as `i64` if it is an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            Content::I64(v) => Some(v),
            Content::U64(v) => i64::try_from(v).ok(),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this is a JSON bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self.0 {
            Content::Bool(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the elements, if this is a JSON array.
    pub fn as_array(&self) -> Option<Vec<&Value>> {
        match &self.0 {
            Content::Seq(items) => Some(items.iter().map(Self::from_content_ref).collect()),
            _ => None,
        }
    }

    /// Returns `true` if this is JSON `null`.
    pub fn is_null(&self) -> bool {
        matches!(self.0, Content::Null)
    }

    /// Returns object keys in document order, if this is a JSON object.
    pub fn keys(&self) -> Option<Vec<&str>> {
        match &self.0 {
            Content::Map(entries) => Some(entries.iter().map(|(k, _)| k.as_str()).collect()),
            _ => None,
        }
    }
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> std::result::Result<S::Ok, S::Error> {
        serializer.serialize_content(self.0.clone())
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> std::result::Result<Self, D::Error> {
        Ok(Value(deserializer.deserialize_content()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_structures() {
        let v = vec![(1usize, 2.5f64), (3, 4.5)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2.5],[3,4.5]]");
        let back: Vec<(usize, f64)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn escapes_and_unescapes_strings() {
        let s = "line\n\"quoted\"\tok \\ end \u{1F600}".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn parses_unicode_escapes() {
        let back: String = from_str(r#""A😀""#).unwrap();
        assert_eq!(back, "A\u{1F600}");
    }

    #[test]
    fn numbers_keep_precision() {
        let json = to_string(&0.1f64).unwrap();
        let back: f64 = from_str(&json).unwrap();
        assert_eq!(back, 0.1);

        let back: i64 = from_str("-42").unwrap();
        assert_eq!(back, -42);

        let back: u64 = from_str("18446744073709551615").unwrap();
        assert_eq!(back, u64::MAX);
    }

    #[test]
    fn value_accessors() {
        let v: Value = from_str(r#"{"a": [1, 2.5], "b": "hi", "c": null}"#).unwrap();
        assert_eq!(v.get("b").and_then(Value::as_str), Some("hi"));
        assert!(v.get("c").is_some_and(Value::is_null));
        let arr = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(v.keys().unwrap(), vec!["a", "b", "c"]);
    }

    #[test]
    fn pretty_output_is_indented_and_parses() {
        let v = vec![vec![1u32, 2], vec![3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<Vec<u32>> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(from_str::<f64>("1.2.3").is_err());
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
